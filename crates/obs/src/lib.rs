//! Zero-dependency observability primitives for the serving stack.
//!
//! This crate is the measurement substrate shared by every serving layer
//! (engine → runtime → net → fleet). It deliberately depends on nothing but
//! `std` so it can sit below `phom-serve`, `phom-net`, and `phom-fleet`
//! without dependency cycles. It provides:
//!
//! - [`TraceId`]: a nonzero 64-bit request identifier minted at the front
//!   door (net server or fleet router) and carried through wire frames and
//!   [`Request`](../phom_core/struct.Request.html) plumbing.
//! - [`Span`] / [`Stage`]: one timed step of a request's life (admitted,
//!   queued, planned, evaluated, encoded, routed).
//! - [`SpanRing`]: a fixed-size lock-free ring buffer of spans. Writers
//!   never block and never allocate; the oldest spans are overwritten.
//! - [`Histogram`]: a log-linear latency histogram (p50/p90/p99/max,
//!   mergeable) with ≤ 1/8 relative bucket width above 8.
//! - [`PromText`]: a tiny Prometheus text-format builder used by the
//!   `metrics` wire op on both the server and the router.
//!
//! # Design notes
//!
//! The span ring uses a per-slot seqlock: the writer bumps a slot sequence
//! to an odd value, stores the span fields, then publishes an even
//! sequence. Readers retry a slot whose sequence is odd or changed across
//! the read. This keeps the hot path at a handful of relaxed atomic stores
//! plus one `fetch_add`, with no locks and no allocation.
//!
//! Histogram buckets: values `0..8` map to their own bucket (exact);
//! larger values use 8 sub-buckets per power of two, so a reported
//! quantile is at most one part in eight above the true value. Quantiles
//! report the *upper bound* of the bucket the rank falls in, which makes
//! them conservative (never under-report latency).

use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// A nonzero 64-bit trace identifier.
///
/// Minted once at the front door and carried end to end; `0` is reserved as
/// "no trace" so spans can use a plain `u64` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

static TRACE_COUNTER: AtomicU64 = AtomicU64::new(1);

/// `splitmix64` finalizer: spreads a sequential counter over the full
/// 64-bit space so trace ids from different processes rarely collide on
/// their low bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceId {
    /// Mint a fresh process-unique trace id.
    pub fn mint() -> TraceId {
        let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
        // Seed with the process id so two processes started at the same
        // counter value diverge. splitmix64 maps exactly one input to 0.
        let mixed = splitmix64(n ^ ((std::process::id() as u64) << 32));
        TraceId(if mixed == 0 { 1 } else { mixed })
    }

    /// Wrap a raw nonzero id (e.g. parsed off the wire). Returns `None`
    /// for zero, which is reserved for "no trace".
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// The raw 64-bit value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Stages and spans
// ---------------------------------------------------------------------------

/// One stage of a request's life across the serving layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Accepted past admission control into a lane queue.
    Admitted = 0,
    /// Waited in a lane queue until a batch flush picked it up.
    Queued = 1,
    /// Batch planning: `begin_tick_with` building shards and units.
    Planned = 2,
    /// Circuit/float evaluation across the worker pool; `detail` carries
    /// the shared gate count from the batch (the lineage meter's view).
    Evaluated = 3,
    /// Result materialization and ticket fulfillment.
    Encoded = 4,
    /// Router fan-out: forwarding the submit to a fleet member.
    Routed = 5,
    /// Protocol-v2 server push: the delay from ticket resolution to the
    /// completion frame hitting the wire; `detail` carries how many
    /// completions the push frame coalesced.
    Pushed = 6,
}

/// Every stage, in request-lifecycle order.
pub const STAGES: [Stage; 7] = [
    Stage::Admitted,
    Stage::Queued,
    Stage::Planned,
    Stage::Evaluated,
    Stage::Encoded,
    Stage::Routed,
    Stage::Pushed,
];

impl Stage {
    /// Stable lowercase name used on the wire and in CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admitted => "admitted",
            Stage::Queued => "queued",
            Stage::Planned => "planned",
            Stage::Evaluated => "evaluated",
            Stage::Encoded => "encoded",
            Stage::Routed => "routed",
            Stage::Pushed => "pushed",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        STAGES.iter().copied().find(|s| s.name() == name)
    }

    fn from_u8(v: u8) -> Option<Stage> {
        STAGES.get(v as usize).copied()
    }
}

/// Lane tag carried on spans: 0 = fast, 1 = slow, 2 = not lane-specific.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanLane {
    Fast = 0,
    Slow = 1,
    None = 2,
}

impl SpanLane {
    /// Stable lowercase name used on the wire and in CLI output.
    pub fn name(self) -> &'static str {
        match self {
            SpanLane::Fast => "fast",
            SpanLane::Slow => "slow",
            SpanLane::None => "-",
        }
    }

    fn from_u8(v: u8) -> SpanLane {
        match v {
            0 => SpanLane::Fast,
            1 => SpanLane::Slow,
            _ => SpanLane::None,
        }
    }
}

/// One recorded stage timing for one traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The request's trace id (nonzero).
    pub trace: u64,
    /// Which stage this span measures.
    pub stage: Stage,
    /// Which lane the request ran in, if the stage is lane-specific.
    pub lane: SpanLane,
    /// Stage duration in nanoseconds (0 for point events like `admitted`).
    pub nanos: u64,
    /// Stage-specific detail: shared gate count for `evaluated`, member
    /// index for `routed`, 0 otherwise.
    pub detail: u64,
}

// ---------------------------------------------------------------------------
// Span ring (lock-free, overwrite-oldest)
// ---------------------------------------------------------------------------

const SLOT_WORDS: usize = 4;

struct Slot {
    /// Seqlock word: odd while a write is in progress, even when stable.
    /// Starts at 0 (empty: `trace` is 0 too).
    seq: AtomicU64,
    /// trace, stage|lane packed, nanos, detail.
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A fixed-capacity lock-free ring buffer of [`Span`]s.
///
/// Writers claim a slot with one `fetch_add` and publish through a per-slot
/// seqlock; the oldest spans are overwritten once the ring wraps. Readers
/// take a best-effort snapshot: a slot being concurrently rewritten is
/// skipped rather than blocked on. No allocation happens after
/// construction.
pub struct SpanRing {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

/// Default ring capacity (spans, not requests). At ~5 spans per request
/// this keeps roughly the last 800 requests inspectable.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl SpanRing {
    /// Create a ring holding `capacity` spans (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (monotonic; exceeds `capacity` after wrap).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record a span. Lock-free and allocation-free; overwrites the oldest
    /// span once the ring is full.
    pub fn push(&self, span: Span) {
        let pos = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos as usize) & (self.slots.len() - 1)];
        // Odd sequence marks the write in progress; the final even value
        // encodes which generation the slot holds so readers can detect a
        // wrap mid-read.
        slot.seq
            .store(pos.wrapping_mul(2).wrapping_add(1), Ordering::Release);
        let packed = (span.stage as u64) | ((span.lane as u64) << 8);
        slot.words[0].store(span.trace, Ordering::Relaxed);
        slot.words[1].store(packed, Ordering::Relaxed);
        slot.words[2].store(span.nanos, Ordering::Relaxed);
        slot.words[3].store(span.detail, Ordering::Relaxed);
        slot.seq
            .store(pos.wrapping_add(1).wrapping_mul(2), Ordering::Release);
    }

    fn read_slot(&self, slot: &Slot) -> Option<Span> {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 || seq & 1 == 1 {
            return None; // empty or mid-write
        }
        let trace = slot.words[0].load(Ordering::Relaxed);
        let packed = slot.words[1].load(Ordering::Relaxed);
        let nanos = slot.words[2].load(Ordering::Relaxed);
        let detail = slot.words[3].load(Ordering::Relaxed);
        if slot.seq.load(Ordering::Acquire) != seq {
            return None; // overwritten while reading
        }
        let stage = Stage::from_u8((packed & 0xff) as u8)?;
        if trace == 0 {
            return None;
        }
        Some(Span {
            trace,
            stage,
            lane: SpanLane::from_u8(((packed >> 8) & 0xff) as u8),
            nanos,
            detail,
        })
    }

    /// Snapshot the current contents, oldest first. Best-effort under
    /// concurrent writes: torn slots are skipped, not blocked on.
    pub fn snapshot(&self) -> Vec<Span> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = cursor.saturating_sub(cap);
        let mut out = Vec::with_capacity(cursor.saturating_sub(start) as usize);
        for pos in start..cursor {
            let slot = &self.slots[(pos as usize) & (self.slots.len() - 1)];
            if let Some(span) = self.read_slot(slot) {
                out.push(span);
            }
        }
        out
    }

    /// All retained spans for one trace id, oldest first.
    pub fn spans_for(&self, trace: u64) -> Vec<Span> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Trace grouping (slow-request log)
// ---------------------------------------------------------------------------

/// All retained spans for one traced request, with the summed stage time.
#[derive(Clone, Debug)]
pub struct TraceRequest {
    /// The request's trace id.
    pub trace: u64,
    /// Sum of all span durations (a lower bound on wall-clock latency).
    pub total_nanos: u64,
    /// The request's spans, oldest first.
    pub spans: Vec<Span>,
}

/// Group a span snapshot by trace id, preserving first-seen order.
pub fn group_by_trace(spans: &[Span]) -> Vec<TraceRequest> {
    let mut order: Vec<u64> = Vec::new();
    let mut grouped: std::collections::HashMap<u64, TraceRequest> =
        std::collections::HashMap::new();
    for span in spans {
        let entry = grouped.entry(span.trace).or_insert_with(|| {
            order.push(span.trace);
            TraceRequest {
                trace: span.trace,
                total_nanos: 0,
                spans: Vec::new(),
            }
        });
        entry.total_nanos += span.nanos;
        entry.spans.push(*span);
    }
    order
        .into_iter()
        .filter_map(|t| grouped.remove(&t))
        .collect()
}

/// The `n` slowest retained requests by summed stage time, slowest first.
pub fn slowest_requests(spans: &[Span], n: usize) -> Vec<TraceRequest> {
    let mut all = group_by_trace(spans);
    all.sort_by_key(|r| std::cmp::Reverse(r.total_nanos));
    all.truncate(n);
    all
}

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Values below this are their own exact bucket.
const LINEAR_MAX: u64 = 8;
/// Sub-buckets per power of two above `LINEAR_MAX`.
const SUB_BUCKETS: usize = 8;
/// Total bucket count: 8 exact + 8 per power of two for exponents 3..=63.
pub const HIST_BUCKETS: usize = LINEAR_MAX as usize + (64 - 3) * SUB_BUCKETS;

/// A mergeable log-linear histogram for nanosecond latencies.
///
/// Relative bucket width is at most 1/8, so quantiles (reported as bucket
/// upper bounds) over-estimate the true value by < 12.5%. Merging two
/// histograms is exact bucket-wise addition, so merged quantiles carry the
/// same bound.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Bucket index for a value.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (msb - 3)) & 0x7) as usize;
    LINEAR_MAX as usize + (msb - 3) * SUB_BUCKETS + sub
}

/// `(lower, upper)` inclusive value bounds of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < LINEAR_MAX as usize {
        return (idx as u64, idx as u64);
    }
    let rel = idx - LINEAR_MAX as usize;
    let msb = rel / SUB_BUCKETS + 3;
    let sub = (rel % SUB_BUCKETS) as u64;
    let width = 1u64 << (msb - 3);
    let lower = (LINEAR_MAX + sub) << (msb - 3);
    (lower, lower.saturating_add(width - 1))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket the
    /// rank falls in; 0 when empty. `quantile(1.0)` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the observed max.
                return bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }

    /// Add every sample of `other` into `self` (exact bucket-wise merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(index, count)` pairs, for sparse encoding.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuild from sparse parts (inverse of the wire encoding). Bucket
    /// indices out of range are ignored; `count` is recomputed from the
    /// buckets so a corrupt frame cannot desynchronize rank math.
    pub fn from_parts(sum: u64, max: u64, sparse: &[(usize, u64)]) -> Histogram {
        let mut h = Histogram::new();
        for &(idx, c) in sparse {
            if idx < HIST_BUCKETS {
                h.buckets[idx] += c;
                h.count += c;
            }
        }
        h.sum = sum;
        h.max = max;
        h
    }
}

// ---------------------------------------------------------------------------
// Prometheus text builder
// ---------------------------------------------------------------------------

/// Minimal Prometheus text-format (version 0.0.4) builder.
///
/// Shared by the net server's and fleet router's `metrics` ops so metric
/// names and render shape stay identical across layers.
#[derive(Default)]
pub struct PromText {
    out: String,
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        write_labels(&mut self.out, labels);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Emit a counter with HELP/TYPE headers and one unlabeled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value);
    }

    /// Emit a gauge with HELP/TYPE headers and one unlabeled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Emit HELP/TYPE headers for a labeled family; follow with
    /// [`PromText::labeled`] samples.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        self.header(name, help, kind);
    }

    /// Emit one labeled sample (after [`PromText::family`]).
    pub fn labeled(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample(name, labels, value);
    }

    /// Emit a full histogram family: cumulative `_bucket{le=...}` lines
    /// over occupied buckets, `_sum`, `_count`, and convenience
    /// `_p50`/`_p90`/`_p99`/`_max` gauge samples, all under `labels`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let mut cumulative = 0u64;
        let bucket_name = format!("{name}_bucket");
        for (idx, c) in h.nonzero_buckets() {
            cumulative += c;
            let le = bucket_bounds(idx).1.to_string();
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("le", le.as_str()));
            self.sample(&bucket_name, &all, cumulative);
        }
        let mut inf: Vec<(&str, &str)> = labels.to_vec();
        inf.push(("le", "+Inf"));
        self.sample(&bucket_name, &inf, h.count());
        self.sample(&format!("{name}_sum"), labels, h.sum());
        self.sample(&format!("{name}_count"), labels, h.count());
        self.sample(&format!("{name}_p50"), labels, h.quantile(0.50));
        self.sample(&format!("{name}_p90"), labels, h.quantile(0.90));
        self.sample(&format!("{name}_p99"), labels, h.quantile(0.99));
        self.sample(&format!("{name}_max"), labels, h.max());
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_nonzero_and_unique() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a.get(), 0);
        assert_ne!(b.get(), 0);
        assert_ne!(a.get(), b.get());
        assert_eq!(TraceId::from_raw(0), None);
        assert_eq!(TraceId::from_raw(7).unwrap().get(), 7);
        assert!(format!("{a}").starts_with("0x"));
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in STAGES {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }

    #[test]
    fn ring_keeps_most_recent_spans() {
        let ring = SpanRing::new(8);
        assert_eq!(ring.capacity(), 8);
        for i in 1..=20u64 {
            ring.push(Span {
                trace: i,
                stage: Stage::Queued,
                lane: SpanLane::Fast,
                nanos: i * 10,
                detail: 0,
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        let traces: Vec<u64> = snap.iter().map(|s| s.trace).collect();
        assert_eq!(traces, (13..=20).collect::<Vec<u64>>());
        assert_eq!(ring.spans_for(17).len(), 1);
        assert_eq!(ring.spans_for(1).len(), 0);
        assert_eq!(ring.pushed(), 20);
    }

    #[test]
    fn ring_survives_concurrent_writers() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    ring.push(Span {
                        trace: t * 10_000 + i + 1,
                        stage: Stage::Evaluated,
                        lane: SpanLane::Slow,
                        nanos: i,
                        detail: t,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = ring.snapshot();
        assert!(snap.len() <= 64);
        assert!(!snap.is_empty());
        for span in snap {
            // Every surviving span must be internally consistent.
            assert_eq!(span.trace, span.detail * 10_000 + span.nanos + 1);
        }
    }

    #[test]
    fn grouping_and_slowest() {
        let spans = vec![
            Span {
                trace: 1,
                stage: Stage::Queued,
                lane: SpanLane::Fast,
                nanos: 10,
                detail: 0,
            },
            Span {
                trace: 2,
                stage: Stage::Queued,
                lane: SpanLane::Fast,
                nanos: 100,
                detail: 0,
            },
            Span {
                trace: 1,
                stage: Stage::Evaluated,
                lane: SpanLane::Fast,
                nanos: 5,
                detail: 3,
            },
        ];
        let grouped = group_by_trace(&spans);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].trace, 1);
        assert_eq!(grouped[0].total_nanos, 15);
        assert_eq!(grouped[0].spans.len(), 2);
        let slow = slowest_requests(&spans, 1);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace, 2);
    }

    #[test]
    fn bucket_bounds_cover_and_nest() {
        // Exact buckets below 8.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
        // Every value lands inside its bucket's bounds; bounds are
        // contiguous and relative width stays ≤ 1/8.
        for &v in &[
            8u64,
            9,
            15,
            16,
            17,
            100,
            1_000,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
            assert!((hi - lo) as f64 <= lo as f64 / 8.0 + 1.0);
        }
        for idx in 0..HIST_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi.wrapping_add(1), lo_next, "gap after bucket {idx}");
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounded() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * 37 + 5).collect();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), *values.last().unwrap());
        for &(q, rank) in &[(0.5, 500usize), (0.9, 900), (0.99, 990)] {
            let exact = values[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q} est={est} exact={exact}");
            // Over-estimate bounded by the relative bucket width.
            assert!(
                (est as f64) <= exact as f64 * 1.125 + 1.0,
                "q={q} est={est} exact={exact}"
            );
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 0..500u64 {
            a.record(i * 11);
            both.record(i * 11);
        }
        for i in 0..300u64 {
            b.record(i * 997 + 13);
            both.record(i * 997 + 13);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.max(), both.max());
        for &q in &[0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 100, 5_000, 1 << 40] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(h.sum(), h.max(), &sparse);
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.max(), h.max());
        for &q in &[0.5, 0.99] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
        // Out-of-range indices are dropped, not panicked on.
        let bad = Histogram::from_parts(1, 1, &[(HIST_BUCKETS + 5, 3)]);
        assert_eq!(bad.count(), 0);
    }

    #[test]
    fn prom_text_renders_counters_gauges_histograms() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(i * 1000);
        }
        let mut prom = PromText::new();
        prom.counter("phom_requests_admitted_total", "requests admitted", 100);
        prom.gauge("phom_queue_depth", "queued requests", 3);
        prom.family("phom_request_latency_ns", "end-to-end latency", "histogram");
        prom.histogram("phom_request_latency_ns", &[("lane", "fast")], &h);
        let text = prom.finish();
        assert!(text.contains("# TYPE phom_requests_admitted_total counter"));
        assert!(text.contains("phom_requests_admitted_total 100"));
        assert!(text.contains("# TYPE phom_queue_depth gauge"));
        assert!(text.contains("phom_request_latency_ns_bucket{lane=\"fast\",le=\"+Inf\"} 100"));
        assert!(text.contains("phom_request_latency_ns_count{lane=\"fast\"} 100"));
        assert!(text.contains("phom_request_latency_ns_p99{lane=\"fast\"}"));
        let p99 = h.quantile(0.99);
        assert!(p99 > 0);
        assert!(text.contains(&format!(
            "phom_request_latency_ns_p99{{lane=\"fast\"}} {p99}"
        )));
        // Every line parses as `name[{labels}] value` or a # comment.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.rsplit_once(' ').is_some());
        }
    }
}
