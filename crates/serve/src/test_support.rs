//! Scripted fault injection for the chaos suites — not part of the
//! public API. A [`FaultPlan`] scripts a sequence of per-unit faults
//! (slow units, stuck units, one-shot contained panics) that the worker
//! loop consumes one per executed work unit; combined with
//! [`force_hard_plans`] (every plan classifies hard, exercising the
//! `OnHard` degradation ladder) it drives the liveness and bookkeeping
//! assertions in `tests/chaos_runtime.rs`.
//!
//! All state is process-global: serialize tests that script faults.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Re-exported planner seam: while on, every classified probability
/// plan is forced into the hard cell, so all traffic exercises the
/// fallback / `OnHard::Estimate` ladder. Remember that hardness answers
/// are cached — use fresh runtimes (or distinct queries) per test.
pub use phom_core::solver::test_support::force_hard_plans;

/// One scripted fault, applied to one executed work unit.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// The worker sleeps this long before running its unit — a slow
    /// unit occupying its worker.
    Slow(Duration),
    /// Same mechanics as [`Slow`](Fault::Slow), scripted with longer
    /// durations to model a unit stuck well past every deadline.
    Stuck(Duration),
    /// The unit panics at entry; the engine contains the panic into
    /// per-request `SolveError::Internal` errors and the worker
    /// survives.
    Panic,
}

static SCRIPT: Mutex<Option<VecDeque<Fault>>> = Mutex::new(None);

fn lock_script() -> MutexGuard<'static, Option<VecDeque<Fault>>> {
    SCRIPT.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scripted fault queue: faults are consumed front-to-back, one per
/// executed work unit across the whole pool, then injection stops by
/// itself.
pub struct FaultPlan;

impl FaultPlan {
    /// Replaces the script with `faults` (consumed in order).
    pub fn script(faults: impl IntoIterator<Item = Fault>) {
        *lock_script() = Some(faults.into_iter().collect());
    }

    /// Drops any remaining scripted faults.
    pub fn clear() {
        *lock_script() = None;
    }

    /// Scripted faults not yet consumed.
    pub fn remaining() -> usize {
        lock_script().as_ref().map_or(0, VecDeque::len)
    }
}

/// Consumes and applies the next scripted fault, if any. Called by the
/// worker loop once per work unit; a no-op without an active script.
pub(crate) fn apply_next_fault() {
    let fault = lock_script().as_mut().and_then(VecDeque::pop_front);
    match fault {
        None => {}
        Some(Fault::Slow(d) | Fault::Stuck(d)) => std::thread::sleep(d),
        // Arm the engine's one-shot panic budget right before this
        // worker runs its unit; the unit's entry checkpoint consumes
        // it and the panic is contained to per-request errors.
        Some(Fault::Panic) => phom_core::engine::test_support::inject_unit_panics(1),
    }
}
