//! A tiny closeable multi-producer/multi-consumer channel
//! (`Mutex<VecDeque>` + `Condvar`) — the persistent workers' feed.
//! `std::sync::mpsc` receivers are single-consumer, the pool needs many
//! workers pulling from one queue, and the offline build image rules
//! out external crates, so the ~60 lines live here.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

pub(crate) struct Chan<T> {
    state: Mutex<ChanState<T>>,
    ready: Condvar,
}

struct ChanState<T> {
    /// The priority queue: drained before `queue` on every `recv`, FIFO
    /// within itself — the fast lane's work never waits behind slow
    /// units already enqueued.
    priority: VecDeque<T>,
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Chan<T> {
    pub(crate) fn new() -> Self {
        Chan {
            state: Mutex::new(ChanState {
                priority: VecDeque::new(),
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ChanState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues an item, waking one waiting receiver. Returns `false`
    /// (dropping the item) once the channel is closed.
    pub(crate) fn send(&self, item: T) -> bool {
        let mut state = self.lock();
        if state.closed {
            return false;
        }
        state.queue.push_back(item);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// As [`send`](Chan::send), but into the priority queue: receivers
    /// take priority items before anything sent with `send`, however
    /// long the normal queue already is.
    pub(crate) fn send_priority(&self, item: T) -> bool {
        let mut state = self.lock();
        if state.closed {
            return false;
        }
        state.priority.push_back(item);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks until an item is available (priority items first). `None`
    /// once the channel is closed *and* drained — the worker-loop exit
    /// signal.
    pub(crate) fn recv(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.priority.pop_front() {
                return Some(item);
            }
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the channel: subsequent sends fail, receivers drain what
    /// remains and then observe the end.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drains_then_signals_close() {
        let chan: Chan<u32> = Chan::new();
        assert!(chan.send(1));
        assert!(chan.send(2));
        chan.close();
        assert!(!chan.send(3), "closed channel drops sends");
        assert_eq!(chan.recv(), Some(1));
        assert_eq!(chan.recv(), Some(2));
        assert_eq!(chan.recv(), None);
    }

    #[test]
    fn priority_items_jump_the_queue() {
        let chan: Chan<u32> = Chan::new();
        assert!(chan.send(1));
        assert!(chan.send(2));
        assert!(chan.send_priority(10));
        assert!(chan.send_priority(11));
        chan.close();
        assert!(!chan.send_priority(12), "closed channel drops sends");
        // Priority drains first (FIFO within itself), then the rest.
        assert_eq!(chan.recv(), Some(10));
        assert_eq!(chan.recv(), Some(11));
        assert_eq!(chan.recv(), Some(1));
        assert_eq!(chan.recv(), Some(2));
        assert_eq!(chan.recv(), None);
    }

    #[test]
    fn many_consumers_each_item_once() {
        let chan: Arc<Chan<usize>> = Arc::new(Chan::new());
        let n = 100;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let chan = Arc::clone(&chan);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = chan.recv() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            assert!(chan.send(i));
        }
        chan.close();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
