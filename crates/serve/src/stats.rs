//! Serving observability: queue depth, tick shapes, per-unit (shard)
//! latencies, aggregated batch counters, and the shared answer-cache
//! counters — everything a capacity planner or a dashboard needs from a
//! long-lived runtime.

use phom_core::{BatchStats, CacheStats};
use phom_obs::Histogram;
use std::time::Duration;

/// Number of buckets in [`RuntimeStats::tick_size_hist`].
pub const TICK_HIST_BUCKETS: usize = 8;

/// The histogram bucket a tick of `n` requests falls in: power-of-two
/// buckets `[1]`, `[2–3]`, `[4–7]`, `[8–15]`, `[16–31]`, `[32–63]`,
/// `[64–127]`, `[≥128]`.
///
/// Ticks are flushed only when non-empty, so `n >= 1` always holds in
/// practice; `n == 0` would silently land in bucket 0 (labeled `[1]`),
/// which is why debug builds assert against it.
pub fn tick_size_bucket(n: usize) -> usize {
    debug_assert!(n >= 1, "tick_size_bucket: ticks are never empty (n = 0)");
    if n <= 1 {
        0
    } else {
        ((usize::BITS - 1 - n.leading_zeros()) as usize).min(TICK_HIST_BUCKETS - 1)
    }
}

/// A point-in-time snapshot of a [`Runtime`](crate::Runtime)'s
/// activity. Monotonic counters describe the runtime's lifetime;
/// `queue_depth` and `cache` are sampled at snapshot time.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// Configured worker-pool size.
    pub workers: usize,
    /// Worker threads that ever started. Equals `workers` for the whole
    /// runtime lifetime — workers are spawned exactly once, at startup,
    /// never per batch.
    pub workers_started: u64,
    /// Requests currently waiting in the ingress queue (both lanes).
    pub queue_depth: usize,
    /// High-water mark of the ingress queue depth (sampled at every
    /// admission).
    pub queue_depth_max: usize,
    /// Requests currently waiting in the fast lane (cheap exact plans).
    pub fast_lane_depth: usize,
    /// Requests currently waiting in the slow lane (sampling,
    /// escalation-prone, and non-probability work).
    pub slow_lane_depth: usize,
    /// High-water mark of the fast-lane depth.
    pub fast_lane_depth_max: usize,
    /// High-water mark of the slow-lane depth.
    pub slow_lane_depth_max: usize,
    /// Requests ever admitted into the fast lane.
    pub fast_lane_total: u64,
    /// Requests ever admitted into the slow lane.
    pub slow_lane_total: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests rejected with `SolveError::Overloaded` (queue full).
    pub rejected: u64,
    /// Admitted requests whose ticket resolved
    /// `Err(SolveError::Cancelled)` — skipped before execution or
    /// cancelled mid-flight.
    pub cancelled: u64,
    /// Tickets fulfilled with a computed response (or typed error).
    pub completed: u64,
    /// Requests already past their deadline when their tick flushed,
    /// shed from the queue with `SolveError::DeadlineExceeded` without
    /// executing.
    pub shed_expired: u64,
    /// Ticks currently dispatched to the pool and not yet finished.
    pub ticks_in_flight: usize,
    /// Micro-batch ticks flushed (by size or by the `max_wait` timer).
    pub ticks: u64,
    /// Requests across all ticks (mean tick size =
    /// `total_tick_requests / ticks`).
    pub total_tick_requests: u64,
    /// Largest tick flushed so far.
    pub max_tick_requests: usize,
    /// Tick-size histogram: [`tick_size_bucket`] buckets
    /// (`[1]`, `[2–3]`, `[4–7]`, …, `[≥128]`); the bucket counts sum to
    /// [`ticks`](RuntimeStats::ticks).
    pub tick_size_hist: [u64; TICK_HIST_BUCKETS],
    /// Whether adaptive tick sizing is enabled
    /// ([`RuntimeBuilder::adaptive`](crate::RuntimeBuilder::adaptive)).
    pub adaptive: bool,
    /// The controller's current effective flush threshold
    /// (≤ the configured `max_batch`; equal to it when adaptation is
    /// off).
    pub effective_max_batch: usize,
    /// The controller's current effective batching patience
    /// (≤ the configured `max_wait`).
    pub effective_max_wait: Duration,
    /// Times the adaptive controller changed the effective knobs.
    pub adaptive_adjustments: u64,
    /// EWMA of the per-request tick latency (the controller's latency
    /// signal), in nanoseconds.
    pub unit_ewma_nanos: u64,
    /// Tick groups (one per instance version within a tick) that
    /// compiled their circuit plans into one cross-shard shared arena
    /// (the large-tick path).
    pub shared_arena_ticks: u64,
    /// Gates across all tick arenas (shared and per-shard).
    pub shared_gates: u64,
    /// Work units executed by the pool (shards + single requests).
    pub unit_runs: u64,
    /// Total wall time inside unit execution, i.e. the per-shard
    /// latency aggregate (`unit_nanos_total / unit_runs` = mean).
    pub unit_nanos_total: u64,
    /// Slowest single unit so far.
    pub unit_nanos_max: u64,
    /// Total wall time per tick (plan → dispatch → fulfill).
    pub tick_nanos_total: u64,
    /// Slowest tick so far.
    pub tick_nanos_max: u64,
    /// Probability queries across all ticks (the [`BatchStats`]
    /// aggregate).
    pub queries: u64,
    /// Structurally distinct (query, options) pairs after interning.
    pub unique_queries: u64,
    /// Unique queries answered from the shared cache during planning.
    pub batch_cache_hits: u64,
    /// Unique queries answered through a shard's multi-root engine pass.
    pub circuit_batched: u64,
    /// Unique queries answered on the general per-query path.
    pub general_solved: u64,
    /// Unique circuit queries answered by the float evaluation tier
    /// (`Precision::Float` / `Auto` within tolerance).
    pub float_evaluated: u64,
    /// `Precision::Auto` circuit queries whose certified bound exceeded
    /// the tolerance and were re-evaluated exactly.
    pub escalations: u64,
    /// Requests answered with a certified interval
    /// ([`Response::Estimate`](phom_core::Response::Estimate)) because a
    /// hard cell degraded under `OnHard::Estimate`.
    pub estimates: u64,
    /// Requests that resolved `SolveError::DeadlineExceeded` *inside*
    /// evaluation (a cooperative checkpoint tripped mid-work; queue
    /// sheds are counted in
    /// [`shed_expired`](RuntimeStats::shed_expired) instead).
    pub deadline_exceeded: u64,
    /// Requests that resolved `SolveError::BudgetExceeded` (a work
    /// budget — gates, samples, or time — ran out mid-evaluation).
    pub budget_exceeded: u64,
    /// Unit runs that reused a worker's pooled evaluation scratch
    /// (every run after a worker's first — the allocation-free path).
    pub scratch_reuse: u64,
    /// Time fast-lane requests spent waiting in their queue (admission →
    /// flush), in nanoseconds. Quantile-grade ([`Histogram::quantile`]),
    /// where [`unit_nanos_total`](RuntimeStats::unit_nanos_total)-style
    /// flat sums only give means.
    pub queue_ns_fast: Histogram,
    /// Time slow-lane requests spent waiting in their queue.
    pub queue_ns_slow: Histogram,
    /// Per-tick-group planning time (`begin_tick_with`: interning,
    /// cache probe, shard/unit construction), in nanoseconds.
    pub plan_ns: Histogram,
    /// Per-tick-group circuit/float evaluation time (dispatch → last
    /// worker reports), in nanoseconds.
    pub eval_ns: Histogram,
    /// Per-tick-group result materialization + ticket fulfillment time,
    /// in nanoseconds.
    pub encode_ns: Histogram,
    /// End-to-end latency of completed fast-lane requests (admission →
    /// ticket fulfilled), in nanoseconds.
    pub request_ns_fast: Histogram,
    /// End-to-end latency of completed slow-lane requests.
    pub request_ns_slow: Histogram,
    /// The shared answer cache's counters (hits/misses/evictions/size).
    pub cache: CacheStats,
}

impl RuntimeStats {
    /// Mean tick size in requests (0 before the first tick).
    pub fn mean_tick_requests(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.total_tick_requests as f64 / self.ticks as f64
        }
    }

    /// Mean unit (shard) latency in microseconds (0 before the first
    /// unit).
    pub fn mean_unit_micros(&self) -> f64 {
        if self.unit_runs == 0 {
            0.0
        } else {
            self.unit_nanos_total as f64 / self.unit_runs as f64 / 1e3
        }
    }

    pub(crate) fn absorb_batch(&mut self, batch: &BatchStats) {
        self.queries += batch.queries as u64;
        self.unique_queries += batch.unique_queries as u64;
        self.batch_cache_hits += batch.cache_hits as u64;
        self.circuit_batched += batch.circuit_batched as u64;
        self.general_solved += batch.general_solved as u64;
        self.float_evaluated += batch.float_evaluated as u64;
        self.escalations += batch.escalations as u64;
        self.estimates += batch.estimates as u64;
        self.deadline_exceeded += batch.deadline_exceeded as u64;
        self.budget_exceeded += batch.budget_exceeded as u64;
        self.shared_gates += batch.shared_gates as u64;
        if batch.shared_arena {
            self.shared_arena_ticks += 1;
        }
    }

    /// Admitted requests whose ticket has not resolved yet (still
    /// queued or in flight). Every admitted request ends in exactly one
    /// terminal state — completed, cancelled, or shed — so a drained
    /// runtime reports 0 here (asserted by the chaos suite).
    pub fn open_tickets(&self) -> u64 {
        self.admitted
            .saturating_sub(self.completed + self.cancelled + self.shed_expired)
    }

    /// Renders the snapshot as Prometheus text-format metrics — the
    /// body of the `metrics` wire op and of `phom serve --bench
    /// --metrics`. Metric names are stable (CI greps for them):
    ///
    /// * counters: `phom_requests_{admitted,rejected,cancelled,completed,shed_expired}_total`,
    ///   `phom_lane_requests_total{lane=…}`, `phom_ticks_total`,
    ///   `phom_tick_requests_total`, `phom_shared_arena_ticks_total`,
    ///   `phom_shared_gates_total`, `phom_unit_runs_total`,
    ///   `phom_queries_total`, `phom_unique_queries_total`,
    ///   `phom_batch_cache_hits_total`, `phom_circuit_batched_total`,
    ///   `phom_general_solved_total`, `phom_float_evaluated_total`,
    ///   `phom_escalations_total`, `phom_estimates_total`,
    ///   `phom_deadline_exceeded_total`, `phom_budget_exceeded_total`,
    ///   `phom_scratch_reuse_total`,
    ///   `phom_cache_{hits,misses,evictions}_total`;
    /// * gauges: `phom_workers`, `phom_queue_depth`,
    ///   `phom_fast_lane_depth`, `phom_slow_lane_depth`,
    ///   `phom_ticks_in_flight`, `phom_open_tickets`,
    ///   `phom_cache_entries`;
    /// * histograms (with `_p50`/`_p90`/`_p99`/`_max` convenience
    ///   samples): `phom_request_latency_ns{lane=…}`,
    ///   `phom_queue_latency_ns{lane=…}`,
    ///   `phom_stage_latency_ns{stage="plan"|"eval"|"encode"}`.
    pub fn prometheus_text(&self) -> String {
        let mut prom = phom_obs::PromText::new();
        prom.gauge(
            "phom_workers",
            "configured worker-pool size",
            self.workers as u64,
        );
        prom.gauge(
            "phom_queue_depth",
            "requests waiting in the ingress queue",
            self.queue_depth as u64,
        );
        prom.gauge(
            "phom_fast_lane_depth",
            "requests waiting in the fast lane",
            self.fast_lane_depth as u64,
        );
        prom.gauge(
            "phom_slow_lane_depth",
            "requests waiting in the slow lane",
            self.slow_lane_depth as u64,
        );
        prom.gauge(
            "phom_ticks_in_flight",
            "tick groups dispatched and not yet finished",
            self.ticks_in_flight as u64,
        );
        prom.gauge(
            "phom_open_tickets",
            "admitted requests not yet resolved",
            self.open_tickets(),
        );
        prom.counter(
            "phom_requests_admitted_total",
            "requests admitted past admission control",
            self.admitted,
        );
        prom.counter(
            "phom_requests_rejected_total",
            "requests rejected with Overloaded",
            self.rejected,
        );
        prom.counter(
            "phom_requests_cancelled_total",
            "requests resolved Cancelled",
            self.cancelled,
        );
        prom.counter(
            "phom_requests_completed_total",
            "tickets fulfilled with a computed response",
            self.completed,
        );
        prom.counter(
            "phom_requests_shed_expired_total",
            "requests shed expired-in-queue",
            self.shed_expired,
        );
        prom.family(
            "phom_lane_requests_total",
            "requests admitted per lane",
            "counter",
        );
        prom.labeled(
            "phom_lane_requests_total",
            &[("lane", "fast")],
            self.fast_lane_total,
        );
        prom.labeled(
            "phom_lane_requests_total",
            &[("lane", "slow")],
            self.slow_lane_total,
        );
        prom.counter("phom_ticks_total", "micro-batch ticks flushed", self.ticks);
        prom.counter(
            "phom_tick_requests_total",
            "requests across all ticks",
            self.total_tick_requests,
        );
        prom.counter(
            "phom_shared_arena_ticks_total",
            "tick groups compiled into one shared arena",
            self.shared_arena_ticks,
        );
        prom.counter(
            "phom_shared_gates_total",
            "gates across all tick arenas",
            self.shared_gates,
        );
        prom.counter(
            "phom_unit_runs_total",
            "work units executed",
            self.unit_runs,
        );
        prom.counter("phom_queries_total", "probability queries", self.queries);
        prom.counter(
            "phom_unique_queries_total",
            "structurally distinct (query, options) pairs",
            self.unique_queries,
        );
        prom.counter(
            "phom_batch_cache_hits_total",
            "unique queries answered from the shared cache at plan time",
            self.batch_cache_hits,
        );
        prom.counter(
            "phom_circuit_batched_total",
            "unique queries answered through multi-root engine passes",
            self.circuit_batched,
        );
        prom.counter(
            "phom_general_solved_total",
            "unique queries answered on the general path",
            self.general_solved,
        );
        prom.counter(
            "phom_float_evaluated_total",
            "unique circuit queries answered by the float tier",
            self.float_evaluated,
        );
        prom.counter(
            "phom_escalations_total",
            "float-tier answers re-evaluated exactly",
            self.escalations,
        );
        prom.counter(
            "phom_estimates_total",
            "hard cells degraded to certified estimates",
            self.estimates,
        );
        prom.counter(
            "phom_deadline_exceeded_total",
            "requests that tripped a deadline mid-evaluation",
            self.deadline_exceeded,
        );
        prom.counter(
            "phom_budget_exceeded_total",
            "requests that ran out of work budget",
            self.budget_exceeded,
        );
        prom.counter(
            "phom_scratch_reuse_total",
            "unit runs on pooled worker scratch",
            self.scratch_reuse,
        );
        prom.counter(
            "phom_cache_hits_total",
            "answer-cache hits",
            self.cache.hits,
        );
        prom.counter(
            "phom_cache_misses_total",
            "answer-cache misses",
            self.cache.misses,
        );
        prom.counter(
            "phom_cache_evictions_total",
            "answer-cache LRU evictions",
            self.cache.evictions,
        );
        prom.gauge(
            "phom_cache_entries",
            "answer-cache entries stored",
            self.cache.entries as u64,
        );
        prom.family(
            "phom_request_latency_ns",
            "end-to-end request latency (admission to fulfillment), nanoseconds",
            "histogram",
        );
        prom.histogram(
            "phom_request_latency_ns",
            &[("lane", "fast")],
            &self.request_ns_fast,
        );
        prom.histogram(
            "phom_request_latency_ns",
            &[("lane", "slow")],
            &self.request_ns_slow,
        );
        prom.family(
            "phom_queue_latency_ns",
            "queue wait (admission to flush), nanoseconds",
            "histogram",
        );
        prom.histogram(
            "phom_queue_latency_ns",
            &[("lane", "fast")],
            &self.queue_ns_fast,
        );
        prom.histogram(
            "phom_queue_latency_ns",
            &[("lane", "slow")],
            &self.queue_ns_slow,
        );
        prom.family(
            "phom_stage_latency_ns",
            "per-tick-group stage time, nanoseconds",
            "histogram",
        );
        prom.histogram("phom_stage_latency_ns", &[("stage", "plan")], &self.plan_ns);
        prom.histogram("phom_stage_latency_ns", &[("stage", "eval")], &self.eval_ns);
        prom.histogram(
            "phom_stage_latency_ns",
            &[("stage", "encode")],
            &self.encode_ns,
        );
        prom.finish()
    }
}
