//! The caller's claim on an in-flight request: blocking [`Ticket::wait`],
//! non-blocking [`Ticket::try_get`], and best-effort
//! [`Ticket::cancel`]lation.

use phom_core::{Response, SolveError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A claim on the eventual answer to one request admitted by
/// [`Runtime::enqueue`](crate::Runtime::enqueue).
///
/// The runtime fulfills the ticket when its micro-batch tick completes;
/// admitted tickets are always fulfilled eventually — a graceful
/// [`shutdown`](crate::Runtime::shutdown) drains them, a worker panic
/// resolves them with [`SolveError::Internal`], and a
/// [`cancel`](Ticket::cancel) resolves them with
/// [`SolveError::Cancelled`]. Dropping a ticket is safe: the answer is
/// simply discarded when the tick completes.
pub struct Ticket {
    state: Arc<TicketState>,
}

pub(crate) struct TicketState {
    slot: Mutex<Option<Result<Response, SolveError>>>,
    ready: Condvar,
    cancelled: AtomicBool,
}

impl TicketState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Option<Result<Response, SolveError>>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves the ticket. The first resolution wins; later ones (a
    /// cancelled request whose tick still completed) are dropped.
    /// Returns whether this resolution landed.
    pub(crate) fn fulfill(&self, result: Result<Response, SolveError>) -> bool {
        let mut slot = self.lock();
        if slot.is_none() {
            *slot = Some(result);
            drop(slot);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    /// Whether [`Ticket::cancel`] ran — the runtime skips execution of
    /// cancelled entries when it builds a tick.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

impl Ticket {
    pub(crate) fn new(state: Arc<TicketState>) -> Self {
        Ticket { state }
    }

    /// Blocks until the answer is available and returns it. Repeated
    /// calls return the same answer.
    pub fn wait(&self) -> Result<Response, SolveError> {
        let mut slot = self.state.lock();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// As [`wait`](Ticket::wait), giving up after `timeout` (`None` when
    /// the answer did not arrive in time).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, SolveError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.lock();
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Non-blocking probe: the answer if it is already available.
    pub fn try_get(&self) -> Option<Result<Response, SolveError>> {
        self.state.lock().clone()
    }

    /// True once the ticket has been resolved (answer, error, or
    /// cancellation).
    pub fn is_done(&self) -> bool {
        self.state.lock().is_some()
    }

    /// Cancellation: if the answer has not landed yet, the ticket
    /// resolves to `Err(SolveError::Cancelled)` immediately — even when
    /// its tick is already executing (the computation may still run to
    /// completion, but its answer is discarded and not counted as
    /// completed). A request whose tick has not started is skipped
    /// outright. Once the answer has landed, `cancel` is a no-op.
    /// Returns `true` when the cancellation resolved the ticket.
    pub fn cancel(&self) -> bool {
        self.state.cancelled.store(true, Ordering::SeqCst);
        let mut slot = self.state.lock();
        if slot.is_none() {
            *slot = Some(Err(SolveError::Cancelled));
            drop(slot);
            self.state.ready.notify_all();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_core::Response;
    use std::time::Instant;

    fn answer() -> Result<Response, SolveError> {
        Err(SolveError::Cancelled) // any cloneable stand-in result
    }

    /// The timeout-vs-fulfill race: a `wait_timeout` that gives up does
    /// NOT consume or lose the eventual answer — the slot is written by
    /// `fulfill` regardless, later waits return it, and the fulfillment
    /// still reports "landed" exactly once (no double resolution).
    #[test]
    fn timed_out_wait_never_loses_the_answer() {
        let state = TicketState::new();
        let ticket = Ticket::new(Arc::clone(&state));
        // Give up before any answer exists.
        let t0 = Instant::now();
        assert!(ticket.wait_timeout(Duration::from_millis(10)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert!(!ticket.is_done());
        // The runtime fulfills after the caller already timed out.
        assert!(state.fulfill(answer()), "first resolution lands");
        // The answer is still there for every later wait flavor.
        assert!(ticket.try_get().is_some());
        assert!(ticket.wait_timeout(Duration::ZERO).is_some());
        assert_eq!(ticket.wait().unwrap_err(), SolveError::Cancelled);
        // And the slot is single-assignment: nothing double-resolves.
        assert!(!state.fulfill(answer()), "second resolution is dropped");
        assert!(!ticket.cancel(), "cancel after the answer is a no-op");
        assert_eq!(ticket.wait().unwrap_err(), SolveError::Cancelled);
    }

    /// A `wait_timeout` racing a concurrent fulfill either returns the
    /// answer or times out and finds it on the next wait — it never
    /// observes a half-written state and never blocks past its
    /// deadline.
    #[test]
    fn wait_timeout_races_concurrent_fulfill() {
        for _ in 0..50 {
            let state = TicketState::new();
            let ticket = Ticket::new(Arc::clone(&state));
            let fulfiller = {
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    state.fulfill(answer());
                })
            };
            let got = ticket.wait_timeout(Duration::from_micros(50));
            fulfiller.join().unwrap();
            match got {
                Some(result) => assert!(result.is_err()),
                // Timed out first: the answer must be waiting now.
                None => assert!(ticket.wait().is_err()),
            }
        }
    }
}
