//! The caller's claim on an in-flight request: blocking [`Ticket::wait`],
//! non-blocking [`Ticket::try_get`], best-effort [`Ticket::cancel`]lation,
//! and a push-style [`Ticket::on_complete`] completion callback (the
//! seam the wire protocol's server-push completion is built on).

use phom_core::{Response, SolveError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The completion callback registered by [`Ticket::on_complete`].
type Callback = Box<dyn FnOnce(&Result<Response, SolveError>) + Send>;

/// A claim on the eventual answer to one request admitted by
/// [`Runtime::enqueue`](crate::Runtime::enqueue).
///
/// The runtime fulfills the ticket when its micro-batch tick completes;
/// admitted tickets are always fulfilled eventually — a graceful
/// [`shutdown`](crate::Runtime::shutdown) drains them, a worker panic
/// resolves them with [`SolveError::Internal`], and a
/// [`cancel`](Ticket::cancel) resolves them with
/// [`SolveError::Cancelled`]. Dropping a ticket is safe: the answer is
/// simply discarded when the tick completes.
pub struct Ticket {
    state: Arc<TicketState>,
}

/// The slot a resolution lands in, plus the at-most-one completion
/// callback. Both live under ONE mutex: every resolution path (tick
/// completion, cancel, flush shed, deadline shed, batcher teardown)
/// funnels through [`TicketState::fulfill`], which atomically writes the
/// result and takes the callback — so the callback observes exactly one
/// resolution no matter how those paths race.
struct Slot {
    result: Option<Result<Response, SolveError>>,
    callback: Option<Callback>,
}

pub(crate) struct TicketState {
    slot: Mutex<Slot>,
    ready: Condvar,
    cancelled: AtomicBool,
}

impl TicketState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketState {
            slot: Mutex::new(Slot {
                result: None,
                callback: None,
            }),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Slot> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves the ticket. The first resolution wins; later ones (a
    /// cancelled request whose tick still completed) are dropped.
    /// Returns whether this resolution landed.
    ///
    /// If an [`on_complete`](Ticket::on_complete) callback is
    /// registered, the winning resolution takes it out of the slot under
    /// the same lock that guards the result — the losing racer finds the
    /// slot occupied and the callback gone, so the push fires exactly
    /// once. The callback itself runs *after* the lock is released (it
    /// may take other locks; it must never re-enter this ticket's
    /// resolution path).
    pub(crate) fn fulfill(&self, result: Result<Response, SolveError>) -> bool {
        let mut slot = self.lock();
        if slot.result.is_some() {
            return false;
        }
        let callback = slot.callback.take();
        slot.result = Some(result);
        // Snapshot for the callback while the slot stays immutable
        // (single-assignment: nothing rewrites `result` after this).
        let snapshot = callback
            .is_some()
            .then(|| slot.result.clone().expect("just written"));
        drop(slot);
        self.ready.notify_all();
        if let Some(cb) = callback {
            cb(&snapshot.expect("snapshot taken with callback"));
        }
        true
    }

    /// Whether [`Ticket::cancel`] ran — the runtime skips execution of
    /// cancelled entries when it builds a tick.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

impl Ticket {
    pub(crate) fn new(state: Arc<TicketState>) -> Self {
        Ticket { state }
    }

    /// Blocks until the answer is available and returns it. Repeated
    /// calls return the same answer.
    pub fn wait(&self) -> Result<Response, SolveError> {
        let mut slot = self.state.lock();
        loop {
            if let Some(result) = slot.result.as_ref() {
                return result.clone();
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// As [`wait`](Ticket::wait), giving up after `timeout` (`None` when
    /// the answer did not arrive in time).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, SolveError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.lock();
        loop {
            if let Some(result) = slot.result.as_ref() {
                return Some(result.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Non-blocking probe: the answer if it is already available.
    pub fn try_get(&self) -> Option<Result<Response, SolveError>> {
        self.state.lock().result.clone()
    }

    /// True once the ticket has been resolved (answer, error, or
    /// cancellation).
    pub fn is_done(&self) -> bool {
        self.state.lock().result.is_some()
    }

    /// Registers a completion callback, fired **exactly once** with the
    /// resolution — whichever of tick completion, [`cancel`], a queue
    /// shed, or runtime teardown lands it. If the ticket is already
    /// resolved, the callback fires immediately on the calling thread;
    /// otherwise it fires on the resolving thread, so it must be cheap
    /// and non-blocking (the wire server's push path hands the result to
    /// a channel and returns). At most one callback per ticket: a second
    /// registration replaces an unfired first.
    ///
    /// This is the server-push seam: the network front end registers a
    /// wakeup here instead of parking a thread per outstanding ticket.
    pub fn on_complete(&self, f: impl FnOnce(&Result<Response, SolveError>) + Send + 'static) {
        let mut slot = self.state.lock();
        if let Some(result) = slot.result.as_ref() {
            let snapshot = result.clone();
            drop(slot);
            f(&snapshot);
            return;
        }
        slot.callback = Some(Box::new(f));
    }

    /// Cancellation: if the answer has not landed yet, the ticket
    /// resolves to `Err(SolveError::Cancelled)` immediately — even when
    /// its tick is already executing (the computation may still run to
    /// completion, but its answer is discarded and not counted as
    /// completed). A request whose tick has not started is skipped
    /// outright. Once the answer has landed, `cancel` is a no-op.
    /// Returns `true` when the cancellation resolved the ticket.
    pub fn cancel(&self) -> bool {
        self.state.cancelled.store(true, Ordering::SeqCst);
        // Route through `fulfill` so a registered completion callback
        // sees the cancellation through the same exactly-once gate as
        // every other resolution.
        self.state.fulfill(Err(SolveError::Cancelled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_core::Response;
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;

    fn answer() -> Result<Response, SolveError> {
        Err(SolveError::Cancelled) // any cloneable stand-in result
    }

    /// The timeout-vs-fulfill race: a `wait_timeout` that gives up does
    /// NOT consume or lose the eventual answer — the slot is written by
    /// `fulfill` regardless, later waits return it, and the fulfillment
    /// still reports "landed" exactly once (no double resolution).
    #[test]
    fn timed_out_wait_never_loses_the_answer() {
        let state = TicketState::new();
        let ticket = Ticket::new(Arc::clone(&state));
        // Give up before any answer exists.
        let t0 = Instant::now();
        assert!(ticket.wait_timeout(Duration::from_millis(10)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert!(!ticket.is_done());
        // The runtime fulfills after the caller already timed out.
        assert!(state.fulfill(answer()), "first resolution lands");
        // The answer is still there for every later wait flavor.
        assert!(ticket.try_get().is_some());
        assert!(ticket.wait_timeout(Duration::ZERO).is_some());
        assert_eq!(ticket.wait().unwrap_err(), SolveError::Cancelled);
        // And the slot is single-assignment: nothing double-resolves.
        assert!(!state.fulfill(answer()), "second resolution is dropped");
        assert!(!ticket.cancel(), "cancel after the answer is a no-op");
        assert_eq!(ticket.wait().unwrap_err(), SolveError::Cancelled);
    }

    /// A `wait_timeout` racing a concurrent fulfill either returns the
    /// answer or times out and finds it on the next wait — it never
    /// observes a half-written state and never blocks past its
    /// deadline.
    #[test]
    fn wait_timeout_races_concurrent_fulfill() {
        for _ in 0..50 {
            let state = TicketState::new();
            let ticket = Ticket::new(Arc::clone(&state));
            let fulfiller = {
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    state.fulfill(answer());
                })
            };
            let got = ticket.wait_timeout(Duration::from_micros(50));
            fulfiller.join().unwrap();
            match got {
                Some(result) => assert!(result.is_err()),
                // Timed out first: the answer must be waiting now.
                None => assert!(ticket.wait().is_err()),
            }
        }
    }

    /// The push seam's contract: no matter how cancel and fulfill race,
    /// a registered callback fires exactly once, with the resolution
    /// that actually landed in the slot.
    #[test]
    fn on_complete_fires_exactly_once_under_cancel_race() {
        for round in 0..200 {
            let state = TicketState::new();
            let ticket = Arc::new(Ticket::new(Arc::clone(&state)));
            let fires = Arc::new(AtomicU64::new(0));
            {
                let fires = Arc::clone(&fires);
                ticket.on_complete(move |_| {
                    fires.fetch_add(1, Ordering::SeqCst);
                });
            }
            std::thread::scope(|scope| {
                let canceller = {
                    let ticket = Arc::clone(&ticket);
                    scope.spawn(move || {
                        if round % 2 == 0 {
                            std::thread::yield_now();
                        }
                        ticket.cancel()
                    })
                };
                let fulfilled = state.fulfill(answer());
                let cancelled = canceller.join().expect("canceller");
                // Exactly one resolution won…
                assert!(fulfilled ^ cancelled, "round {round}");
            });
            // …and the callback fired for it, exactly once.
            assert_eq!(fires.load(Ordering::SeqCst), 1, "round {round}");
            assert!(ticket.is_done());
        }
    }

    /// Registering on an already-resolved ticket fires immediately with
    /// the landed answer (the server's submit-then-register window).
    #[test]
    fn on_complete_after_resolution_fires_immediately() {
        let state = TicketState::new();
        let ticket = Ticket::new(Arc::clone(&state));
        assert!(state.fulfill(answer()));
        let fires = Arc::new(AtomicU64::new(0));
        let fires2 = Arc::clone(&fires);
        ticket.on_complete(move |r| {
            assert!(r.is_err());
            fires2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fires.load(Ordering::SeqCst), 1);
    }
}
