//! # phom_serve — the persistent serving runtime
//!
//! PR 3's [`Engine`](phom_core::Engine) made single-process serving
//! cheap: instance-side state and the answer cache are paid once per
//! instance lifetime. But every `submit` still spawned scoped threads,
//! and callers had to hand-assemble batches. This crate closes the loop
//! for **heavy concurrent traffic**: a long-lived [`Runtime`] owns
//!
//! * a **persistent worker pool** — threads spawned exactly once at
//!   startup and fed over an internal channel (no per-batch spawns);
//! * a **bounded ingress queue** with **tick-based micro-batching**:
//!   requests from any number of producers accumulate into a tick that
//!   flushes when `max_batch` are waiting or the oldest has waited
//!   `max_wait`, whichever comes first — so concurrent callers share
//!   interning, cache probes, and compiled arenas without coordinating;
//! * **admission control**: a full queue answers
//!   [`SolveError::Overloaded`](phom_core::SolveError::Overloaded)
//!   immediately (backpressure instead of unbounded memory), never
//!   touching already-admitted requests;
//! * a **fleet-aware router**: many instance versions registered by
//!   fingerprint, all sharing one bounded answer cache;
//! * [`Ticket`]s — blocking [`wait`](Ticket::wait), non-blocking
//!   [`try_get`](Ticket::try_get), best-effort
//!   [`cancel`](Ticket::cancel) — and a graceful
//!   [`shutdown`](Runtime::shutdown) that drains every admitted
//!   request;
//! * **adaptive tick sizing** ([`RuntimeBuilder::adaptive`]): a
//!   controller moves the *effective* `max_batch`/`max_wait` with the
//!   load — queue-depth pressure and a per-request latency EWMA —
//!   always inside the configured bounds;
//! * **cross-shard arena sharing**
//!   ([`RuntimeBuilder::share_arena_at`]): large ticks compile every
//!   circuit-compilable plan into one shared arena and partition the
//!   roots across the workers;
//! * a [`RuntimeStats`] snapshot: queue depth (+ high-water mark),
//!   tick-size histogram, per-shard latencies, controller state, batch
//!   aggregates, cache counters;
//! * **observability** (`phom_obs`): every admitted request carries a
//!   [`TraceId`](phom_obs::TraceId) (its own if the front door minted
//!   one, runtime-minted otherwise) and records per-stage
//!   [`Span`](phom_obs::Span)s — admitted, queued, planned, evaluated,
//!   encoded — into a lock-free overwrite-oldest ring
//!   ([`Runtime::spans`]); [`RuntimeStats`] carries quantile-grade
//!   log-linear latency [`Histogram`]s per lane and per stage, and
//!   [`RuntimeStats::prometheus_text`] renders the whole snapshot in
//!   Prometheus text format.
//!
//! The runtime is the process-internal half of serving; the network
//! half — a TCP front end speaking a length-prefixed JSON protocol
//! over this runtime — lives in `phom_net`.
//!
//! Answers are **bit-identical** to [`Engine::submit`](phom_core::Engine::submit)
//! for every `max_batch` / `max_wait` / worker-count setting —
//! micro-batching changes latency and throughput, never results.
//!
//! ## Quick start
//!
//! ```
//! use phom_core::{Request, Response};
//! use phom_graph::{Graph, GraphBuilder, Label, ProbGraph};
//! use phom_num::Rational;
//! use phom_serve::Runtime;
//! use std::time::Duration;
//!
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//!
//! let runtime = Runtime::builder()
//!     .max_batch(16)
//!     .max_wait(Duration::from_millis(1))
//!     .queue_cap(256)
//!     .workers(2)
//!     .build();
//! runtime.register(h);
//!
//! let ticket = runtime
//!     .enqueue(Request::probability(Graph::one_way_path(&[r, s])))
//!     .expect("admitted");
//! let Ok(Response::Probability(sol)) = ticket.wait() else { panic!() };
//! assert_eq!(sol.probability, Rational::from_ratio(3, 8));
//!
//! let stats = runtime.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

mod chan;
mod runtime;
mod stats;
#[doc(hidden)]
pub mod test_support;
mod ticket;

pub use phom_obs::{Histogram, PromText, Span, SpanLane, SpanRing, Stage, TraceId};
pub use runtime::{Runtime, RuntimeBuilder};
pub use stats::{tick_size_bucket, RuntimeStats, TICK_HIST_BUCKETS};
pub use ticket::Ticket;
