//! The persistent serving runtime: a bounded ingress queue, a
//! tick-building batcher thread, and a pool of worker threads spawned
//! **once** at startup and fed over an internal channel — no scoped
//! spawns, no per-batch thread churn.
//!
//! ## Life of a request
//!
//! 1. [`Runtime::enqueue`] routes the request to a registered instance
//!    version, applies admission control (a full queue answers
//!    [`SolveError::Overloaded`] immediately — backpressure instead of
//!    unbounded memory), and returns a [`Ticket`].
//! 2. The batcher accumulates admitted requests into a **tick**,
//!    flushing when [`max_batch`](RuntimeBuilder::max_batch) requests
//!    are waiting or the oldest has waited
//!    [`max_wait`](RuntimeBuilder::max_wait), whichever comes first.
//! 3. Each tick is grouped by instance version and planned through
//!    [`Engine::begin_tick`] (interning, cache probe, routing — cheap,
//!    sequential); the resulting `Send` units are dispatched to the
//!    worker pool, where shards compile their circuit plans into one
//!    arena each and answer them with one multi-root engine pass.
//! 4. [`Tick::finish`](phom_core::Tick::finish) fills the shared answer
//!    cache and the batcher fulfills every ticket, in request order.
//!
//! Results are **bit-identical** to calling [`Engine::submit`] with the
//! same requests — micro-batching changes latency and throughput, never
//! answers (asserted by `tests/runtime_serving.rs`).

use crate::chan::Chan;
use crate::stats::{tick_size_bucket, RuntimeStats};
use crate::ticket::{Ticket, TicketState};
use phom_core::{
    CacheHandle, Engine, EngineBuilder, Lane, Request, SolveError, SolverOptions, Tick, TickConfig,
    TickOutput, TickUnit, WorkerScratch,
};
use phom_graph::ProbGraph;
use phom_obs::{Span, SpanLane, SpanRing, Stage, TraceId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A `Duration` as saturated nanoseconds, with `u64::MAX` standing in
/// for "no deadline" (`Duration::MAX` and friends).
fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The observability lane tag for an admission [`Lane`].
fn span_lane(lane: Lane) -> SpanLane {
    match lane {
        Lane::Fast => SpanLane::Fast,
        Lane::Slow => SpanLane::Slow,
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Configuration for a [`Runtime`]. The three serving knobs:
///
/// * [`max_batch`](RuntimeBuilder::max_batch) — tick flush threshold
///   (bigger ticks amortize planning and share arenas, at the cost of
///   per-request latency);
/// * [`max_wait`](RuntimeBuilder::max_wait) — how long the first
///   request of a tick may wait for company (the latency bound under
///   light load);
/// * [`queue_cap`](RuntimeBuilder::queue_cap) — the admission-control
///   bound: beyond it, `enqueue` answers
///   [`SolveError::Overloaded`].
#[derive(Clone)]
pub struct RuntimeBuilder {
    max_batch: usize,
    max_wait: Duration,
    queue_cap: usize,
    workers: usize,
    cache_capacity: usize,
    shared_cache: Option<CacheHandle>,
    default_options: SolverOptions,
    adaptive: bool,
    share_arena_at: Option<usize>,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder::new()
    }
}

impl RuntimeBuilder {
    /// Defaults: ticks of up to 64 requests, 2 ms of batching patience,
    /// a 1024-request queue, one worker per core, an unbounded shared
    /// cache, default [`SolverOptions`], adaptive tick sizing off, and
    /// cross-shard arena sharing from 32 unique queries per tick.
    pub fn new() -> Self {
        RuntimeBuilder {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_cap: 1024,
            workers: 0,
            cache_capacity: usize::MAX,
            shared_cache: None,
            default_options: SolverOptions::default(),
            adaptive: false,
            share_arena_at: Some(32),
        }
    }

    /// Flush a tick as soon as `n` requests are waiting (≥ 1).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Flush a tick once its oldest request has waited this long, even
    /// if it is smaller than `max_batch`. `Duration::ZERO` disables
    /// batching patience entirely (every poll drains what is there).
    pub fn max_wait(mut self, d: Duration) -> Self {
        self.max_wait = d;
        self
    }

    /// Bound the ingress queue to `n` waiting requests; beyond it,
    /// [`Runtime::enqueue`] answers [`SolveError::Overloaded`] (≥ 1).
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n.max(1);
        self
    }

    /// Worker-pool size (`0` = the machine's available parallelism).
    /// Workers are spawned once, when the runtime is built.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Bound the shared answer cache (LRU across every registered
    /// version). Ignored when [`shared_cache`](RuntimeBuilder::shared_cache)
    /// supplies an existing cache.
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Serve off an existing shared cache (e.g. one also used by a
    /// [`Fleet`](phom_core::Fleet) or another runtime).
    pub fn shared_cache(mut self, cache: CacheHandle) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// The [`SolverOptions`] requests inherit when they don't override
    /// them.
    pub fn default_options(mut self, options: SolverOptions) -> Self {
        self.default_options = options;
        self
    }

    /// Latency-aware **adaptive tick sizing**: a controller adjusts the
    /// *effective* `max_batch`/`max_wait` from the stats feedback loop —
    /// queue depth after each flush plus an EWMA of the per-request tick
    /// latency. Under backlog it doubles the batch bound (up to the
    /// configured `max_batch`) and halves the patience; when idle it
    /// shrinks the batch bound and grows the patience toward the
    /// observed service time (never past the configured `max_wait`).
    /// The effective knobs always stay within the configured bounds,
    /// and tick sizing never changes answers — only latency and
    /// throughput (asserted by `tests/net_serving.rs`).
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Cross-shard arena sharing threshold: ticks with at least this
    /// many unique, uncached probability queries compile every
    /// circuit-compilable plan into **one** shared arena and partition
    /// the roots across the workers (one multi-root evaluation pass
    /// each) instead of building one arena per shard — see
    /// [`TickConfig::share_arena_at`]. `None` keeps per-shard arenas
    /// always. Answers are bit-identical either way.
    pub fn share_arena_at(mut self, threshold: Option<usize>) -> Self {
        self.share_arena_at = threshold;
        self
    }

    /// Builds the runtime: allocates the shared cache, spawns the
    /// worker pool and the batcher thread — **exactly once** for the
    /// runtime's lifetime.
    pub fn build(self) -> Runtime {
        let pool_size = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.workers
        };
        let cache = self
            .shared_cache
            .unwrap_or_else(|| CacheHandle::with_capacity(self.cache_capacity));
        let inner = Arc::new(Inner {
            max_batch: self.max_batch,
            max_wait_nanos: duration_to_nanos(self.max_wait),
            queue_cap: self.queue_cap,
            pool_size,
            adaptive: self.adaptive,
            share_arena_at: self.share_arena_at,
            effective_batch: AtomicUsize::new(self.max_batch),
            effective_wait_nanos: AtomicU64::new(duration_to_nanos(self.max_wait)),
            unit_ewma_nanos: AtomicU64::new(0),
            default_options: self.default_options,
            cache,
            ingress: Mutex::new(Ingress {
                fast: VecDeque::new(),
                slow: VecDeque::new(),
                shutdown: false,
            }),
            ingress_ready: Condvar::new(),
            engines: RwLock::new(HashMap::new()),
            default_version: Mutex::new(None),
            work: Chan::new(),
            stats: Mutex::new(RuntimeStats {
                workers: pool_size,
                ..RuntimeStats::default()
            }),
            spans: SpanRing::new(phom_obs::DEFAULT_RING_CAPACITY),
            inflight: Mutex::new(0),
            inflight_done: Condvar::new(),
        });
        let workers = (0..pool_size)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("phom-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        let batcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("phom-serve-batcher".into())
                .spawn(move || {
                    // Even if the batcher panics, the guard resolves any
                    // stranded tickets and closes the worker feed — a
                    // dead batcher must never hang `wait()` callers or
                    // deadlock `shutdown()` on a pool that would
                    // otherwise block in `recv()` forever.
                    let _guard = BatcherGuard(Arc::clone(&inner));
                    batcher_loop(&inner);
                })
                .expect("spawn batcher thread")
        };
        Runtime {
            inner,
            batcher: Some(batcher),
            workers,
        }
    }
}

// ---------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------

/// One admitted request, waiting in the ingress queue. It pins its
/// engine from admission time, so an admitted request always completes
/// against the instance version it was routed to — even if that
/// version is deregistered before its tick fires. Lane and deadline are
/// also fixed at admission: the lane decides which ingress queue (and
/// worker-feed priority) the request gets, the deadline lets the flush
/// shed it unexecuted once expired.
struct Admitted {
    version: u64,
    engine: Arc<Engine>,
    request: Request,
    ticket: Arc<TicketState>,
    enqueued_at: Instant,
    lane: Lane,
    deadline_at: Option<Instant>,
    /// Observability trace id — the request's own if it carried one
    /// (minted at the wire front door), a fresh runtime-minted one
    /// otherwise.
    trace: u64,
}

/// Runs when the batcher thread exits — normally or by panic. On the
/// normal path the queue is already drained and this only closes the
/// worker feed; after a panic it also resolves every stranded ticket.
struct BatcherGuard(Arc<Inner>);

impl Drop for BatcherGuard {
    fn drop(&mut self) {
        let stranded: Vec<Admitted> = {
            let mut ingress = lock(&self.0.ingress);
            ingress.shutdown = true;
            let mut all: Vec<Admitted> = ingress.fast.drain(..).collect();
            all.extend(ingress.slow.drain(..));
            all
        };
        let mut resolved = 0u64;
        for entry in stranded {
            if entry.ticket.fulfill(Err(SolveError::Internal(
                "the serving batcher thread died".into(),
            ))) {
                resolved += 1;
            }
        }
        if resolved > 0 {
            // Stranded tickets got a terminal typed error: count them as
            // completed so the books (admitted = completed + cancelled +
            // shed) still balance after a batcher death.
            lock(&self.0.stats).completed += resolved;
        }
        self.0.work.close();
    }
}

/// The two-lane ingress queue. The fast lane holds cheap exact plans
/// (see [`Request::lane`](phom_core::Request::lane)); everything that
/// may sample, escalate, or estimate waits in the slow lane. Flushes
/// drain the fast lane first (with one slot reserved for the slow lane
/// per tick, so it never starves), and the two lanes become separate
/// tick groups that complete independently — a cheap exact answer never
/// waits on a sampling job.
struct Ingress {
    fast: VecDeque<Admitted>,
    slow: VecDeque<Admitted>,
    shutdown: bool,
}

impl Ingress {
    fn len(&self) -> usize {
        self.fast.len() + self.slow.len()
    }

    fn is_empty(&self) -> bool {
        self.fast.is_empty() && self.slow.is_empty()
    }

    /// Arrival time of the oldest waiting request across both lanes —
    /// the `max_wait` flush timer anchors on it.
    fn oldest_enqueued_at(&self) -> Option<Instant> {
        match (self.fast.front(), self.slow.front()) {
            (Some(f), Some(s)) => Some(f.enqueued_at.min(s.enqueued_at)),
            (Some(f), None) => Some(f.enqueued_at),
            (None, Some(s)) => Some(s.enqueued_at),
            (None, None) => None,
        }
    }
}

/// The state shared by the handle, the batcher, and the workers.
struct Inner {
    max_batch: usize,
    max_wait_nanos: u64,
    queue_cap: usize,
    pool_size: usize,
    adaptive: bool,
    share_arena_at: Option<usize>,
    /// The controller's current flush threshold, in `[1, max_batch]`
    /// (pinned to `max_batch` when adaptation is off).
    effective_batch: AtomicUsize,
    /// The controller's current batching patience, in
    /// `[0, max_wait_nanos]` (`u64::MAX` = no timer flush).
    effective_wait_nanos: AtomicU64,
    /// EWMA of the per-request tick latency — the controller's latency
    /// signal.
    unit_ewma_nanos: AtomicU64,
    default_options: SolverOptions,
    cache: CacheHandle,
    ingress: Mutex<Ingress>,
    ingress_ready: Condvar,
    engines: RwLock<HashMap<u64, Arc<Engine>>>,
    default_version: Mutex<Option<u64>>,
    work: Chan<WorkItem>,
    stats: Mutex<RuntimeStats>,
    /// Recent per-stage spans (lock-free, overwrite-oldest). Written on
    /// admission and at group finish; read by the `trace` wire op and
    /// `Runtime::spans`.
    spans: SpanRing,
    /// Tick groups dispatched to the pool and not yet finished. The
    /// batcher flushes ahead of completion (so a slow tick never blocks
    /// a fast one) but stops at [`Inner::inflight_cap`] to bound the
    /// work sitting in the pool feed.
    inflight: Mutex<usize>,
    inflight_done: Condvar,
}

impl Inner {
    /// How many tick groups may be in flight at once: enough that
    /// slow-lane groups stuck on a worker never gate fast-lane flushes,
    /// small enough to bound dispatched-but-unfinished work.
    fn inflight_cap(&self) -> usize {
        self.pool_size * 2 + 2
    }
}

/// One dispatched tick unit plus where its output goes.
struct WorkItem {
    unit: TickUnit,
    collector: Arc<Collector>,
    idx: usize,
}

/// Everything needed to finish a tick group once its last unit reports:
/// the planned [`Tick`], the tickets to fulfill, and the flush
/// timestamp for the latency counters. Fully owned, so whichever worker
/// reports last completes the group — the batcher never blocks on a
/// group and a slow tick never delays a fast one.
struct FinishJob {
    tick: Tick,
    tickets: Vec<Arc<TicketState>>,
    started: Instant,
    tick_requests: usize,
    /// The group's lane (groups are split by lane, so it is uniform).
    lane: Lane,
    /// When planning finished and the units were handed to the pool —
    /// the evaluated-stage span starts here.
    planned_at: Instant,
    /// Planning duration (`begin_tick_with` + unit construction).
    plan_nanos: u64,
    /// Per-request trace ids, parallel to `tickets`.
    traces: Vec<u64>,
    /// Per-request queue time (admission → flush), parallel to
    /// `tickets`.
    queue_nanos: Vec<u64>,
}

/// Gathers a tick group's unit outputs; the worker whose report
/// completes the set runs the group's [`FinishJob`] in place.
struct Collector {
    state: Mutex<CollectorState>,
}

struct CollectorState {
    outputs: Vec<Option<TickOutput>>,
    reported: usize,
    job: Option<FinishJob>,
}

impl Collector {
    fn new(n: usize, job: FinishJob) -> Arc<Self> {
        let mut slots = Vec::new();
        slots.resize_with(n, || None);
        Arc::new(Collector {
            state: Mutex::new(CollectorState {
                outputs: slots,
                reported: 0,
                job: Some(job),
            }),
        })
    }

    /// Records one unit's output; the final report takes the finish job
    /// and completes the group on the calling thread.
    fn set(&self, idx: usize, output: TickOutput, inner: &Inner) {
        let ready = {
            let mut guard = lock(&self.state);
            debug_assert!(guard.outputs[idx].is_none(), "each unit reports once");
            guard.outputs[idx] = Some(output);
            guard.reported += 1;
            if guard.reported == guard.outputs.len() {
                let outputs = std::mem::take(&mut guard.outputs);
                guard.job.take().map(|job| (job, outputs))
            } else {
                None
            }
        };
        if let Some((job, outputs)) = ready {
            finish_group(inner, job, outputs.into_iter().flatten().collect());
        }
    }
}

/// A long-lived serving runtime over persistent worker threads: the
/// async-friendly front end the ROADMAP's serving scale-out item calls
/// for. See the [module docs](self) for the life of a request and
/// [`RuntimeBuilder`] for the knobs.
///
/// The handle is `Sync`: producers on any number of threads may
/// [`enqueue`](Runtime::enqueue) concurrently, and
/// [`register`](Runtime::register)/[`deregister`](Runtime::deregister)
/// hot-swap instance versions while traffic flows.
pub struct Runtime {
    inner: Arc<Inner>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Starts a configuration.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// A runtime with default configuration serving one instance.
    pub fn serve(instance: ProbGraph) -> Self {
        let runtime = RuntimeBuilder::new().build();
        runtime.register(instance);
        runtime
    }

    /// Registers an instance version (building its [`Engine`] on the
    /// shared cache) and returns its routing fingerprint. The first
    /// registered version becomes the [`enqueue`](Runtime::enqueue)
    /// default. Re-registering an identical instance is
    /// **idempotent-cheap**: the fingerprint is hashed (no engine
    /// rebuild, no cache churn) and the existing engine keeps serving —
    /// a fleet router re-registers on every handoff, so this is its hot
    /// path. The engine derives entirely from the instance content, so
    /// an equal fingerprint means an interchangeable engine.
    pub fn register(&self, instance: ProbGraph) -> u64 {
        let version = phom_core::instance_fingerprint(&instance);
        if self.is_registered(version) {
            return version;
        }
        let engine = Arc::new(
            EngineBuilder::new()
                .default_options(self.inner.default_options)
                .shared_cache(self.inner.cache.clone())
                .build(instance),
        );
        debug_assert_eq!(engine.fingerprint(), version);
        self.inner
            .engines
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(version, engine);
        let mut default = lock(&self.inner.default_version);
        if default.is_none() {
            *default = Some(version);
        }
        version
    }

    /// True when `version` is currently registered — the cheap probe
    /// behind idempotent [`register`](Runtime::register) and the wire
    /// front end's `registered: "cached"` fast path.
    pub fn is_registered(&self, version: u64) -> bool {
        self.inner
            .engines
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(&version)
    }

    /// Removes a served version. Requests already admitted for it still
    /// complete (each admitted entry pins its engine from admission
    /// time); new enqueues are rejected.
    pub fn deregister(&self, version: u64) -> bool {
        let removed = self
            .inner
            .engines
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&version)
            .is_some();
        if removed {
            let mut default = lock(&self.inner.default_version);
            if *default == Some(version) {
                *default = self.versions().first().copied();
            }
        }
        removed
    }

    /// The engine serving `version`, if registered.
    pub fn engine(&self, version: u64) -> Option<Arc<Engine>> {
        self.inner
            .engines
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&version)
            .cloned()
    }

    /// The routing fingerprints of every registered version.
    pub fn versions(&self) -> Vec<u64> {
        self.inner
            .engines
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .copied()
            .collect()
    }

    /// Enqueues a request for the default version (the first
    /// registered). See [`enqueue_to`](Runtime::enqueue_to).
    pub fn enqueue(&self, request: Request) -> Result<Ticket, SolveError> {
        let version = (*lock(&self.inner.default_version))
            .ok_or_else(|| SolveError::InvalidQuery("no instance version registered".into()))?;
        self.enqueue_to(version, request)
    }

    /// Routes `request` to the engine registered under `version` and
    /// admits it into the ingress queue.
    ///
    /// * Full queue → `Err(SolveError::Overloaded)` **immediately** —
    ///   the backpressure signal; nothing is queued, already-admitted
    ///   tickets are unaffected.
    /// * Unknown version → `Err(SolveError::InvalidQuery)`.
    /// * After [`shutdown`](Runtime::shutdown) began →
    ///   `Err(SolveError::Cancelled)`.
    pub fn enqueue_to(&self, version: u64, request: Request) -> Result<Ticket, SolveError> {
        let Some(engine) = self.engine(version) else {
            return Err(SolveError::InvalidQuery(format!(
                "no instance registered for version {version:#018x}"
            )));
        };
        let ticket = TicketState::new();
        // Lane and deadline are fixed at admission: the lane comes from
        // the plan's route class (cheap exact plans go fast; anything
        // that may sample or estimate goes slow), the deadline from the
        // request's own clock. The trace id is the request's own when
        // the front door (net server / router) minted one; in-process
        // callers get a runtime-minted id so their spans are traceable
        // too.
        let lane = request.lane(self.inner.default_options);
        let deadline_at = request.deadline_instant();
        let trace = request.trace_id().unwrap_or_else(|| TraceId::mint().get());
        let (depth, fast_depth, slow_depth) = {
            let mut ingress = lock(&self.inner.ingress);
            if ingress.shutdown {
                return Err(SolveError::Cancelled);
            }
            if ingress.len() >= self.inner.queue_cap {
                drop(ingress);
                lock(&self.inner.stats).rejected += 1;
                return Err(SolveError::Overloaded {
                    capacity: self.inner.queue_cap,
                });
            }
            let entry = Admitted {
                version,
                engine,
                request,
                ticket: Arc::clone(&ticket),
                enqueued_at: Instant::now(),
                lane,
                deadline_at,
                trace,
            };
            match lane {
                Lane::Fast => ingress.fast.push_back(entry),
                Lane::Slow => ingress.slow.push_back(entry),
            }
            (ingress.len(), ingress.fast.len(), ingress.slow.len())
        };
        {
            let mut stats = lock(&self.inner.stats);
            stats.admitted += 1;
            stats.queue_depth_max = stats.queue_depth_max.max(depth);
            stats.fast_lane_depth_max = stats.fast_lane_depth_max.max(fast_depth);
            stats.slow_lane_depth_max = stats.slow_lane_depth_max.max(slow_depth);
            match lane {
                Lane::Fast => stats.fast_lane_total += 1,
                Lane::Slow => stats.slow_lane_total += 1,
            }
        }
        self.inner.spans.push(Span {
            trace,
            stage: Stage::Admitted,
            lane: span_lane(lane),
            nanos: 0,
            detail: 0,
        });
        self.inner.ingress_ready.notify_all();
        Ok(Ticket::new(ticket))
    }

    /// Batched admission: admits `requests` in order under **one**
    /// ingress lock and wakes the batcher **once**, instead of once per
    /// request. Each request gets exactly the individual treatment of
    /// [`enqueue_to`](Runtime::enqueue_to) — a full queue rejects that
    /// request (and only it) with a typed `Overloaded`, shutdown
    /// rejects with `Cancelled` — so pipelined front doors (the net
    /// server's `submit_batch`) keep per-request backpressure while
    /// paying a single lock/notify for the whole frame. Admitting one
    /// by one also woke the batcher mid-loop; on a small box the tick
    /// it started preempted the admitting thread and delayed the ack
    /// by a scheduler timeslice.
    pub fn enqueue_batch_to(
        &self,
        version: u64,
        requests: Vec<Request>,
    ) -> Vec<Result<Ticket, SolveError>> {
        let Some(engine) = self.engine(version) else {
            let err = format!("no instance registered for version {version:#018x}");
            return requests
                .into_iter()
                .map(|_| Err(SolveError::InvalidQuery(err.clone())))
                .collect();
        };
        // Lane, deadline, and trace are fixed at admission (see
        // `enqueue_to`); precompute them outside the lock.
        let prepared: Vec<(Request, Lane, Option<Instant>, u64)> = requests
            .into_iter()
            .map(|request| {
                let lane = request.lane(self.inner.default_options);
                let deadline_at = request.deadline_instant();
                let trace = request.trace_id().unwrap_or_else(|| TraceId::mint().get());
                (request, lane, deadline_at, trace)
            })
            .collect();
        let mut out = Vec::with_capacity(prepared.len());
        let mut admitted: Vec<(Lane, u64)> = Vec::with_capacity(prepared.len());
        let mut rejected = 0u64;
        let (depth, fast_depth, slow_depth) = {
            let mut ingress = lock(&self.inner.ingress);
            for (request, lane, deadline_at, trace) in prepared {
                if ingress.shutdown {
                    out.push(Err(SolveError::Cancelled));
                    continue;
                }
                if ingress.len() >= self.inner.queue_cap {
                    rejected += 1;
                    out.push(Err(SolveError::Overloaded {
                        capacity: self.inner.queue_cap,
                    }));
                    continue;
                }
                let ticket = TicketState::new();
                let entry = Admitted {
                    version,
                    engine: Arc::clone(&engine),
                    request,
                    ticket: Arc::clone(&ticket),
                    enqueued_at: Instant::now(),
                    lane,
                    deadline_at,
                    trace,
                };
                match lane {
                    Lane::Fast => ingress.fast.push_back(entry),
                    Lane::Slow => ingress.slow.push_back(entry),
                }
                admitted.push((lane, trace));
                out.push(Ok(Ticket::new(ticket)));
            }
            (ingress.len(), ingress.fast.len(), ingress.slow.len())
        };
        {
            let mut stats = lock(&self.inner.stats);
            stats.admitted += admitted.len() as u64;
            stats.rejected += rejected;
            stats.queue_depth_max = stats.queue_depth_max.max(depth);
            stats.fast_lane_depth_max = stats.fast_lane_depth_max.max(fast_depth);
            stats.slow_lane_depth_max = stats.slow_lane_depth_max.max(slow_depth);
            for (lane, _) in &admitted {
                match lane {
                    Lane::Fast => stats.fast_lane_total += 1,
                    Lane::Slow => stats.slow_lane_total += 1,
                }
            }
        }
        for (lane, trace) in &admitted {
            self.inner.spans.push(Span {
                trace: *trace,
                stage: Stage::Admitted,
                lane: span_lane(*lane),
                nanos: 0,
                detail: 0,
            });
        }
        if !admitted.is_empty() {
            self.inner.ingress_ready.notify_all();
        }
        out
    }

    /// A snapshot of the recent per-stage [`Span`]s (admitted, queued,
    /// planned, evaluated, encoded), oldest first. The ring is
    /// fixed-size and overwrite-oldest, so only the most recent
    /// [`phom_obs::DEFAULT_RING_CAPACITY`] spans are retained.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.spans.snapshot()
    }

    /// Retained spans for one trace id, oldest first.
    pub fn spans_for(&self, trace: u64) -> Vec<Span> {
        self.inner.spans.spans_for(trace)
    }

    /// A point-in-time activity snapshot: queue depth, tick shapes,
    /// unit latencies, batch aggregates, cache counters.
    pub fn stats(&self) -> RuntimeStats {
        let mut stats = lock(&self.inner.stats).clone();
        {
            let ingress = lock(&self.inner.ingress);
            stats.queue_depth = ingress.len();
            stats.fast_lane_depth = ingress.fast.len();
            stats.slow_lane_depth = ingress.slow.len();
        }
        stats.ticks_in_flight = *lock(&self.inner.inflight);
        stats.cache = self.inner.cache.stats();
        stats.adaptive = self.inner.adaptive;
        stats.effective_max_batch = self.inner.effective_batch.load(Ordering::Relaxed);
        let wait_nanos = self.inner.effective_wait_nanos.load(Ordering::Relaxed);
        stats.effective_max_wait = if wait_nanos == u64::MAX {
            Duration::MAX
        } else {
            Duration::from_nanos(wait_nanos)
        };
        stats.unit_ewma_nanos = self.inner.unit_ewma_nanos.load(Ordering::Relaxed);
        stats
    }

    /// A cloneable handle to the runtime's shared answer cache.
    pub fn cache_handle(&self) -> CacheHandle {
        self.inner.cache.clone()
    }

    /// Graceful shutdown: stops admitting, **drains** every admitted
    /// request through final ticks (all outstanding tickets resolve),
    /// then stops the batcher and the worker pool. Returns the final
    /// stats snapshot.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.begin_shutdown();
        self.join_threads();
        self.stats()
    }

    /// Begins draining **through a shared handle**: stops admitting
    /// (new enqueues answer [`SolveError::Cancelled`]), flushes every
    /// admitted request through final ticks, and returns once the books
    /// balance (`admitted == completed + cancelled + shed_expired`,
    /// queue empty, no tick in flight) — every outstanding [`Ticket`]
    /// is resolved. Unlike [`shutdown`](Runtime::shutdown) it takes
    /// `&self`, so a front end still holding an `Arc<Runtime>` can keep
    /// serving polls while the drain completes; call `shutdown`
    /// afterwards to join the (now idle) threads.
    pub fn drain(&self) {
        self.begin_shutdown();
        loop {
            let stats = self.stats();
            let settled = stats.admitted == stats.completed + stats.cancelled + stats.shed_expired;
            if settled && stats.queue_depth == 0 && stats.ticks_in_flight == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn begin_shutdown(&self) {
        lock(&self.inner.ingress).shutdown = true;
        self.inner.ingress_ready.notify_all();
    }

    fn join_threads(&mut self) {
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Runtime {
    /// Dropping without [`shutdown`](Runtime::shutdown) still drains
    /// admitted requests and joins every thread — a runtime never
    /// leaks detached workers.
    fn drop(&mut self) {
        if self.batcher.is_some() || !self.workers.is_empty() {
            self.begin_shutdown();
            self.join_threads();
        }
    }
}

// ---------------------------------------------------------------------
// The batcher and the workers
// ---------------------------------------------------------------------

/// A worker: spawned once at runtime startup, pulls units off the
/// shared channel until the channel closes at shutdown. Unit panics are
/// contained inside `TickUnit::run` — the loop (and the thread) never
/// unwinds.
fn worker_loop(inner: &Inner) {
    lock(&inner.stats).workers_started += 1;
    // One scratch for the worker's lifetime: every unit after the first
    // evaluates through warmed buffers (`TickUnit::run_with`) instead of
    // allocating fresh ones per tick.
    let mut scratch = WorkerScratch::new();
    let mut first_run = true;
    while let Some(item) = inner.work.recv() {
        // Chaos seam: scripted faults (slow/stuck sleeps, one-shot unit
        // panics) are consumed one per executed unit. No-op unless a
        // test scripted a fault plan.
        crate::test_support::apply_next_fault();
        let started = Instant::now();
        let output = item.unit.run_with(&mut scratch);
        let nanos = started.elapsed().as_nanos() as u64;
        {
            let mut stats = lock(&inner.stats);
            stats.unit_runs += 1;
            stats.unit_nanos_total += nanos;
            stats.unit_nanos_max = stats.unit_nanos_max.max(nanos);
            if first_run {
                first_run = false;
            } else {
                stats.scratch_reuse += 1;
            }
        }
        item.collector.set(item.idx, output, inner);
    }
}

/// The batcher: accumulates admitted requests into micro-batch ticks
/// (flush on `max_batch` or `max_wait`, whichever first), dispatches
/// each tick's units to the pool, and fulfills the tickets. On
/// shutdown it drains the remaining queue through final ticks, then
/// closes the work channel so the workers exit.
fn batcher_loop(inner: &Inner) {
    loop {
        let batch: Option<Vec<Admitted>> = {
            let mut ingress = lock(&inner.ingress);
            loop {
                if !ingress.is_empty() {
                    // The *effective* knobs: equal to the configured
                    // `max_batch`/`max_wait` unless the adaptive
                    // controller moved them (always within the
                    // configured bounds). Re-read on every wakeup so
                    // adaptation applies to the tick being built.
                    let max_batch = inner.effective_batch.load(Ordering::Relaxed).max(1);
                    let wait_nanos = inner.effective_wait_nanos.load(Ordering::Relaxed);
                    let oldest = ingress.oldest_enqueued_at().expect("non-empty");
                    // `checked_add` (and the `u64::MAX` sentinel): an
                    // absurd `max_wait` (Duration::MAX) must mean "no
                    // timer flush", not an Instant-overflow panic that
                    // would take the batcher down.
                    let deadline = if wait_nanos == u64::MAX {
                        None
                    } else {
                        oldest.checked_add(Duration::from_nanos(wait_nanos))
                    };
                    let now = Instant::now();
                    let timer_expired = deadline.is_some_and(|d| now >= d);
                    if ingress.len() >= max_batch || ingress.shutdown || timer_expired {
                        // Fast lane first, but when both lanes wait,
                        // one slot is reserved for the slow lane so it
                        // never starves under sustained fast traffic.
                        let n = ingress.len().min(max_batch);
                        let reserve = usize::from(!ingress.slow.is_empty() && n > 1);
                        let from_fast = ingress.fast.len().min(n - reserve);
                        let from_slow = ingress.slow.len().min(n - from_fast);
                        let mut batch: Vec<Admitted> = ingress.fast.drain(..from_fast).collect();
                        batch.extend(ingress.slow.drain(..from_slow));
                        break Some(batch);
                    }
                    ingress = match deadline {
                        Some(d) => {
                            inner
                                .ingress_ready
                                .wait_timeout(ingress, d - now)
                                .unwrap_or_else(PoisonError::into_inner)
                                .0
                        }
                        None => inner
                            .ingress_ready
                            .wait(ingress)
                            .unwrap_or_else(PoisonError::into_inner),
                    };
                } else if ingress.shutdown {
                    break None;
                } else {
                    ingress = inner
                        .ingress_ready
                        .wait(ingress)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        match batch {
            Some(entries) => process_tick(inner, entries),
            None => break,
        }
    }
    // The worker feed is closed by the batcher thread's guard.
}

/// Executes one tick: shed cancelled and already-expired tickets, group
/// by (instance version, lane), plan each group through
/// `Engine::begin_tick`, and dispatch the units to the pool — fast-lane
/// units into the feed's priority queue. Groups complete
/// *asynchronously*: the worker reporting a group's last unit output
/// runs [`finish_group`], so a slow group never delays a fast one and
/// the batcher is free to flush the next tick (bounded by
/// [`Inner::inflight_cap`]).
fn process_tick(inner: &Inner, entries: Vec<Admitted>) {
    let started = Instant::now();
    let mut live: Vec<Admitted> = Vec::with_capacity(entries.len());
    {
        let now = Instant::now();
        let mut stats = lock(&inner.stats);
        stats.ticks += 1;
        stats.total_tick_requests += entries.len() as u64;
        stats.max_tick_requests = stats.max_tick_requests.max(entries.len());
        stats.tick_size_hist[tick_size_bucket(entries.len())] += 1;
        for entry in entries {
            if entry.ticket.is_cancelled() {
                // Resolve the skipped ticket *here* too. `cancel` also
                // resolves it, but the flush must not depend on the
                // canceller finishing its half: a cancel that set the
                // flag and then lost the race to this flush would
                // otherwise leave `wait` hanging on the canceller's
                // progress. Resolution is idempotent (first one wins),
                // so the double fulfill is safe.
                entry.ticket.fulfill(Err(SolveError::Cancelled));
                stats.cancelled += 1;
            } else if entry.deadline_at.is_some_and(|at| now >= at) {
                // Expired in the queue: shed without executing. The
                // same idempotent-fulfill reasoning as cancellation
                // applies — a racing cancel keeps its `Err(Cancelled)`.
                if entry.ticket.fulfill(Err(SolveError::DeadlineExceeded)) {
                    stats.shed_expired += 1;
                } else {
                    stats.cancelled += 1;
                }
            } else {
                live.push(entry);
            }
        }
    }
    // Group by (version, lane), preserving arrival order within each
    // group. Lanes stay separate groups so a fast group's tickets
    // resolve without waiting on any slow group's units.
    let mut groups: Vec<(u64, Lane, Vec<Admitted>)> = Vec::new();
    for entry in live {
        match groups
            .iter_mut()
            .find(|(v, l, _)| *v == entry.version && *l == entry.lane)
        {
            Some((_, _, group)) => group.push(entry),
            None => groups.push((entry.version, entry.lane, vec![entry])),
        }
    }
    // Plan every group and dispatch all units; completion happens on
    // the workers.
    for (_version, lane, entries) in groups {
        // Each admitted entry pinned its engine at admission, so a
        // version deregistered since then still completes normally.
        let engine = Arc::clone(&entries[0].engine);
        let mut requests = Vec::with_capacity(entries.len());
        let mut tickets = Vec::with_capacity(entries.len());
        let mut traces = Vec::with_capacity(entries.len());
        let mut queue_nanos = Vec::with_capacity(entries.len());
        for entry in entries {
            queue_nanos.push(duration_to_nanos(
                started.saturating_duration_since(entry.enqueued_at),
            ));
            traces.push(entry.trace);
            requests.push(entry.request);
            tickets.push(entry.ticket);
        }
        let plan_started = Instant::now();
        let mut tick = engine.begin_tick_with(
            &requests,
            &TickConfig {
                shards: inner.pool_size,
                share_arena_at: inner.share_arena_at,
            },
        );
        let units = tick.take_units();
        let planned_at = Instant::now();
        let job = FinishJob {
            tick_requests: tickets.len(),
            tick,
            tickets,
            started,
            lane,
            planned_at,
            plan_nanos: duration_to_nanos(planned_at.saturating_duration_since(plan_started)),
            traces,
            queue_nanos,
        };
        if units.is_empty() {
            // Everything answered at plan time (cache hits, trivial
            // routes): no worker will ever report, finish inline.
            finish_group(inner, job, Vec::new());
            continue;
        }
        *lock(&inner.inflight) += 1;
        let collector = Collector::new(units.len(), job);
        for (idx, unit) in units.into_iter().enumerate() {
            let item = WorkItem {
                unit,
                collector: Arc::clone(&collector),
                idx,
            };
            let sent = match lane {
                Lane::Fast => inner.work.send_priority(item),
                Lane::Slow => inner.work.send(item),
            };
            debug_assert!(sent, "work channel closes only after the batcher exits");
        }
    }
    // Backpressure on the pool feed: wait here (not before the flush,
    // so deadline shedding above still runs promptly) until the
    // in-flight count drops below the cap.
    let cap = inner.inflight_cap();
    let mut inflight = lock(&inner.inflight);
    while *inflight >= cap {
        inflight = inner
            .inflight_done
            .wait(inflight)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Completes one tick group: folds the unit outputs through
/// `Tick::finish`, fulfills the tickets, and feeds the stats and the
/// adaptive controller. Runs on whichever worker reported the group's
/// last unit (inline in the batcher for unit-less groups).
fn finish_group(inner: &Inner, job: FinishJob, outputs: Vec<TickOutput>) {
    let FinishJob {
        tick,
        tickets,
        started,
        tick_requests,
        lane,
        planned_at,
        plan_nanos,
        traces,
        queue_nanos,
    } = job;
    let had_units = !outputs.is_empty();
    // Evaluation ran from dispatch (planning done) until the last unit
    // reported — i.e. until this function was entered; everything after
    // is result materialization + ticket fulfillment (the encode stage).
    let finish_started = Instant::now();
    let eval_nanos = duration_to_nanos(finish_started.saturating_duration_since(planned_at));
    let (results, batch_stats) = tick.finish(outputs);
    debug_assert_eq!(results.len(), tickets.len());
    let mut fulfilled = 0u64;
    let mut lost_to_cancel = 0u64;
    for (ticket, result) in tickets.into_iter().zip(results) {
        // `fulfill` reports whether the answer landed — a ticket
        // cancelled mid-flight keeps its `Err(Cancelled)` and is
        // counted as cancelled, not completed.
        if ticket.fulfill(result) {
            fulfilled += 1;
        } else {
            lost_to_cancel += 1;
        }
    }
    let encode_nanos = finish_started.elapsed().as_nanos() as u64;
    let nanos = started.elapsed().as_nanos() as u64;
    {
        let mut stats = lock(&inner.stats);
        let stats = &mut *stats;
        stats.completed += fulfilled;
        stats.cancelled += lost_to_cancel;
        stats.absorb_batch(&batch_stats);
        stats.tick_nanos_total += nanos;
        stats.tick_nanos_max = stats.tick_nanos_max.max(nanos);
        stats.plan_ns.record(plan_nanos);
        stats.eval_ns.record(eval_nanos);
        stats.encode_ns.record(encode_nanos);
        let (queue_hist, request_hist) = match lane {
            Lane::Fast => (&mut stats.queue_ns_fast, &mut stats.request_ns_fast),
            Lane::Slow => (&mut stats.queue_ns_slow, &mut stats.request_ns_slow),
        };
        for &q in &queue_nanos {
            queue_hist.record(q);
            request_hist.record(q.saturating_add(nanos));
        }
    }
    // Span writes happen outside the stats lock — the ring is lock-free.
    let lane_tag = span_lane(lane);
    for (i, &trace) in traces.iter().enumerate() {
        inner.spans.push(Span {
            trace,
            stage: Stage::Queued,
            lane: lane_tag,
            nanos: queue_nanos[i],
            detail: 0,
        });
        inner.spans.push(Span {
            trace,
            stage: Stage::Planned,
            lane: lane_tag,
            nanos: plan_nanos,
            detail: 0,
        });
        inner.spans.push(Span {
            trace,
            stage: Stage::Evaluated,
            lane: lane_tag,
            nanos: eval_nanos,
            detail: batch_stats.shared_gates as u64,
        });
        inner.spans.push(Span {
            trace,
            stage: Stage::Encoded,
            lane: lane_tag,
            nanos: encode_nanos,
            detail: 0,
        });
    }
    if had_units {
        let mut inflight = lock(&inner.inflight);
        *inflight = inflight.saturating_sub(1);
        drop(inflight);
        inner.inflight_done.notify_all();
    }
    let queue_after = lock(&inner.ingress).len();
    adapt(inner, tick_requests, queue_after, nanos);
}

/// The adaptive tick-sizing controller, run after every tick. The
/// feedback signals are the queue depth left after the flush (backlog
/// pressure) and an EWMA of the per-request tick latency; the actuators
/// are the *effective* `max_batch` and `max_wait` the batcher reads,
/// always bounded by the configured knobs:
///
/// * backlog (`queue_after ≥ effective_batch`) → throughput mode:
///   double the batch bound (≤ configured `max_batch`), halve the
///   patience — bigger ticks amortize planning and share arenas;
/// * idle (`queue_after == 0` and the tick filled ≤ ¼ of the bound) →
///   latency mode: halve the batch bound (≥ 1) and grow the patience
///   toward the observed per-request service time (≤ configured
///   `max_wait`) so light load still coalesces without waiting longer
///   than one request costs anyway.
///
/// Tick sizing never changes answers — only latency and throughput —
/// so the controller needs no coordination with the solve path.
fn adapt(inner: &Inner, tick_requests: usize, queue_after: usize, tick_nanos: u64) {
    let per_request = tick_nanos / tick_requests.max(1) as u64;
    let prev = inner.unit_ewma_nanos.load(Ordering::Relaxed);
    let ewma = if prev == 0 {
        per_request
    } else {
        (3 * prev + per_request) / 4
    };
    inner.unit_ewma_nanos.store(ewma, Ordering::Relaxed);
    if !inner.adaptive {
        return;
    }
    let cur_batch = inner.effective_batch.load(Ordering::Relaxed);
    let cur_wait = inner.effective_wait_nanos.load(Ordering::Relaxed);
    let mut batch = cur_batch;
    let mut wait = cur_wait;
    if queue_after >= cur_batch {
        batch = cur_batch.saturating_mul(2).min(inner.max_batch);
        wait = cur_wait / 2;
    } else if queue_after == 0 && tick_requests.saturating_mul(4) <= cur_batch {
        batch = (cur_batch / 2).max(1);
        wait = cur_wait
            .saturating_mul(2)
            .max(ewma)
            .min(inner.max_wait_nanos);
    }
    if batch != cur_batch || wait != cur_wait {
        inner.effective_batch.store(batch, Ordering::Relaxed);
        inner.effective_wait_nanos.store(wait, Ordering::Relaxed);
        lock(&inner.stats).adaptive_adjustments += 1;
    }
}

// The handle crosses producer threads freely.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Runtime>();
    assert_send_sync::<Ticket>();
};
