//! Static, gossip-free fleet membership and the rendezvous routing
//! function. A fleet is a fixed list of members (name, address,
//! capacity weight) handed to the router at startup — from a
//! `--members` file or repeated `--member` flags; there is no
//! discovery protocol to converge or disagree about.
//!
//! Routing is **weighted rendezvous (HRW) hashing** on the instance
//! fingerprint: each member scores every fingerprint independently and
//! the highest score owns it, so editing the member list only moves
//! the instances whose winner changed — no ring to rebalance. Weights
//! scale a member's share of fingerprints in proportion to its
//! capacity (the `-w / ln(u)` construction, exact in expectation).
//! Routing only ever picks *which member answers*; answers themselves
//! never depend on it, so the `f64` math here is not a correctness
//! surface.

/// One fleet member: a `phom serve --listen` process the router fans
/// out to.
#[derive(Clone, Debug, PartialEq)]
pub struct MemberSpec {
    /// Stable routing identity — renaming a member reshuffles the
    /// fingerprints it owns, re-addressing it does not.
    pub name: String,
    /// The member's listen address (`host:port`).
    pub addr: String,
    /// Relative capacity weight (> 0); a weight-2 member owns about
    /// twice the fingerprints of a weight-1 member.
    pub weight: f64,
}

impl MemberSpec {
    /// Parses the flag form `name=addr[@weight]`
    /// (e.g. `a=127.0.0.1:7401@2`).
    pub fn parse(spec: &str) -> Result<MemberSpec, String> {
        let (name, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("member '{spec}' is not name=addr[@weight]"))?;
        let (addr, weight) = match rest.rsplit_once('@') {
            Some((addr, w)) => {
                let w: f64 = w
                    .parse()
                    .map_err(|_| format!("member '{spec}': bad weight '{w}'"))?;
                (addr, w)
            }
            None => (rest, 1.0),
        };
        if name.is_empty() || addr.is_empty() {
            return Err(format!("member '{spec}': empty name or address"));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(format!("member '{spec}': weight must be finite and > 0"));
        }
        Ok(MemberSpec {
            name: name.to_string(),
            addr: addr.to_string(),
            weight,
        })
    }
}

/// Parses a members file: one member per line, either whitespace form
/// (`name addr [weight]`) or flag form (`name=addr[@weight]`); blank
/// lines and `#` comments are skipped. Names must be unique and at
/// least one member must remain.
pub fn parse_members(text: &str) -> Result<Vec<MemberSpec>, String> {
    let mut members = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let member = if line.contains('=') {
            MemberSpec::parse(line)
        } else {
            let mut parts = line.split_whitespace();
            let (Some(name), Some(addr)) = (parts.next(), parts.next()) else {
                return Err(format!(
                    "line {}: expected 'name addr [weight]'",
                    lineno + 1
                ));
            };
            let weight = match parts.next() {
                Some(w) => w
                    .parse()
                    .map_err(|_| format!("line {}: bad weight '{w}'", lineno + 1))?,
                None => 1.0,
            };
            MemberSpec::parse(&format!("{name}={addr}@{weight}"))
        }
        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        members.push(member);
    }
    validate_members(&members)?;
    Ok(members)
}

/// Checks a member list is servable: non-empty, unique names.
pub fn validate_members(members: &[MemberSpec]) -> Result<(), String> {
    if members.is_empty() {
        return Err("a fleet needs at least one member".into());
    }
    for (i, m) in members.iter().enumerate() {
        if members[..i].iter().any(|other| other.name == m.name) {
            return Err(format!("duplicate member name '{}'", m.name));
        }
    }
    Ok(())
}

/// splitmix64 finalizer — a fast, well-mixed 64-bit permutation. The
/// routing hash is hand-rolled (FNV over the name, mixed with the
/// fingerprint) so placement is deterministic across builds and
/// processes — `std`'s hashers don't promise that.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The rendezvous point for (fingerprint, member): uniform in `u64`.
fn rendezvous_point(fingerprint: u64, name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(fingerprint ^ mix64(h))
}

/// The member owning `fingerprint` under weighted rendezvous hashing:
/// the index maximizing `-weight / ln(u)` where `u ∈ (0,1)` is the
/// member's uniform rendezvous point. Deterministic; total (every
/// fingerprint has exactly one owner for a non-empty list).
///
/// # Panics
///
/// On an empty member list (validated at router construction).
pub fn owner_of(fingerprint: u64, members: &[MemberSpec]) -> usize {
    assert!(!members.is_empty(), "owner_of on an empty member list");
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, m) in members.iter().enumerate() {
        // u in (0,1): never exactly 0 or 1, so ln(u) is finite and < 0.
        let u = (rendezvous_point(fingerprint, &m.name) as f64 + 1.0) / (u64::MAX as f64 + 2.0);
        let score = -m.weight / u.ln();
        if score > best_score {
            best = i;
            best_score = score;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(weights: &[f64]) -> Vec<MemberSpec> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| MemberSpec {
                name: format!("m{i}"),
                addr: format!("127.0.0.1:{}", 7400 + i),
                weight: w,
            })
            .collect()
    }

    #[test]
    fn parses_both_file_forms_and_rejects_junk() {
        let text = "# fleet\n\na 127.0.0.1:7401 2\nb=127.0.0.1:7402@0.5\nc 127.0.0.1:7403\n";
        let members = parse_members(text).unwrap();
        assert_eq!(members.len(), 3);
        assert_eq!(members[0].name, "a");
        assert_eq!(members[0].weight, 2.0);
        assert_eq!(members[1].addr, "127.0.0.1:7402");
        assert_eq!(members[1].weight, 0.5);
        assert_eq!(members[2].weight, 1.0);

        assert!(parse_members("").is_err());
        assert!(parse_members("a 127.0.0.1:1\na 127.0.0.1:2").is_err());
        assert!(parse_members("a=127.0.0.1:1@-1").is_err());
        assert!(parse_members("only-a-name").is_err());
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        let members = fleet(&[1.0, 1.0, 1.0]);
        for fp in 0..1000u64 {
            let owner = owner_of(fp, &members);
            assert!(owner < members.len());
            assert_eq!(owner, owner_of(fp, &members));
        }
    }

    #[test]
    fn membership_edits_only_move_affected_fingerprints() {
        // The rendezvous property: removing a member only relocates the
        // fingerprints it owned; everything else keeps its owner.
        let full = fleet(&[1.0, 1.0, 1.0]);
        let reduced = vec![full[0].clone(), full[1].clone()];
        for fp in 0..2000u64 {
            let before = owner_of(fp, &full);
            let after = owner_of(fp, &reduced);
            if before < 2 {
                assert_eq!(before, after, "fp {fp} moved although its owner stayed");
            }
        }
    }

    #[test]
    fn weights_bias_ownership_share() {
        let members = fleet(&[1.0, 3.0]);
        let n = 20_000u64;
        let heavy = (0..n).filter(|&fp| owner_of(fp, &members) == 1).count();
        let share = heavy as f64 / n as f64;
        // Expectation is 3/4; the tolerance is generous (binomial
        // σ ≈ 0.003 at n = 20k).
        assert!(
            (share - 0.75).abs() < 0.03,
            "weight-3 member owns {share:.3} of fingerprints, expected ≈ 0.75"
        );
    }
}
