//! The front-door router: one listen address speaking the standard
//! wire protocol, fanning out to N member `phom serve` processes over
//! [`phom_net::Client`] connections.
//!
//! ## Structure
//!
//! An accept thread plus one handler thread per client connection —
//! the same shape as [`phom_net::Server`]. Each connection owns its
//! own member links (lazily connected, reconnect-with-backoff via
//! [`Client::connect_with_retry`]) and its own ticket table mapping
//! router tickets to `(member, member_ticket)` pairs; a ticket is
//! pinned to the member link it was submitted over, which is exactly
//! what makes handoff safe — tickets created before a routing flip
//! keep polling through the old member until resolved.
//!
//! Routing state (placements, which members hold which fingerprints,
//! cached instances for handoff warm-up, in-flight counts, the drain
//! queue) is shared across connections under one mutex; member I/O is
//! never performed while holding it.
//!
//! ## Failure semantics
//!
//! The router never silently retries a `submit` — once a submit frame
//! reached a member, an I/O failure answers the typed
//! `member_unavailable` error and exactly-once stays with the client.
//! (The one deliberate exception: a submit *rejected* by the member
//! with `invalid_query` because the member lost its registry — e.g. a
//! restart — is definitively not admitted, so the router re-registers
//! and forwards once more.) A lost member link loses the tickets
//! routed over it: each answers `member_unavailable` exactly once,
//! then is gone. Member error frames (`overloaded` with its
//! `capacity`, `deadline_exceeded`, …) are relayed verbatim, so
//! backpressure reaches the edge.
//!
//! ## Observability
//!
//! The router is the fleet's trace front door: a `submit` whose request
//! lacks a `"trace"` field gets a freshly minted
//! [`TraceId`](phom_obs::TraceId) injected before forwarding, so the
//! member records its per-stage spans under the same id, and the
//! router's own `routed` span (forward latency, member index in
//! `detail`) lands in a local span ring. The `trace` op fans out to
//! every member and merges member spans with the router's routing
//! spans; the `metrics` op renders the router counters plus the
//! fleet-merged latency histograms (same stable names as a member's,
//! so dashboards work at either level); and the `stats` rollup merges
//! the members' sparse histograms bucket-wise.

use crate::members::{owner_of, validate_members, MemberSpec};
use phom_net::json::Json;
use phom_net::wire::{self, read_frame, write_frame};
use phom_net::{Client, MuxClient, MuxTicket, NetError};
use phom_obs::{Histogram, PromText, Span, SpanLane, SpanRing, Stage, TraceId};
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration for a [`Router`].
#[derive(Clone, Debug)]
pub struct RouterBuilder {
    max_frame: usize,
    poll_wait_cap: Duration,
    connect_attempts: u32,
    connect_backoff: Duration,
}

impl Default for RouterBuilder {
    fn default() -> Self {
        RouterBuilder::new()
    }
}

impl RouterBuilder {
    /// Defaults: 8 MiB frame bound, 2 s poll-wait cap, 3 connection
    /// attempts with 50 ms backoff per member call.
    pub fn new() -> Self {
        RouterBuilder {
            max_frame: wire::MAX_FRAME,
            poll_wait_cap: Duration::from_secs(2),
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(50),
        }
    }

    /// Bound on a single wire frame, client side and member side.
    pub fn max_frame(mut self, bytes: usize) -> Self {
        self.max_frame = bytes.max(64);
        self
    }

    /// Cap on the `wait_ms` a `poll` op may block for.
    pub fn poll_wait_cap(mut self, cap: Duration) -> Self {
        self.poll_wait_cap = cap;
        self
    }

    /// Member (re)connection budget: up to `attempts` tries with
    /// linearly growing `backoff` before a member call answers
    /// `member_unavailable`.
    pub fn connect_retry(mut self, attempts: u32, backoff: Duration) -> Self {
        self.connect_attempts = attempts.max(1);
        self.connect_backoff = backoff;
        self
    }

    /// Binds the listener and spawns the accept + maintenance threads.
    pub fn bind(self, addr: impl ToSocketAddrs, members: Vec<MemberSpec>) -> io::Result<Router> {
        validate_members(&members).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let mux = members
            .iter()
            .map(|_| {
                Mutex::new(MuxMemberLink {
                    client: None,
                    v1_only: false,
                })
            })
            .collect();
        let inner = Arc::new(RouterInner {
            members,
            mux,
            draining: AtomicBool::new(false),
            max_frame: self.max_frame,
            poll_wait_cap: self.poll_wait_cap,
            connect_attempts: self.connect_attempts,
            connect_backoff: self.connect_backoff,
            state: Mutex::new(RouteState::default()),
            maint_wake: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            counters: RouterCounters::default(),
            spans: SpanRing::new(phom_obs::DEFAULT_RING_CAPACITY),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("phom-fleet-accept".into())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn accept thread")
        };
        let maintenance = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("phom-fleet-maint".into())
                .spawn(move || maintenance_loop(&inner))
                .expect("spawn maintenance thread")
        };
        Ok(Router {
            inner,
            accept: Some(accept),
            maintenance: Some(maintenance),
            local_addr,
        })
    }
}

/// Routing state shared by every connection. Member I/O is never done
/// under this lock.
#[derive(Default)]
struct RouteState {
    /// Current owner of each registered fingerprint.
    placements: HashMap<u64, usize>,
    /// Which members are known to hold which fingerprints (lazily
    /// populated by broadcast-on-demand registration).
    holders: HashMap<u64, BTreeSet<usize>>,
    /// Canonically re-encoded instances, kept for handoff warm-up and
    /// lazy registration.
    instances: HashMap<u64, Json>,
    /// Outstanding tickets per (member, fingerprint) — the drain
    /// condition for deregistering after a handoff.
    inflight: HashMap<(usize, u64), u64>,
    /// Handoffs waiting for the old member's in-flight tickets to
    /// resolve, with a retry count for the deregister call.
    drains: Vec<DrainJob>,
}

struct DrainJob {
    version: u64,
    member: usize,
    tries: u32,
}

#[derive(Default)]
struct RouterCounters {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    submitted: AtomicU64,
    mux_submits: AtomicU64,
    delivered: AtomicU64,
    member_unavailable: AtomicU64,
    handoffs: AtomicU64,
    lazy_registers: AtomicU64,
    drained_deregisters: AtomicU64,
    tickets_open: AtomicI64,
}

struct RouterInner {
    members: Vec<MemberSpec>,
    draining: AtomicBool,
    max_frame: usize,
    poll_wait_cap: Duration,
    connect_attempts: u32,
    connect_backoff: Duration,
    state: Mutex<RouteState>,
    /// One shared protocol-v2 link per member, multiplexing the
    /// submits of *every* client connection onto a single pipelined
    /// connection (v1 per-connection links remain for the control
    /// plane and as the fallback for members that reject `hello`).
    mux: Vec<Mutex<MuxMemberLink>>,
    /// Wakes the maintenance thread when a drain may have completed.
    maint_wake: Condvar,
    conns: Mutex<Vec<(TcpStream, Option<JoinHandle<()>>)>>,
    counters: RouterCounters,
    /// Lock-free overwrite-oldest ring of `routed` spans — one per
    /// forwarded submit, under the request's trace id.
    spans: SpanRing,
}

/// A point-in-time snapshot of the router's own counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    /// Client connections accepted over the router's lifetime.
    pub connections: u64,
    /// Frames read off client connections.
    pub frames_in: u64,
    /// Frames written to client connections.
    pub frames_out: u64,
    /// `submit` ops successfully forwarded (a member ticket exists).
    pub submitted: u64,
    /// Of those, submits that rode a shared multiplexed (protocol-v2)
    /// member link instead of a per-connection v1 round trip.
    pub mux_submits: u64,
    /// Answers delivered to clients via `poll`.
    pub delivered: u64,
    /// Ops answered with the typed `member_unavailable` frame.
    pub member_unavailable: u64,
    /// Completed `move` ops (routing flips).
    pub handoffs: u64,
    /// Broadcast-on-demand registrations forwarded to members.
    pub lazy_registers: u64,
    /// Post-handoff deregistrations completed on drained members.
    pub drained_deregisters: u64,
    /// Tickets currently held router-side awaiting delivery (0 after a
    /// clean drain — the no-leak gauge).
    pub open_tickets: i64,
}

/// The fleet front door. See the [module docs](self) for structure and
/// failure semantics, and [`phom_net::wire`] for the ops it serves
/// (the member protocol plus `move` and `fleet`).
pub struct Router {
    inner: Arc<RouterInner>,
    accept: Option<JoinHandle<()>>,
    maintenance: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Router {
    /// Starts a configuration.
    pub fn builder() -> RouterBuilder {
        RouterBuilder::new()
    }

    /// Binds with default configuration.
    pub fn bind(addr: impl ToSocketAddrs, members: Vec<MemberSpec>) -> io::Result<Router> {
        RouterBuilder::new().bind(addr, members)
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The static membership.
    pub fn members(&self) -> &[MemberSpec] {
        &self.inner.members
    }

    /// The router's own counters.
    pub fn stats(&self) -> RouterStats {
        let c = &self.inner.counters;
        RouterStats {
            connections: c.connections.load(Ordering::Relaxed),
            frames_in: c.frames_in.load(Ordering::Relaxed),
            frames_out: c.frames_out.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            mux_submits: c.mux_submits.load(Ordering::Relaxed),
            delivered: c.delivered.load(Ordering::Relaxed),
            member_unavailable: c.member_unavailable.load(Ordering::Relaxed),
            handoffs: c.handoffs.load(Ordering::Relaxed),
            lazy_registers: c.lazy_registers.load(Ordering::Relaxed),
            drained_deregisters: c.drained_deregisters.load(Ordering::Relaxed),
            open_tickets: c.tickets_open.load(Ordering::SeqCst),
        }
    }

    /// Tickets currently held on behalf of connected clients.
    pub fn open_tickets(&self) -> i64 {
        self.inner.counters.tickets_open.load(Ordering::SeqCst)
    }

    /// Draining shutdown: stop accepting, answer new `submit`s with
    /// `cancelled`, give clients up to `drain` to poll their
    /// outstanding answers, then close every connection and join every
    /// thread. Returns the final [`RouterStats`].
    pub fn shutdown(mut self, drain: Duration) -> RouterStats {
        self.shutdown_impl(drain);
        self.stats()
    }

    fn shutdown_impl(&mut self, drain: Duration) {
        self.inner.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let deadline = Instant::now() + drain;
        while self.open_tickets() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let conns = std::mem::take(&mut *lock(&self.inner.conns));
        for (stream, _) in &conns {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for (_, handle) in conns {
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
        self.inner.maint_wake.notify_all();
        if let Some(maintenance) = self.maintenance.take() {
            let _ = maintenance.join();
        }
    }
}

impl Drop for Router {
    /// Dropping without [`shutdown`](Router::shutdown) still stops
    /// every thread (no drain window).
    fn drop(&mut self) {
        if self.accept.is_some() || self.maintenance.is_some() {
            self.shutdown_impl(Duration::ZERO);
        }
    }
}

fn accept_loop(inner: &Arc<RouterInner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let _ = stream.set_nodelay(true);
        inner.counters.connections.fetch_add(1, Ordering::Relaxed);
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        let inner2 = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("phom-fleet-conn".into())
            .spawn(move || Conn::new(&inner2).run(stream))
            .expect("spawn connection thread");
        let mut conns = lock(&inner.conns);
        conns.retain_mut(|(_, slot)| match slot {
            Some(h) if h.is_finished() => {
                let _ = slot.take().expect("present").join();
                false
            }
            _ => true,
        });
        conns.push((clone, Some(handle)));
    }
}

/// Background handoff completion: once a drained (member, version)
/// pair has no in-flight tickets left, deregister the version on the
/// old member. Deregistration is an at-most-`MAX_TRIES` best effort —
/// a dead member's registry died with it, so giving up is safe.
fn maintenance_loop(inner: &Arc<RouterInner>) {
    const MAX_TRIES: u32 = 5;
    loop {
        let ready: Vec<DrainJob> = {
            let mut state = lock(&inner.state);
            if inner.draining.load(Ordering::SeqCst) {
                return;
            }
            let (ready, waiting) = std::mem::take(&mut state.drains)
                .into_iter()
                .partition(|job| {
                    state
                        .inflight
                        .get(&(job.member, job.version))
                        .copied()
                        .unwrap_or(0)
                        == 0
                });
            state.drains = waiting;
            if ready.is_empty() {
                let (guard, _) = inner
                    .maint_wake
                    .wait_timeout(state, Duration::from_millis(25))
                    .unwrap_or_else(PoisonError::into_inner);
                drop(guard);
                continue;
            }
            ready
        };
        for mut job in ready {
            let member = &inner.members[job.member];
            let done = Client::connect_with_retry(
                member.addr.as_str(),
                inner.connect_attempts,
                inner.connect_backoff,
            )
            .and_then(|mut client| client.deregister(job.version))
            .is_ok();
            let mut state = lock(&inner.state);
            if done {
                inner
                    .counters
                    .drained_deregisters
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(holders) = state.holders.get_mut(&job.version) {
                    holders.remove(&job.member);
                }
            } else {
                job.tries += 1;
                if job.tries < MAX_TRIES {
                    state.drains.push(job);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reply envelopes (the router speaks the same envelope as the server)
// ---------------------------------------------------------------------

fn ok_reply(request: &Json, payload: Json) -> Json {
    let mut pairs = Vec::with_capacity(2);
    if let Some(id) = request.get("id") {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.push(("ok".to_string(), payload));
    Json::Obj(pairs)
}

fn err_reply(request: &Json, code: &str, msg: &str) -> Json {
    let mut pairs = Vec::with_capacity(2);
    if let Some(id) = request.get("id") {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.push((
        "err".to_string(),
        Json::obj(vec![("code", Json::str(code)), ("msg", Json::str(msg))]),
    ));
    Json::Obj(pairs)
}

/// An error envelope rebuilt from a typed [`NetError::Server`] that
/// arrived through a multiplexed link (where the raw member frame is
/// gone by the time the router answers): `overloaded` keeps its
/// `capacity`, matching what [`relay_reply`] passes through verbatim.
fn typed_err_reply(request: &Json, code: &str, msg: &str, capacity: Option<usize>) -> Json {
    let mut err = vec![
        ("code".to_string(), Json::str(code)),
        ("msg".to_string(), Json::str(msg)),
    ];
    if let Some(capacity) = capacity {
        err.push(("capacity".to_string(), Json::u64(capacity as u64)));
    }
    let mut pairs = Vec::with_capacity(2);
    if let Some(id) = request.get("id") {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.push(("err".to_string(), Json::Obj(err)));
    Json::Obj(pairs)
}

/// Re-envelopes a member's raw reply under the client's `id`: `ok`
/// payloads and `err` objects (with all their structured fields —
/// `overloaded` keeps its `capacity`) pass through verbatim.
fn relay_reply(request: &Json, member_reply: Json) -> Json {
    let mut pairs = Vec::with_capacity(2);
    if let Some(id) = request.get("id") {
        pairs.push(("id".to_string(), id.clone()));
    }
    if let Some(ok) = member_reply.get("ok") {
        pairs.push(("ok".to_string(), ok.clone()));
    } else if let Some(err) = member_reply.get("err") {
        pairs.push(("err".to_string(), err.clone()));
    } else {
        return err_reply(
            request,
            "bad_frame",
            "member answered an unrecognized frame",
        );
    }
    Json::Obj(pairs)
}

// ---------------------------------------------------------------------
// Per-connection handler
// ---------------------------------------------------------------------

/// A ticket forwarded to a member, pinned to the link generation it
/// was submitted over — if that link dies, the member-side ticket died
/// with it, and the router answers `member_unavailable` exactly once.
struct RoutedTicket {
    member: usize,
    generation: u64,
    version: u64,
    remote: Remote,
}

/// Where a routed ticket's answer lives.
#[derive(Clone)]
enum Remote {
    /// A member-side ticket id, polled over the per-connection v1
    /// link it was submitted on.
    V1(u64),
    /// A pushed completion on a shared multiplexed link. The ticket
    /// keeps its `MuxClient` alive (via `Arc`) even after the shared
    /// link is swapped, so in-flight answers on the old connection
    /// still arrive; the ticket itself reports the connection's death.
    Mux {
        link: Arc<MuxClient>,
        ticket: Arc<MuxTicket>,
    },
}

struct MemberLink {
    client: Option<Client>,
    /// Bumped every time the link is torn down; tickets remember the
    /// generation they were created under.
    generation: u64,
}

/// The shared pipelined link to one member, lazily connected. A
/// member that answers `hello` with a typed error is v1-only: the
/// router stops retrying the upgrade and every submit takes the v1
/// round-trip path instead.
struct MuxMemberLink {
    client: Option<Arc<MuxClient>>,
    v1_only: bool,
}

struct Conn<'a> {
    inner: &'a RouterInner,
    links: Vec<MemberLink>,
    tickets: HashMap<u64, RoutedTicket>,
    next_ticket: u64,
}

impl<'a> Conn<'a> {
    fn new(inner: &'a RouterInner) -> Conn<'a> {
        Conn {
            inner,
            links: inner
                .members
                .iter()
                .map(|_| MemberLink {
                    client: None,
                    generation: 0,
                })
                .collect(),
            tickets: HashMap::new(),
            next_ticket: 1,
        }
    }

    fn run(mut self, mut stream: TcpStream) {
        loop {
            let frame = match read_frame(&mut stream, self.inner.max_frame) {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    let reply = err_reply(&Json::Null, "bad_frame", &e.to_string());
                    if self.write_reply(&mut stream, reply).is_err() {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            };
            self.inner
                .counters
                .frames_in
                .fetch_add(1, Ordering::Relaxed);
            let reply = self.handle_op(&frame);
            if self.write_reply(&mut stream, reply).is_err() {
                break;
            }
        }
        // Tickets die with the connection; release their drain holds.
        let tickets = std::mem::take(&mut self.tickets);
        self.inner
            .counters
            .tickets_open
            .fetch_sub(tickets.len() as i64, Ordering::SeqCst);
        for t in tickets.values() {
            self.dec_inflight(t.member, t.version);
        }
    }

    fn write_reply(&self, stream: &mut TcpStream, reply: Json) -> io::Result<()> {
        self.inner
            .counters
            .frames_out
            .fetch_add(1, Ordering::Relaxed);
        write_frame(stream, &reply)
    }

    // -- member link plumbing --------------------------------------

    /// The connected link to member `idx`, (re)connecting with the
    /// configured retry budget on demand.
    fn link(&mut self, idx: usize) -> Result<&mut Client, String> {
        if self.links[idx].client.is_none() {
            let member = &self.inner.members[idx];
            match Client::connect_with_retry(
                member.addr.as_str(),
                self.inner.connect_attempts,
                self.inner.connect_backoff,
            ) {
                Ok(client) => self.links[idx].client = Some(client),
                Err(e) => return Err(e.to_string()),
            }
        }
        Ok(self.links[idx].client.as_mut().expect("connected above"))
    }

    /// Tears a link down after an I/O failure; tickets pinned to the
    /// old generation resolve as `member_unavailable` on their next
    /// poll.
    fn drop_link(&mut self, idx: usize) {
        self.links[idx].client = None;
        self.links[idx].generation += 1;
    }

    /// The shared multiplexed link to member `idx`, negotiating
    /// `hello` on first use. `None` means take the v1 path instead:
    /// permanently for a member that rejected the upgrade with a typed
    /// error, just for this op on a transient connect failure (the v1
    /// path applies the full retry budget).
    fn mux_link(&self, idx: usize) -> Option<Arc<MuxClient>> {
        let mut link = lock(&self.inner.mux[idx]);
        if link.v1_only {
            return None;
        }
        if let Some(client) = link.client.as_ref() {
            return Some(Arc::clone(client));
        }
        match MuxClient::connect(self.inner.members[idx].addr.as_str()) {
            Ok(client) => {
                let client = Arc::new(client);
                link.client = Some(Arc::clone(&client));
                Some(client)
            }
            Err(NetError::Server { .. } | NetError::Protocol(_)) => {
                // The member is reachable but does not speak v2: stop
                // proposing the upgrade on this link.
                link.v1_only = true;
                None
            }
            Err(_) => None,
        }
    }

    /// Swaps out a dead shared link (unless another connection already
    /// replaced it). Tickets still holding the old `Arc` resolve
    /// through it — or report its death themselves.
    fn drop_mux_link(&self, idx: usize, dead: &Arc<MuxClient>) {
        let mut link = lock(&self.inner.mux[idx]);
        if link.client.as_ref().is_some_and(|c| Arc::ptr_eq(c, dead)) {
            link.client = None;
        }
    }

    /// One request/reply exchange with member `idx`. `Ok` is the raw
    /// member reply (possibly an error envelope, relayed upward);
    /// `Err` means the member could not be reached or died mid-call —
    /// the link is torn down and the caller answers
    /// `member_unavailable`.
    fn member_call(&mut self, idx: usize, frame: Json) -> Result<Json, String> {
        let client = self.link(idx)?;
        match client.call_raw(frame) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                self.drop_link(idx);
                Err(e.to_string())
            }
        }
    }

    fn member_unavailable_reply(&self, frame: &Json, idx: usize, why: &str) -> Json {
        self.inner
            .counters
            .member_unavailable
            .fetch_add(1, Ordering::Relaxed);
        let member = &self.inner.members[idx];
        let mut pairs = Vec::with_capacity(2);
        if let Some(id) = frame.get("id") {
            pairs.push(("id".to_string(), id.clone()));
        }
        pairs.push((
            "err".to_string(),
            Json::obj(vec![
                ("code", Json::str("member_unavailable")),
                ("member", Json::str(&member.name)),
                (
                    "msg",
                    Json::str(format!(
                        "member '{}' at {} unavailable: {why}",
                        member.name, member.addr
                    )),
                ),
            ]),
        ));
        Json::Obj(pairs)
    }

    fn dec_inflight(&self, member: usize, version: u64) {
        let mut state = lock(&self.inner.state);
        if let Some(n) = state.inflight.get_mut(&(member, version)) {
            *n -= 1;
            if *n == 0 {
                state.inflight.remove(&(member, version));
                self.inner.maint_wake.notify_all();
            }
        }
    }

    /// Removes a ticket in a terminal state, releasing its bookkeeping.
    fn finish_ticket(&mut self, id: u64) {
        if let Some(t) = self.tickets.remove(&id) {
            self.inner
                .counters
                .tickets_open
                .fetch_sub(1, Ordering::SeqCst);
            self.dec_inflight(t.member, t.version);
        }
    }

    /// Ensures member `idx` holds `version`, forwarding a hinted
    /// `register` if not (broadcast-on-demand). `Err` carries the
    /// ready-to-send error reply.
    fn ensure_registered(&mut self, frame: &Json, idx: usize, version: u64) -> Result<(), Json> {
        let instance = {
            let state = lock(&self.inner.state);
            if state
                .holders
                .get(&version)
                .is_some_and(|h| h.contains(&idx))
            {
                return Ok(());
            }
            match state.instances.get(&version) {
                Some(instance) => instance.clone(),
                None => {
                    return Err(err_reply(
                        frame,
                        "invalid_query",
                        &format!("no instance registered for version {version:#018x}"),
                    ))
                }
            }
        };
        let register = Json::obj(vec![
            ("op", Json::str("register")),
            ("version", wire::encode_version(version)),
            ("instance", instance),
        ]);
        match self.member_call(idx, register) {
            Ok(reply) if reply.get("ok").is_some() => {
                self.inner
                    .counters
                    .lazy_registers
                    .fetch_add(1, Ordering::Relaxed);
                let mut state = lock(&self.inner.state);
                state.holders.entry(version).or_default().insert(idx);
                Ok(())
            }
            Ok(reply) => Err(relay_reply(frame, reply)),
            Err(why) => Err(self.member_unavailable_reply(frame, idx, &why)),
        }
    }

    // -- op dispatch -----------------------------------------------

    fn handle_op(&mut self, frame: &Json) -> Json {
        let Some(op) = frame.get("op").and_then(Json::as_str) else {
            return err_reply(frame, "bad_request", "missing 'op'");
        };
        match op {
            "ping" => ok_reply(
                frame,
                Json::obj(vec![
                    ("pong", Json::Bool(true)),
                    ("router", Json::Bool(true)),
                ]),
            ),
            "register" => self.op_register(frame),
            "submit" => self.op_submit(frame),
            "poll" => self.op_poll(frame),
            "cancel" => self.op_cancel(frame),
            "move" => self.op_move(frame),
            "stats" => self.op_stats(frame),
            "metrics" => self.op_metrics(frame),
            "trace" => self.op_trace(frame),
            "fleet" => self.op_fleet(frame),
            other => err_reply(frame, "bad_request", &format!("unknown op '{other}'")),
        }
    }

    /// `register`: decode + fingerprint the instance, cache its
    /// canonical encoding, and assign an owner — lazily; no member is
    /// contacted until the first submit needs it.
    fn op_register(&mut self, frame: &Json) -> Json {
        if self.inner.draining.load(Ordering::SeqCst) {
            return err_reply(frame, "cancelled", "router is draining");
        }
        let Some(instance_json) = frame.get("instance") else {
            return err_reply(frame, "bad_request", "register needs an 'instance'");
        };
        let instance = match wire::decode_instance(instance_json) {
            Ok(instance) => instance,
            Err(msg) => return err_reply(frame, "bad_request", &msg),
        };
        let version = phom_core::instance_fingerprint(&instance);
        match frame.get("version").map(wire::decode_version) {
            Some(Ok(hint)) if hint != version => {
                return err_reply(
                    frame,
                    "bad_request",
                    &format!(
                        "register hint {hint:#018x} does not match the \
                         instance fingerprint {version:#018x}"
                    ),
                );
            }
            Some(Err(msg)) => return err_reply(frame, "bad_request", &msg),
            _ => {}
        }
        let mut state = lock(&self.inner.state);
        let cached = state.instances.contains_key(&version);
        if !cached {
            // Canonical re-encoding: what handoff warm-ups will send.
            state
                .instances
                .insert(version, wire::encode_instance(&instance));
        }
        let owner = *state
            .placements
            .entry(version)
            .or_insert_with(|| owner_of(version, &self.inner.members));
        let owner_name = self.inner.members[owner].name.clone();
        drop(state);
        ok_reply(
            frame,
            Json::obj(vec![
                ("version", wire::encode_version(version)),
                (
                    "registered",
                    Json::str(if cached { "cached" } else { "new" }),
                ),
                ("owner", Json::str(&owner_name)),
            ]),
        )
    }

    fn op_submit(&mut self, frame: &Json) -> Json {
        if self.inner.draining.load(Ordering::SeqCst) {
            return err_reply(frame, "cancelled", "router is draining");
        }
        let version = match frame.get("version").map(wire::decode_version) {
            Some(Ok(version)) => version,
            Some(Err(msg)) => return err_reply(frame, "bad_request", &msg),
            None => return err_reply(frame, "bad_request", "submit needs a 'version'"),
        };
        let Some(request) = frame.get("request") else {
            return err_reply(frame, "bad_request", "submit needs a 'request'");
        };
        // Owner lookup and the in-flight increment happen under one
        // lock acquisition: a concurrent `move` flips routing either
        // before (we route to the new member) or after (the drain
        // waits for our ticket) — never in between.
        let owner = {
            let mut state = lock(&self.inner.state);
            let Some(&owner) = state.placements.get(&version) else {
                return err_reply(
                    frame,
                    "invalid_query",
                    &format!("no instance registered for version {version:#018x}"),
                );
            };
            *state.inflight.entry((owner, version)).or_insert(0) += 1;
            owner
        };
        match self.forward_submit(frame, owner, version, request) {
            Ok(reply) => reply,
            Err(reply) => {
                self.dec_inflight(owner, version);
                reply
            }
        }
    }

    /// Forwards one submit to `owner`. `Ok` means a ticket exists (the
    /// in-flight hold stays); `Err` is a ready error reply (the caller
    /// releases the hold).
    fn forward_submit(
        &mut self,
        frame: &Json,
        owner: usize,
        version: u64,
        request: &Json,
    ) -> Result<Json, Json> {
        let started = Instant::now();
        // The router is the trace front door: a request without a trace
        // id gets one minted and injected here, so the member records
        // its stage spans under the same id the client sees in the ack.
        let (request, trace) = match request.get("trace").map(wire::decode_version) {
            Some(Ok(trace)) => (request.clone(), trace),
            Some(Err(msg)) => return Err(err_reply(frame, "bad_request", &msg)),
            None => {
                let trace = TraceId::mint().get();
                let mut request = request.clone();
                if let Json::Obj(pairs) = &mut request {
                    pairs.push(("trace".to_string(), wire::encode_version(trace)));
                }
                (request, trace)
            }
        };
        self.ensure_registered(frame, owner, version)?;
        // The fast path: one submit frame on the shared multiplexed
        // link — admission resolves via the ack, and the completion
        // arrives as a push, with no poll round trips to the member.
        if let Some(done) = self.forward_submit_mux(frame, owner, version, &request, trace, started)
        {
            return done;
        }
        let forward = Json::obj(vec![
            ("op", Json::str("submit")),
            ("version", wire::encode_version(version)),
            ("request", request),
        ]);
        let mut reply = match self.member_call(owner, forward.clone()) {
            Ok(reply) => reply,
            Err(why) => return Err(self.member_unavailable_reply(frame, owner, &why)),
        };
        // A member that lost its registry (restart) rejects with
        // `invalid_query` — definitively not admitted, so one
        // re-register + re-forward is safe (this is the only retry the
        // router ever performs).
        if reply
            .get("err")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            == Some("invalid_query")
        {
            lock(&self.inner.state)
                .holders
                .entry(version)
                .or_default()
                .remove(&owner);
            self.ensure_registered(frame, owner, version)?;
            reply = match self.member_call(owner, forward) {
                Ok(reply) => reply,
                Err(why) => return Err(self.member_unavailable_reply(frame, owner, &why)),
            };
        }
        let Some(remote) = reply
            .get("ok")
            .and_then(|ok| ok.get("ticket"))
            .and_then(Json::as_u64)
        else {
            // Typed member rejection (overloaded, cancelled, …):
            // relayed verbatim so backpressure reaches the edge.
            return Err(relay_reply(frame, reply));
        };
        let id = self.admit_ticket(owner, version, Remote::V1(remote), trace, started);
        Ok(ok_reply(
            frame,
            Json::obj(vec![
                ("ticket", Json::u64(id)),
                ("trace", wire::encode_version(trace)),
            ]),
        ))
    }

    /// Attempts the forward over the shared multiplexed link. `None`
    /// means take the v1 path (the member is v1-only, or the link died
    /// before the frame went out — nothing admitted, falling back is
    /// safe). `Some` is the final verdict: admission, a typed member
    /// rejection, or `member_unavailable`.
    fn forward_submit_mux(
        &mut self,
        frame: &Json,
        owner: usize,
        version: u64,
        request: &Json,
        trace: u64,
        started: Instant,
    ) -> Option<Result<Json, Json>> {
        let link = self.mux_link(owner)?;
        let mut ticket = match link.try_submit_json(version, request.clone()) {
            Ok(ticket) => ticket,
            Err(NetError::Server {
                code,
                msg,
                capacity,
            }) => {
                // The shared window's typed backpressure, relayed like
                // any member rejection.
                return Some(Err(typed_err_reply(frame, &code, &msg, capacity)));
            }
            Err(_) => {
                self.drop_mux_link(owner, &link);
                return None;
            }
        };
        let mut acked = ticket.ack();
        // Parity with the v1 path's one deliberate retry: a member
        // that lost its registry (restart) rejects with
        // `invalid_query` — definitively not admitted — so the router
        // re-registers and forwards once more.
        if matches!(&acked, Err(NetError::Server { code, .. }) if code == "invalid_query") {
            lock(&self.inner.state)
                .holders
                .entry(version)
                .or_default()
                .remove(&owner);
            if let Err(reply) = self.ensure_registered(frame, owner, version) {
                return Some(Err(reply));
            }
            match link.try_submit_json(version, request.clone()) {
                Ok(retry) => {
                    ticket = retry;
                    acked = ticket.ack();
                }
                Err(NetError::Server {
                    code,
                    msg,
                    capacity,
                }) => return Some(Err(typed_err_reply(frame, &code, &msg, capacity))),
                Err(e) => {
                    self.drop_mux_link(owner, &link);
                    return Some(Err(self.member_unavailable_reply(
                        frame,
                        owner,
                        &e.to_string(),
                    )));
                }
            }
        }
        match acked {
            Ok(_) => {
                let remote = Remote::Mux {
                    link,
                    ticket: Arc::new(ticket),
                };
                let id = self.admit_ticket(owner, version, remote, trace, started);
                self.inner
                    .counters
                    .mux_submits
                    .fetch_add(1, Ordering::Relaxed);
                Some(Ok(ok_reply(
                    frame,
                    Json::obj(vec![
                        ("ticket", Json::u64(id)),
                        ("trace", wire::encode_version(trace)),
                    ]),
                )))
            }
            Err(NetError::Server {
                code,
                msg,
                capacity,
            }) => Some(Err(typed_err_reply(frame, &code, &msg, capacity))),
            Err(e) => {
                // The frame reached the wire: exactly-once stays with
                // the client — no silent retry.
                self.drop_mux_link(owner, &link);
                Some(Err(self.member_unavailable_reply(
                    frame,
                    owner,
                    &e.to_string(),
                )))
            }
        }
    }

    /// Creates the router-side ticket for an admitted submit and
    /// records the books plus the `routed` span.
    fn admit_ticket(
        &mut self,
        owner: usize,
        version: u64,
        remote: Remote,
        trace: u64,
        started: Instant,
    ) -> u64 {
        let id = self.next_ticket;
        self.next_ticket += 1;
        self.tickets.insert(
            id,
            RoutedTicket {
                member: owner,
                generation: self.links[owner].generation,
                version,
                remote,
            },
        );
        self.inner
            .counters
            .tickets_open
            .fetch_add(1, Ordering::SeqCst);
        self.inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.inner.spans.push(Span {
            trace,
            stage: Stage::Routed,
            lane: SpanLane::None,
            nanos: started.elapsed().as_nanos() as u64,
            detail: owner as u64,
        });
        id
    }

    fn op_poll(&mut self, frame: &Json) -> Json {
        let Some(id) = frame.get("ticket").and_then(Json::as_u64) else {
            return err_reply(frame, "bad_request", "poll needs a 'ticket'");
        };
        let Some(t) = self.tickets.get(&id) else {
            return err_reply(frame, "unknown_ticket", "no such ticket on this connection");
        };
        let (member, generation, remote) = (t.member, t.generation, t.remote.clone());
        let wait = frame
            .get("wait_ms")
            .and_then(Json::as_u64)
            .map_or(Duration::ZERO, Duration::from_millis)
            .min(self.inner.poll_wait_cap);
        let remote = match remote {
            Remote::V1(remote) => remote,
            // A mux-routed ticket answers locally: the completion was
            // (or will be) pushed by the member — no round trip.
            Remote::Mux { link, ticket } => {
                return match ticket.wait_deadline(wait) {
                    Ok(Some(result)) => {
                        self.finish_ticket(id);
                        self.inner
                            .counters
                            .delivered
                            .fetch_add(1, Ordering::Relaxed);
                        ok_reply(
                            frame,
                            Json::obj(vec![("done", Json::Bool(true)), ("result", result)]),
                        )
                    }
                    Ok(None) => ok_reply(frame, Json::obj(vec![("done", Json::Bool(false))])),
                    Err(NetError::Server {
                        code,
                        msg,
                        capacity,
                    }) => {
                        self.finish_ticket(id);
                        typed_err_reply(frame, &code, &msg, capacity)
                    }
                    Err(e) => {
                        self.drop_mux_link(member, &link);
                        let reply = self.member_unavailable_reply(frame, member, &e.to_string());
                        self.finish_ticket(id);
                        reply
                    }
                };
            }
        };
        if generation != self.links[member].generation {
            let reply =
                self.member_unavailable_reply(frame, member, "link lost with ticket in flight");
            self.finish_ticket(id);
            return reply;
        }
        let forward = Json::obj(vec![
            ("op", Json::str("poll")),
            ("ticket", Json::u64(remote)),
            ("wait_ms", Json::u64(wait.as_millis() as u64)),
        ]);
        match self.member_call(member, forward) {
            Ok(reply) => {
                if reply
                    .get("ok")
                    .and_then(|ok| ok.get("done"))
                    .and_then(Json::as_bool)
                    == Some(true)
                {
                    self.finish_ticket(id);
                    self.inner
                        .counters
                        .delivered
                        .fetch_add(1, Ordering::Relaxed);
                } else if reply.get("err").is_some() {
                    // The member no longer knows the ticket (e.g. it
                    // restarted between polls) — terminal here too.
                    self.finish_ticket(id);
                }
                relay_reply(frame, reply)
            }
            Err(why) => {
                let reply = self.member_unavailable_reply(frame, member, &why);
                self.finish_ticket(id);
                reply
            }
        }
    }

    fn op_cancel(&mut self, frame: &Json) -> Json {
        let Some(id) = frame.get("ticket").and_then(Json::as_u64) else {
            return err_reply(frame, "bad_request", "cancel needs a 'ticket'");
        };
        let Some(t) = self.tickets.get(&id) else {
            return err_reply(frame, "unknown_ticket", "no such ticket on this connection");
        };
        let (member, generation, remote) = (t.member, t.generation, t.remote.clone());
        let remote = match remote {
            Remote::V1(remote) => remote,
            // The member-side ticket id is in the ack, which resolved
            // before this router ticket existed. Cancellation is not
            // terminal here either — the pushed completion (cancelled
            // result or the answer that beat it) still resolves the
            // ticket through `poll`.
            Remote::Mux { link, ticket } => match ticket.ack() {
                Ok((remote, _)) => {
                    return match link.cancel(remote) {
                        Ok(cancelled) => {
                            ok_reply(frame, Json::obj(vec![("cancelled", Json::Bool(cancelled))]))
                        }
                        Err(NetError::Server {
                            code,
                            msg,
                            capacity,
                        }) => typed_err_reply(frame, &code, &msg, capacity),
                        Err(e) => {
                            self.drop_mux_link(member, &link);
                            let reply =
                                self.member_unavailable_reply(frame, member, &e.to_string());
                            self.finish_ticket(id);
                            reply
                        }
                    };
                }
                Err(e) => {
                    self.drop_mux_link(member, &link);
                    let reply = self.member_unavailable_reply(frame, member, &e.to_string());
                    self.finish_ticket(id);
                    return reply;
                }
            },
        };
        if generation != self.links[member].generation {
            let reply =
                self.member_unavailable_reply(frame, member, "link lost with ticket in flight");
            self.finish_ticket(id);
            return reply;
        }
        let forward = Json::obj(vec![
            ("op", Json::str("cancel")),
            ("ticket", Json::u64(remote)),
        ]);
        match self.member_call(member, forward) {
            // Cancellation is not terminal: the ticket still resolves
            // through `poll` (with the cancelled result or the answer
            // that beat it).
            Ok(reply) => relay_reply(frame, reply),
            Err(why) => {
                let reply = self.member_unavailable_reply(frame, member, &why);
                self.finish_ticket(id);
                reply
            }
        }
    }

    /// `move`: the re-register handoff. Warm the instance on the
    /// target (a hinted register — usually the member's cached fast
    /// path), flip routing atomically, queue the drain-and-deregister
    /// on the old member. On any failure routing is left untouched.
    fn op_move(&mut self, frame: &Json) -> Json {
        let version = match frame.get("version").map(wire::decode_version) {
            Some(Ok(version)) => version,
            Some(Err(msg)) => return err_reply(frame, "bad_request", &msg),
            None => return err_reply(frame, "bad_request", "move needs a 'version'"),
        };
        let Some(to) = frame.get("to").and_then(Json::as_str) else {
            return err_reply(frame, "bad_request", "move needs a 'to' member name");
        };
        let Some(target) = self.inner.members.iter().position(|m| m.name == to) else {
            return err_reply(frame, "bad_request", &format!("no member named '{to}'"));
        };
        {
            let state = lock(&self.inner.state);
            if !state.instances.contains_key(&version) {
                return err_reply(
                    frame,
                    "invalid_query",
                    &format!("no instance registered for version {version:#018x}"),
                );
            }
        }
        // Warm the target first; only a registered target takes over.
        if let Err(reply) = self.ensure_registered(frame, target, version) {
            return reply;
        }
        let (from_idx, drained) = {
            let mut state = lock(&self.inner.state);
            let old = state
                .placements
                .insert(version, target)
                .expect("registered");
            if old != target {
                // A bounce-back cancels the target's pending drain: the
                // copy queued for retirement is the copy now serving.
                state
                    .drains
                    .retain(|job| !(job.version == version && job.member == target));
                state.drains.push(DrainJob {
                    version,
                    member: old,
                    tries: 0,
                });
                self.inner.maint_wake.notify_all();
                self.inner.counters.handoffs.fetch_add(1, Ordering::Relaxed);
            }
            (old, old != target)
        };
        ok_reply(
            frame,
            Json::obj(vec![
                ("version", wire::encode_version(version)),
                ("from", Json::str(&self.inner.members[from_idx].name)),
                ("to", Json::str(&self.inner.members[target].name)),
                ("moved", Json::Bool(drained)),
            ]),
        )
    }

    /// Fans a `stats` op out to every member, summing scalar rollup
    /// fields and merging the sparse latency histograms bucket-wise. A
    /// member that cannot be reached is reported (`ok: false`), never
    /// an error for the whole collection.
    fn collect_member_stats(&mut self) -> FleetRollup {
        let mut rollup = FleetRollup {
            member_entries: Vec::new(),
            scalars: Vec::new(),
            hists: ROLLUP_HISTOGRAMS.iter().map(|_| Histogram::new()).collect(),
            available: 0,
        };
        for idx in 0..self.inner.members.len() {
            let member = &self.inner.members[idx];
            let (name, addr) = (member.name.clone(), member.addr.clone());
            let reply = self.member_call(idx, Json::obj(vec![("op", Json::str("stats"))]));
            let stats = match reply {
                Ok(reply) => reply.get("ok").and_then(|ok| ok.get("stats")).cloned(),
                Err(_) => None,
            };
            match stats {
                Some(stats) => {
                    rollup.available += 1;
                    for field in ROLLUP_FIELDS {
                        if let Some(v) = stats.get(field).and_then(Json::as_u64) {
                            match rollup.scalars.iter_mut().find(|(f, _)| f == field) {
                                Some((_, sum)) => *sum += v,
                                None => rollup.scalars.push((field.to_string(), v)),
                            }
                        }
                    }
                    for (i, key) in ROLLUP_HISTOGRAMS.iter().enumerate() {
                        if let Some(Ok(h)) = stats.get(key).map(wire::decode_histogram) {
                            rollup.hists[i].merge(&h);
                        }
                    }
                    rollup.member_entries.push(Json::obj(vec![
                        ("name", Json::str(&name)),
                        ("addr", Json::str(&addr)),
                        ("ok", Json::Bool(true)),
                        ("stats", stats),
                    ]));
                }
                None => rollup.member_entries.push(Json::obj(vec![
                    ("name", Json::str(&name)),
                    ("addr", Json::str(&addr)),
                    ("ok", Json::Bool(false)),
                ])),
            }
        }
        rollup
    }

    /// `stats`: per-member snapshots plus a numeric rollup (scalar sums
    /// and bucket-wise-merged latency histograms) and the router's own
    /// counters.
    fn op_stats(&mut self, frame: &Json) -> Json {
        let fleet = self.collect_member_stats();
        let c = self.stats_snapshot();
        let mut rollup_pairs: Vec<(String, Json)> =
            vec![("members_available".to_string(), Json::u64(fleet.available))];
        rollup_pairs.extend(fleet.scalars.into_iter().map(|(f, v)| (f, Json::u64(v))));
        for (i, key) in ROLLUP_HISTOGRAMS.iter().enumerate() {
            rollup_pairs.push((key.to_string(), wire::encode_histogram(&fleet.hists[i])));
        }
        ok_reply(
            frame,
            Json::obj(vec![(
                "stats",
                Json::obj(vec![
                    ("router", c),
                    ("members", Json::Arr(fleet.member_entries)),
                    ("rollup", Json::Obj(rollup_pairs)),
                ]),
            )]),
        )
    }

    /// `metrics`: Prometheus text for the fleet — router counters under
    /// `phom_router_*`/`phom_fleet_*`, plus the members' latency
    /// histograms merged bucket-wise and rendered under the *same*
    /// stable names a single member uses (`phom_request_latency_ns`,
    /// `phom_queue_latency_ns`, `phom_stage_latency_ns`), so dashboards
    /// work unchanged at either level.
    fn op_metrics(&mut self, frame: &Json) -> Json {
        let fleet = self.collect_member_stats();
        let c = &self.inner.counters;
        let mut prom = PromText::new();
        prom.gauge(
            "phom_fleet_members",
            "configured fleet members",
            self.inner.members.len() as u64,
        );
        prom.gauge(
            "phom_fleet_members_available",
            "members that answered the last stats fan-out",
            fleet.available,
        );
        prom.counter(
            "phom_router_connections_total",
            "client connections accepted",
            c.connections.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_frames_in_total",
            "frames read off client connections",
            c.frames_in.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_frames_out_total",
            "frames written to client connections",
            c.frames_out.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_submitted_total",
            "submits forwarded with a member ticket",
            c.submitted.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_mux_submits_total",
            "submits that rode a multiplexed (protocol-v2) member link",
            c.mux_submits.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_delivered_total",
            "answers delivered to clients",
            c.delivered.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_member_unavailable_total",
            "ops answered member_unavailable",
            c.member_unavailable.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_handoffs_total",
            "completed move ops (routing flips)",
            c.handoffs.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_lazy_registers_total",
            "broadcast-on-demand registrations",
            c.lazy_registers.load(Ordering::Relaxed),
        );
        prom.counter(
            "phom_router_drained_deregisters_total",
            "post-handoff deregistrations",
            c.drained_deregisters.load(Ordering::Relaxed),
        );
        prom.gauge(
            "phom_router_open_tickets",
            "tickets held router-side awaiting delivery",
            c.tickets_open.load(Ordering::SeqCst).max(0) as u64,
        );
        for (field, v) in &fleet.scalars {
            prom.gauge(
                &format!("phom_fleet_{field}"),
                "summed across available members",
                *v,
            );
        }
        prom.family(
            "phom_request_latency_ns",
            "end-to-end request latency, nanoseconds, merged fleet-wide",
            "histogram",
        );
        prom.histogram(
            "phom_request_latency_ns",
            &[("lane", "fast")],
            &fleet.hists[5],
        );
        prom.histogram(
            "phom_request_latency_ns",
            &[("lane", "slow")],
            &fleet.hists[6],
        );
        prom.family(
            "phom_queue_latency_ns",
            "queue wait, nanoseconds, merged fleet-wide",
            "histogram",
        );
        prom.histogram(
            "phom_queue_latency_ns",
            &[("lane", "fast")],
            &fleet.hists[0],
        );
        prom.histogram(
            "phom_queue_latency_ns",
            &[("lane", "slow")],
            &fleet.hists[1],
        );
        prom.family(
            "phom_stage_latency_ns",
            "per-tick-group stage time, nanoseconds, merged fleet-wide",
            "histogram",
        );
        prom.histogram(
            "phom_stage_latency_ns",
            &[("stage", "plan")],
            &fleet.hists[2],
        );
        prom.histogram(
            "phom_stage_latency_ns",
            &[("stage", "eval")],
            &fleet.hists[3],
        );
        prom.histogram(
            "phom_stage_latency_ns",
            &[("stage", "encode")],
            &fleet.hists[4],
        );
        ok_reply(
            frame,
            Json::obj(vec![("metrics", Json::str(prom.finish()))]),
        )
    }

    /// `trace`: fan out to every member, merging member stage spans
    /// with the router's own `routed` spans under each trace id. A
    /// member that cannot be reached (or predates the op) contributes
    /// nothing; the router's spans alone still witness the routing hop.
    fn op_trace(&mut self, frame: &Json) -> Json {
        let filter = match frame.get("trace").map(wire::decode_version) {
            Some(Ok(id)) => Some(id),
            Some(Err(msg)) => return err_reply(frame, "bad_request", &msg),
            None => None,
        };
        let slowest = frame.get("slowest").and_then(Json::as_u64);
        if filter.is_none() && slowest.is_none() {
            return err_reply(
                frame,
                "bad_request",
                "trace needs a 'trace' id or a 'slowest' count",
            );
        }
        let mut spans: Vec<Span> = Vec::new();
        for idx in 0..self.inner.members.len() {
            let mut forward = vec![("op", Json::str("trace"))];
            match filter {
                Some(id) => forward.push(("trace", wire::encode_version(id))),
                None => forward.push(("slowest", Json::u64(slowest.expect("checked above")))),
            }
            let Ok(reply) = self.member_call(idx, Json::obj(forward)) else {
                continue;
            };
            let Some(Json::Arr(items)) = reply.get("ok").and_then(|ok| ok.get("requests")) else {
                continue;
            };
            for item in items {
                if let Ok(tr) = wire::decode_trace_request(item) {
                    spans.extend(tr.spans);
                }
            }
        }
        let requests = match filter {
            Some(id) => {
                spans.extend(self.inner.spans.spans_for(id));
                phom_obs::group_by_trace(&spans)
            }
            None => {
                // Routed spans only matter for traces the members still
                // remember — a lone routing hop is not a request.
                let present: std::collections::HashSet<u64> =
                    spans.iter().map(|s| s.trace).collect();
                spans.extend(
                    self.inner
                        .spans
                        .snapshot()
                        .into_iter()
                        .filter(|s| present.contains(&s.trace)),
                );
                phom_obs::slowest_requests(
                    &spans,
                    slowest.expect("checked above").min(256) as usize,
                )
            }
        };
        ok_reply(
            frame,
            Json::obj(vec![(
                "requests",
                Json::Arr(requests.iter().map(wire::encode_trace_request).collect()),
            )]),
        )
    }

    fn stats_snapshot(&self) -> Json {
        let c = &self.inner.counters;
        Json::obj(vec![
            (
                "connections",
                Json::u64(c.connections.load(Ordering::Relaxed)),
            ),
            ("frames_in", Json::u64(c.frames_in.load(Ordering::Relaxed))),
            (
                "frames_out",
                Json::u64(c.frames_out.load(Ordering::Relaxed)),
            ),
            ("submitted", Json::u64(c.submitted.load(Ordering::Relaxed))),
            (
                "mux_submits",
                Json::u64(c.mux_submits.load(Ordering::Relaxed)),
            ),
            ("delivered", Json::u64(c.delivered.load(Ordering::Relaxed))),
            (
                "member_unavailable",
                Json::u64(c.member_unavailable.load(Ordering::Relaxed)),
            ),
            ("handoffs", Json::u64(c.handoffs.load(Ordering::Relaxed))),
            (
                "lazy_registers",
                Json::u64(c.lazy_registers.load(Ordering::Relaxed)),
            ),
            (
                "drained_deregisters",
                Json::u64(c.drained_deregisters.load(Ordering::Relaxed)),
            ),
            (
                "open_tickets",
                Json::Num(c.tickets_open.load(Ordering::SeqCst) as f64),
            ),
        ])
    }

    /// `fleet`: the static membership plus current placements — the
    /// admin's view of where every fingerprint lives.
    fn op_fleet(&mut self, frame: &Json) -> Json {
        let members = self
            .inner
            .members
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("name", Json::str(&m.name)),
                    ("addr", Json::str(&m.addr)),
                    ("weight", Json::Num(m.weight)),
                ])
            })
            .collect();
        let state = lock(&self.inner.state);
        let mut placements: Vec<(u64, usize)> =
            state.placements.iter().map(|(&v, &m)| (v, m)).collect();
        placements.sort_unstable();
        let draining = state.drains.len() as u64;
        drop(state);
        let drained = self
            .inner
            .counters
            .drained_deregisters
            .load(Ordering::Relaxed);
        let placements = placements
            .into_iter()
            .map(|(version, member)| {
                Json::obj(vec![
                    ("version", wire::encode_version(version)),
                    ("member", Json::str(&self.inner.members[member].name)),
                ])
            })
            .collect();
        ok_reply(
            frame,
            Json::obj(vec![
                ("members", Json::Arr(members)),
                ("placements", Json::Arr(placements)),
                ("draining", Json::u64(draining)),
                ("drained", Json::u64(drained)),
            ]),
        )
    }
}

/// One stats fan-out's worth of fleet state: per-member reply entries,
/// summed scalar fields, and bucket-wise-merged latency histograms
/// (parallel to [`ROLLUP_HISTOGRAMS`]).
struct FleetRollup {
    member_entries: Vec<Json>,
    scalars: Vec<(String, u64)>,
    hists: Vec<Histogram>,
    available: u64,
}

/// The member `stats` fields summed into the fleet-wide rollup.
const ROLLUP_FIELDS: &[&str] = &[
    "workers",
    "queue_depth",
    "admitted",
    "rejected",
    "cancelled",
    "completed",
    "shed_expired",
    "ticks",
    "queries",
    "batch_cache_hits",
    "float_evaluated",
    "escalations",
    "estimates",
    "deadline_exceeded",
    "budget_exceeded",
];

/// The member `stats` histogram fields merged bucket-wise into the
/// fleet-wide rollup (sparse encoding; see `wire::encode_histogram`).
const ROLLUP_HISTOGRAMS: &[&str] = &[
    "queue_ns_fast",
    "queue_ns_slow",
    "plan_ns",
    "eval_ns",
    "encode_ns",
    "request_ns_fast",
    "request_ns_slow",
];
