//! # phom_fleet — the multi-process sharded fleet
//!
//! The fourth serving layer: a front-door [`Router`] process speaking
//! the standard length-prefixed JSON wire protocol
//! ([`phom_net::wire`]) on one listen address, fanning requests out to
//! N member `phom serve` processes over [`phom_net::Client`]
//! connections. The stack, bottom to top:
//!
//! 1. **engine** (`phom_core`) — plan/execute/finish over `Send` tick
//!    units;
//! 2. **runtime** (`phom_serve`) — persistent workers, bounded
//!    ingress, micro-batching;
//! 3. **net** (`phom_net`) — one process on the wire;
//! 4. **fleet** (this crate) — many processes behind one address.
//!
//! ## Design
//!
//! * **Static membership** ([`MemberSpec`], [`parse_members`]): a
//!   fixed list of members with addresses and capacity weights —
//!   gossip-free by construction.
//! * **Consistent routing** ([`owner_of`]): weighted rendezvous (HRW)
//!   hashing on
//!   [`instance_fingerprint`](phom_core::instance_fingerprint), so
//!   membership edits move only the affected instances. Registration
//!   is broadcast-on-demand: the router caches the canonical instance
//!   encoding and forwards registration to the owning member lazily,
//!   remembering which members hold which fingerprints.
//! * **Re-register handoff**: the admin `move` op warms the instance
//!   on the new member (a hinted `register` — the members' cached
//!   fast path), flips routing atomically, then drains-and-deregisters
//!   on the old member in the background. Tickets created before the
//!   flip keep polling through the old member until resolved — a
//!   mutating fleet never drops or double-answers an in-flight ticket.
//! * **Member health**: per-member reconnect-with-backoff
//!   ([`Client::connect_with_retry`](phom_net::Client::connect_with_retry)),
//!   typed `member_unavailable` error frames, and verbatim relay of
//!   member errors (`overloaded` keeps its `capacity` — backpressure
//!   reaches the edge). The router never silently retries a submit;
//!   exactly-once stays with the client.
//! * **Fleet-wide observability**: the router's `stats` op aggregates
//!   every member's `RuntimeStats` (per-member + rollup, with the
//!   members' sparse latency histograms merged bucket-wise); the
//!   `fleet` op reports membership and current placements. The router
//!   is also the fleet's trace front door — it mints and injects a
//!   trace id into submits that lack one, records a `routed` span per
//!   forward, answers the `trace` op with member spans merged under
//!   its own routing spans, and serves the `metrics` op in Prometheus
//!   text format with the fleet-merged histograms under the same
//!   stable names a single member uses (see the [`router`
//!   module](self) docs, section "Observability").
//!
//! Answers are **byte-identical** to a single in-process
//! [`Engine::submit`](phom_core::Engine::submit): the router moves
//! frames, never recomputes (asserted end to end by
//! `tests/fleet_serving.rs` against a 3-process fleet, through a
//! mid-traffic handoff and a member kill).
//!
//! ## Quick start
//!
//! ```
//! use phom_fleet::{MemberSpec, Router};
//! use phom_graph::{Graph, ProbGraph};
//! use phom_net::{Client, Server, WireRequest};
//! use phom_serve::Runtime;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // Two in-process members (real fleets spawn `phom serve` processes).
//! let mut members = Vec::new();
//! let mut servers = Vec::new();
//! for name in ["a", "b"] {
//!     let runtime = Arc::new(Runtime::builder().max_wait(Duration::ZERO).build());
//!     let server = Server::bind("127.0.0.1:0", runtime).unwrap();
//!     members.push(MemberSpec {
//!         name: name.into(),
//!         addr: server.local_addr().to_string(),
//!         weight: 1.0,
//!     });
//!     servers.push(server);
//! }
//! let router = Router::bind("127.0.0.1:0", members).unwrap();
//!
//! let mut client = Client::connect(router.local_addr()).unwrap();
//! let h = ProbGraph::new(
//!     Graph::directed_path(2),
//!     vec![phom_num::Rational::from_ratio(1, 2); 2],
//! );
//! let version = client.register(&h).unwrap();
//! let ticket = client
//!     .submit(version, &WireRequest::probability(Graph::directed_path(1)))
//!     .unwrap();
//! assert_eq!(
//!     client.wait(ticket).unwrap().get("p").and_then(|p| p.as_str()),
//!     Some("3/4"),
//! );
//! router.shutdown(Duration::from_secs(1));
//! ```

mod members;
mod router;

pub use members::{owner_of, parse_members, validate_members, MemberSpec};
pub use router::{Router, RouterBuilder, RouterStats};
