//! The full-binary ε-encoding of probabilistic polytrees (Appendix C,
//! proof of Proposition 5.4).
//!
//! Every vertex of the polytree becomes a chain of clone nodes linked by
//! certain, undirected ε-edges; each original edge becomes one tree node
//! whose label records the edge's direction (↑ for child → parent, ↓ for
//! parent → child) and whose probability is the edge's. Chains guarantee
//! every internal node has exactly two children (dummy ε leaves pad nodes
//! with a single child), so the result is a full binary uncertain tree.
//!
//! Correctness contract (tested exhaustively on small polytrees): worlds of
//! the polytree correspond to annotations of the tree, and the world
//! contains a directed path of length `m` iff the annotated tree contains a
//! path of the form `(→ ε*)^m` — which is exactly what the automata of
//! [`crate::dta`] test.

use crate::utree::{NodeLabel, UNode, UTree};
use phom_graph::classes::as_polytree;
use phom_graph::{Dir, ProbGraph};
use phom_num::Rational;

/// Encodes a *connected* probabilistic polytree as a full binary uncertain
/// tree. Returns `None` when the instance is not a connected polytree.
pub fn encode_polytree(h: &ProbGraph) -> Option<UTree> {
    let view = as_polytree(h.graph(), 0)?;
    let mut nodes: Vec<UNode> = Vec::new();

    // Build bottom-up over the BFS order reversed, so that each vertex's
    // chain is constructed after all its children's chains. chain_top[v]
    // is the clone-chain root of v, to which v's parent edge attaches.
    let n = h.graph().n_vertices();
    let mut chain_top: Vec<Option<usize>> = vec![None; n];

    let push = |nodes: &mut Vec<UNode>, node: UNode| -> usize {
        nodes.push(node);
        nodes.len() - 1
    };

    for &v in view.order.iter().rev() {
        // Children of v, each contributing (subtree root, label, prob, edge).
        let kids: Vec<(usize, NodeLabel, Rational, usize)> = view.children[v]
            .iter()
            .map(|&(w, e, dir)| {
                let label = match dir {
                    Dir::Forward => NodeLabel::Down, // v → w
                    Dir::Backward => NodeLabel::Up,  // w → v
                };
                (
                    chain_top[w].expect("children built first"),
                    label,
                    h.prob(e).clone(),
                    e,
                )
            })
            .collect();

        // Assigning a child into the chain means setting its (label, prob,
        // edge) — the child subtree root carries its own parent-edge data.
        let set_edge_data =
            |nodes: &mut Vec<UNode>, (idx, label, prob, e): (usize, NodeLabel, Rational, usize)| {
                nodes[idx].label = label;
                nodes[idx].prob = prob;
                nodes[idx].edge = Some(e);
                idx
            };

        let r = kids.len();
        let top = match r {
            0 => push(
                &mut nodes,
                UNode {
                    label: NodeLabel::Eps,
                    prob: Rational::one(),
                    children: None,
                    edge: None,
                },
            ),
            1 => {
                let c = set_edge_data(&mut nodes, kids[0].clone());
                let dummy = push(
                    &mut nodes,
                    UNode {
                        label: NodeLabel::Eps,
                        prob: Rational::one(),
                        children: None,
                        edge: None,
                    },
                );
                push(
                    &mut nodes,
                    UNode {
                        label: NodeLabel::Eps,
                        prob: Rational::one(),
                        children: Some((c, dummy)),
                        edge: None,
                    },
                )
            }
            _ => {
                // Chain z_0 … z_{r−2}: z_i holds child i and z_{i+1};
                // z_{r−2} holds children r−2 and r−1. Build from the bottom.
                let c_last = set_edge_data(&mut nodes, kids[r - 1].clone());
                let c_prev = set_edge_data(&mut nodes, kids[r - 2].clone());
                let mut z = push(
                    &mut nodes,
                    UNode {
                        label: NodeLabel::Eps,
                        prob: Rational::one(),
                        children: Some((c_prev, c_last)),
                        edge: None,
                    },
                );
                for i in (0..r.saturating_sub(2)).rev() {
                    let c = set_edge_data(&mut nodes, kids[i].clone());
                    z = push(
                        &mut nodes,
                        UNode {
                            label: NodeLabel::Eps,
                            prob: Rational::one(),
                            children: Some((c, z)),
                            edge: None,
                        },
                    );
                }
                z
            }
        };
        chain_top[v] = Some(top);
    }

    // New root ρ above the original root's chain (plus a dummy sibling to
    // keep the tree full binary).
    let old = chain_top[view.root].unwrap();
    let dummy = {
        nodes.push(UNode {
            label: NodeLabel::Eps,
            prob: Rational::one(),
            children: None,
            edge: None,
        });
        nodes.len() - 1
    };
    nodes.push(UNode {
        label: NodeLabel::Eps,
        prob: Rational::one(),
        children: Some((old, dummy)),
        edge: None,
    });
    let root = nodes.len() - 1;
    Some(UTree::new(nodes, root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::generate;
    use phom_graph::Graph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn full_binary(t: &UTree) -> bool {
        (0..t.n_nodes()).all(|i| match t.node(i).children {
            None => true,
            Some((l, r)) => l != r && l < t.n_nodes() && r < t.n_nodes(),
        })
    }

    #[test]
    fn encodes_single_vertex() {
        let h = ProbGraph::certain(Graph::directed_path(0));
        let t = encode_polytree(&h).unwrap();
        assert!(full_binary(&t));
        // ρ + chain-leaf + dummy.
        assert_eq!(t.n_nodes(), 3);
    }

    #[test]
    fn encodes_paths_and_trees() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in 1..30 {
            let g = generate::polytree(n, 1, &mut rng);
            let h = generate::with_probabilities(g, generate::ProbProfile::default(), &mut rng);
            let t = encode_polytree(&h).unwrap();
            assert!(full_binary(&t));
            // One tree node per instance edge carries that edge.
            let edge_nodes: Vec<usize> = (0..t.n_nodes()).filter_map(|i| t.node(i).edge).collect();
            let mut sorted = edge_nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), h.graph().n_edges());
            // Every node has 0 or 2 children and the postorder covers all.
            assert_eq!(t.postorder().len(), t.n_nodes());
        }
    }

    #[test]
    fn rejects_non_polytrees() {
        let mut b = phom_graph::GraphBuilder::with_vertices(2);
        b.edge(0, 1, phom_graph::Label::UNLABELED);
        b.edge(1, 0, phom_graph::Label::UNLABELED);
        let h = ProbGraph::certain(b.build());
        assert!(encode_polytree(&h).is_none());
    }

    #[test]
    fn edge_probabilities_preserved() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generate::polytree(12, 1, &mut rng);
        let h = generate::with_probabilities(g, generate::ProbProfile::default(), &mut rng);
        let t = encode_polytree(&h).unwrap();
        for i in 0..t.n_nodes() {
            match t.node(i).edge {
                Some(e) => assert_eq!(&t.node(i).prob, h.prob(e)),
                None => assert!(t.node(i).prob.is_one()),
            }
        }
    }
}
