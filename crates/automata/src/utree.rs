//! Full binary uncertain trees: the input shape for the bottom-up tree
//! automata of Prop 5.4.

use phom_num::Rational;

/// The label alphabet Γ = {↑, ↓, −} of Appendix C: the direction of a
/// node's parent edge in the encoded polytree (− is an ε-edge).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeLabel {
    /// The parent edge is directed child → parent (towards the root).
    Up,
    /// The parent edge is directed parent → child.
    Down,
    /// An ε-edge (the child clone denotes the same polytree vertex).
    Eps,
}

/// A node of an uncertain tree.
#[derive(Clone, Debug)]
pub struct UNode {
    /// Direction of this node's parent edge.
    pub label: NodeLabel,
    /// Probability that the node's Boolean annotation is 1 (i.e. that the
    /// represented polytree edge is present). ε nodes have probability 1.
    pub prob: Rational,
    /// Children (`None` for leaves; always two for internal nodes — the
    /// tree is full binary).
    pub children: Option<(usize, usize)>,
    /// The original instance edge this node represents, if any.
    pub edge: Option<usize>,
}

/// A full binary tree with probabilistic Boolean node annotations.
///
/// A *possible world* of the tree assigns each node `1` (with its
/// probability) or `0`, independently; the automaton reads the pair
/// `(label, bit)` at every node.
#[derive(Clone, Debug)]
pub struct UTree {
    nodes: Vec<UNode>,
    root: usize,
}

impl UTree {
    /// Builds a tree from its node table and root index, checking the
    /// full-binary invariant.
    pub fn new(nodes: Vec<UNode>, root: usize) -> Self {
        assert!(root < nodes.len());
        for n in &nodes {
            if let Some((l, r)) = n.children {
                assert!(l < nodes.len() && r < nodes.len());
            }
        }
        let t = UTree { nodes, root };
        debug_assert_eq!(t.postorder().len(), t.nodes.len(), "tree must be connected");
        t
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, i: usize) -> &UNode {
        &self.nodes[i]
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes in postorder (children before parents) — the evaluation order
    /// for bottom-up automata.
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative postorder.
        let mut stack = vec![(self.root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                order.push(n);
            } else {
                stack.push((n, true));
                if let Some((l, r)) = self.nodes[n].children {
                    stack.push((r, false));
                    stack.push((l, false));
                }
            }
        }
        order
    }

    /// Translates a possible world of the original instance (an edge mask)
    /// into the node annotation of this tree: a node is `1` iff its
    /// represented edge is present; nodes representing no edge (ε, dummies)
    /// are always `1`.
    pub fn annotation_from_edge_mask(&self, edge_present: &[bool]) -> Vec<bool> {
        self.nodes
            .iter()
            .map(|n| n.edge.is_none_or(|e| edge_present[e]))
            .collect()
    }

    /// The per-node probabilities, as circuit-variable weights.
    pub fn node_probs(&self) -> Vec<Rational> {
        self.nodes.iter().map(|n| n.prob.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: NodeLabel) -> UNode {
        UNode {
            label,
            prob: Rational::one(),
            children: None,
            edge: None,
        }
    }

    #[test]
    fn postorder_visits_children_first() {
        // Root 2 with children 0, 1.
        let nodes = vec![
            leaf(NodeLabel::Up),
            leaf(NodeLabel::Down),
            UNode {
                label: NodeLabel::Eps,
                prob: Rational::one(),
                children: Some((0, 1)),
                edge: None,
            },
        ];
        let t = UTree::new(nodes, 2);
        assert_eq!(t.postorder(), vec![0, 1, 2]);
    }

    #[test]
    fn annotation_mapping() {
        let mut n0 = leaf(NodeLabel::Up);
        n0.edge = Some(1);
        n0.prob = Rational::from_ratio(1, 2);
        let nodes = vec![
            n0,
            leaf(NodeLabel::Eps),
            UNode {
                label: NodeLabel::Eps,
                prob: Rational::one(),
                children: Some((0, 1)),
                edge: None,
            },
        ];
        let t = UTree::new(nodes, 2);
        assert_eq!(
            t.annotation_from_edge_mask(&[false, true]),
            vec![true, true, true]
        );
        assert_eq!(
            t.annotation_from_edge_mask(&[true, false]),
            vec![false, true, true]
        );
    }
}
