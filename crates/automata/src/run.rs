//! Running a tree automaton over an uncertain tree: exact acceptance
//! probability via (a) a direct state-distribution dynamic program and
//! (b) explicit d-DNNF compilation ([5, Prop 3.1]).
//!
//! Both compute `Pr[ A accepts the random annotation of T ]`; they are
//! cross-checked against each other and against world enumeration in the
//! test suites.

use crate::dta::TreeAutomaton;
use crate::utree::UTree;
use phom_lineage::{Circuit, GateId};
use phom_num::Weight;
use std::collections::HashMap;

/// The acceptance probability of `aut` on `tree`, by propagating the
/// distribution over states bottom-up.
///
/// At each node the distribution has one entry per *reachable* state; the
/// merge of two children costs `O(|S_l| · |S_r|)` products.
pub fn acceptance_probability<A: TreeAutomaton, W: Weight>(aut: &A, tree: &UTree) -> W {
    let mut dists: Vec<Option<HashMap<A::State, W>>> = vec![None; tree.n_nodes()];
    for n in tree.postorder() {
        let node = tree.node(n);
        let p = W::from_rational(&node.prob);
        let q = p.complement();
        let mut dist: HashMap<A::State, W> = HashMap::new();
        match node.children {
            None => {
                for (bit, w) in [(true, p), (false, q)] {
                    if w.is_zero() {
                        continue;
                    }
                    let s = aut.leaf(node.label, bit);
                    upsert(&mut dist, s, w);
                }
            }
            Some((l, r)) => {
                let dl = dists[l].take().expect("postorder");
                let dr = dists[r].take().expect("postorder");
                for (sl, wl) in &dl {
                    for (sr, wr) in &dr {
                        let wlr = wl.mul(wr);
                        for (bit, w) in [(true, &p), (false, &q)] {
                            if w.is_zero() {
                                continue;
                            }
                            let s = aut.internal(node.label, bit, sl, sr);
                            upsert(&mut dist, s, wlr.mul(w));
                        }
                    }
                }
            }
        }
        dists[n] = Some(dist);
    }
    let root = dists[tree.root()].take().unwrap();
    root.into_iter()
        .filter(|(s, _)| aut.accepting(s))
        .fold(W::zero(), |acc, (_, w)| acc.add(&w))
}

fn upsert<S: std::hash::Hash + Eq, W: Weight>(dist: &mut HashMap<S, W>, s: S, w: W) {
    dist.entry(s).and_modify(|e| *e = e.add(&w)).or_insert(w);
}

/// Compiles the lineage of "`aut` accepts" over the node annotations of
/// `tree` into a d-DNNF circuit, following [5, Prop 3.1]: one gate per
/// reachable `(node, state)` pair,
///
/// ```text
/// g(n, s) = ⋁_{(bit, s_l, s_r) ⊢ s}  lit(x_n, bit) ∧ g(n_l, s_l) ∧ g(n_r, s_r)
/// ```
///
/// * the OR is deterministic because the automaton is bottom-up
///   deterministic: under any fixed annotation each node has exactly one
///   run state, so distinct `(bit, s_l, s_r)` triples are mutually
///   exclusive;
/// * the AND is decomposable because the two subtrees and the node variable
///   mention disjoint variables.
///
/// Circuit variables are the tree's nodes; evaluate with
/// [`UTree::node_probs`] or translate instance-edge masks with
/// [`UTree::annotation_from_edge_mask`].
pub fn compile_ddnnf<A: TreeAutomaton>(aut: &A, tree: &UTree) -> (Circuit, GateId) {
    let mut circuit = Circuit::new(tree.n_nodes());
    let mut gates: Vec<Option<HashMap<A::State, GateId>>> = vec![None; tree.n_nodes()];
    for n in tree.postorder() {
        let node = tree.node(n);
        // Buckets: state -> disjuncts.
        let mut buckets: HashMap<A::State, Vec<GateId>> = HashMap::new();
        match node.children {
            None => {
                for bit in [true, false] {
                    let lit = if bit {
                        circuit.var(n)
                    } else {
                        circuit.neg_var(n)
                    };
                    buckets
                        .entry(aut.leaf(node.label, bit))
                        .or_default()
                        .push(lit);
                }
            }
            Some((l, r)) => {
                let gl = gates[l].take().expect("postorder");
                let gr = gates[r].take().expect("postorder");
                for (sl, &cl) in &gl {
                    for (sr, &cr) in &gr {
                        for bit in [true, false] {
                            let s = aut.internal(node.label, bit, sl, sr);
                            let lit = if bit {
                                circuit.var(n)
                            } else {
                                circuit.neg_var(n)
                            };
                            let and = circuit.and_gate(vec![lit, cl, cr]);
                            buckets.entry(s).or_default().push(and);
                        }
                    }
                }
            }
        }
        let mut per_state: HashMap<A::State, GateId> = HashMap::new();
        for (s, disjuncts) in buckets {
            let gate = if disjuncts.len() == 1 {
                disjuncts[0]
            } else {
                circuit.or_gate(disjuncts)
            };
            per_state.insert(s, gate);
        }
        gates[n] = Some(per_state);
    }
    let root_states = gates[tree.root()].take().unwrap();
    let accepting: Vec<GateId> = root_states
        .into_iter()
        .filter(|(s, _)| aut.accepting(s))
        .map(|(_, g)| g)
        .collect();
    let root_gate = match accepting.len() {
        0 => circuit.constant(false),
        1 => accepting[0],
        _ => circuit.or_gate(accepting),
    };
    (circuit, root_gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::{OptPathAutomaton, PathAutomaton};
    use crate::encode::encode_polytree;
    use phom_graph::generate;
    use phom_graph::graded::longest_directed_path;
    use phom_graph::ProbGraph;
    use phom_num::Rational;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Brute-force oracle: Pr[world of H has a directed path ≥ m].
    fn brute_force_path_prob(h: &ProbGraph, m: usize) -> Rational {
        let mut total = Rational::zero();
        for (mask, p) in h.worlds() {
            let world = h.graph().edge_subgraph(&mask);
            if longest_directed_path(&world).unwrap() >= m {
                total = total.add(&p);
            }
        }
        total
    }

    #[test]
    fn single_edge_path_probability() {
        let g = phom_graph::Graph::directed_path(1);
        let h = ProbGraph::new(g, vec![Rational::from_ratio(1, 3)]);
        let t = encode_polytree(&h).unwrap();
        let aut = PathAutomaton { m: 1 };
        let p: Rational = acceptance_probability(&aut, &t);
        assert_eq!(p, Rational::from_ratio(1, 3));
    }

    #[test]
    fn chain_of_two_edges() {
        let g = phom_graph::Graph::directed_path(2);
        let h = ProbGraph::new(
            g,
            vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 3)],
        );
        let t = encode_polytree(&h).unwrap();
        let aut = PathAutomaton { m: 2 };
        let p: Rational = acceptance_probability(&aut, &t);
        assert_eq!(p, Rational::from_ratio(1, 6));
        let aut1 = PathAutomaton { m: 1 };
        let p1: Rational = acceptance_probability(&aut1, &t);
        // 1 − (1/2)(2/3) = 2/3.
        assert_eq!(p1, Rational::from_ratio(2, 3));
    }

    #[test]
    fn automaton_run_matches_longest_path_on_sampled_worlds() {
        // For fixed worlds (certain edges), acceptance must equal "longest
        // path ≥ m" exactly — this validates the encoding + transitions.
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..120 {
            let g = generate::polytree(rand::Rng::gen_range(&mut rng, 1..10), 1, &mut rng);
            let lp = longest_directed_path(&g).unwrap();
            let h = ProbGraph::certain(g);
            let t = encode_polytree(&h).unwrap();
            for m in 1..6 {
                let aut = PathAutomaton { m };
                let p: Rational = acceptance_probability(&aut, &t);
                let expect = if lp >= m {
                    Rational::one()
                } else {
                    Rational::zero()
                };
                assert_eq!(p, expect, "m={m} lp={lp} h={:?}", h.graph());
            }
        }
    }

    #[test]
    fn probabilistic_polytrees_match_brute_force() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..60 {
            let g = generate::polytree(rand::Rng::gen_range(&mut rng, 2..8), 1, &mut rng);
            let h = generate::with_probabilities(
                g,
                generate::ProbProfile {
                    certain_ratio: 0.3,
                    denominator: 4,
                },
                &mut rng,
            );
            let t = encode_polytree(&h).unwrap();
            for m in 1..5 {
                let expect = brute_force_path_prob(&h, m);
                let paper: Rational = acceptance_probability(&PathAutomaton { m }, &t);
                let opt: Rational = acceptance_probability(&OptPathAutomaton { m }, &t);
                assert_eq!(paper, expect, "paper automaton, m={m}");
                assert_eq!(opt, expect, "opt automaton, m={m}");
            }
        }
    }

    #[test]
    fn ddnnf_agrees_with_distribution_dp() {
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..40 {
            let g = generate::polytree(rand::Rng::gen_range(&mut rng, 2..8), 1, &mut rng);
            let h = generate::with_probabilities(
                g,
                generate::ProbProfile {
                    certain_ratio: 0.2,
                    denominator: 4,
                },
                &mut rng,
            );
            let t = encode_polytree(&h).unwrap();
            for m in 1..4 {
                let aut = OptPathAutomaton { m };
                let (circuit, root) = compile_ddnnf(&aut, &t);
                assert!(circuit.check_decomposable());
                let probs = t.node_probs();
                let via_circuit: Rational = circuit.probability(root, &probs);
                let via_dp: Rational = acceptance_probability(&aut, &t);
                assert_eq!(via_circuit, via_dp);
            }
        }
    }

    #[test]
    fn ddnnf_is_deterministic_on_all_worlds() {
        let mut rng = SmallRng::seed_from_u64(4321);
        let g = generate::polytree(5, 1, &mut rng);
        let h = generate::with_probabilities(g, generate::ProbProfile::half(), &mut rng);
        let t = encode_polytree(&h).unwrap();
        let aut = PathAutomaton { m: 2 };
        let (circuit, root) = compile_ddnnf(&aut, &t);
        for (mask, _) in h.worlds() {
            let annotation = t.annotation_from_edge_mask(&mask);
            assert!(circuit.check_deterministic_under(&annotation));
            // The circuit evaluates to the truth of "path ≥ 2".
            let world = h.graph().edge_subgraph(&mask);
            let expect = longest_directed_path(&world).unwrap() >= 2;
            assert_eq!(circuit.eval_world(root, &annotation), expect);
        }
    }

    #[test]
    fn f64_and_exact_agree() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generate::polytree(20, 1, &mut rng);
        let h = generate::with_probabilities(g, generate::ProbProfile::default(), &mut rng);
        let t = encode_polytree(&h).unwrap();
        let aut = OptPathAutomaton { m: 3 };
        let exact: Rational = acceptance_probability(&aut, &t);
        let float: f64 = acceptance_probability(&aut, &t);
        assert!((exact.to_f64() - float).abs() < 1e-9);
    }
}
