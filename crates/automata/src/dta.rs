//! Bottom-up deterministic tree automata (Definition 5.2) and the two
//! path-length automata of Proposition 5.4.

use crate::utree::NodeLabel;
use std::fmt::Debug;
use std::hash::Hash;

/// A bottom-up deterministic automaton over full binary trees whose nodes
/// carry `(NodeLabel, bool)` — the label and the uncertain Boolean
/// annotation.
///
/// Rather than materializing the transition table `∆ : Γ̄ × Q² → Q` (the
/// state space of the path automaton is polynomial but large), transitions
/// are computed on demand; determinism is inherent since `leaf`/`internal`
/// are functions.
pub trait TreeAutomaton {
    /// The state type.
    type State: Clone + Eq + Hash + Ord + Debug;

    /// ι: the state of a leaf from its `(label, bit)`.
    fn leaf(&self, label: NodeLabel, present: bool) -> Self::State;

    /// ∆: the state of an internal node from its `(label, bit)` and the
    /// states of its two children.
    fn internal(
        &self,
        label: NodeLabel,
        present: bool,
        left: &Self::State,
        right: &Self::State,
    ) -> Self::State;

    /// Whether a root state is accepting.
    fn accepting(&self, state: &Self::State) -> bool;
}

/// The paper-faithful automaton of Prop 5.4: states `⟨↑: i, ↓: j, Max: k⟩`
/// with `0 ≤ i, j ≤ k ≤ m`, testing for a directed path of length `≥ m` in
/// the encoded polytree. Semantics at a node `n` with anchor vertex `p`
/// (the parent endpoint of `n`'s represented edge):
///
/// * `i` — longest present directed path in the processed subinstance
///   **ending at** `p`;
/// * `j` — longest present directed path **starting at** `p`;
/// * `k` — longest present directed path anywhere in the subinstance.
///
/// All three are capped at `m`.
#[derive(Clone, Copy, Debug)]
pub struct PathAutomaton {
    /// The target path length (`m ≥ 1`; `m = 0` is trivially true and is
    /// handled by callers).
    pub m: usize,
}

/// A state of [`PathAutomaton`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PathState {
    /// Longest present path ending at the anchor.
    pub up: usize,
    /// Longest present path starting at the anchor.
    pub down: usize,
    /// Longest present path overall (capped).
    pub max: usize,
}

impl PathAutomaton {
    fn cap(&self, v: usize) -> usize {
        v.min(self.m)
    }
}

impl TreeAutomaton for PathAutomaton {
    type State = PathState;

    fn leaf(&self, label: NodeLabel, present: bool) -> PathState {
        match (label, present) {
            (_, false) | (NodeLabel::Eps, true) => PathState {
                up: 0,
                down: 0,
                max: 0,
            },
            (NodeLabel::Up, true) => PathState {
                up: self.cap(1),
                down: 0,
                max: self.cap(1),
            },
            (NodeLabel::Down, true) => PathState {
                up: 0,
                down: self.cap(1),
                max: self.cap(1),
            },
        }
    }

    fn internal(&self, label: NodeLabel, present: bool, l: &PathState, r: &PathState) -> PathState {
        // Joins through the shared child anchor: a path ending at it from
        // one child continues with a path starting at it from the other.
        // Same-child joins are already counted in that child's `max`.
        let cross = (l.up + r.down).max(r.up + l.down);
        let submax = l.max.max(r.max).max(cross);
        match (label, present) {
            // ε present: the child anchor *is* this node's anchor.
            (NodeLabel::Eps, true) => PathState {
                up: l.up.max(r.up),
                down: l.down.max(r.down),
                max: self.cap(submax),
            },
            (_, false) => PathState {
                up: 0,
                down: 0,
                max: self.cap(submax),
            },
            (NodeLabel::Up, true) => {
                let up = self.cap(l.up.max(r.up) + 1);
                PathState {
                    up,
                    down: 0,
                    max: self.cap(submax.max(up)),
                }
            }
            (NodeLabel::Down, true) => {
                let down = self.cap(l.down.max(r.down) + 1);
                PathState {
                    up: 0,
                    down,
                    max: self.cap(submax.max(down)),
                }
            }
        }
    }

    fn accepting(&self, s: &PathState) -> bool {
        s.max >= self.m
    }
}

/// The optimized automaton (ablation ABL-2 in `DESIGN.md`): `Max` only
/// matters through its final comparison with `m`, and paths that do not
/// touch the current anchor can never grow, so `k` collapses to a
/// *saturation bit*. States drop from `O(m³)` to `O(m²)`.
#[derive(Clone, Copy, Debug)]
pub struct OptPathAutomaton {
    /// The target path length (`m ≥ 1`).
    pub m: usize,
}

/// A state of [`OptPathAutomaton`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OptPathState {
    /// Longest present path ending at the anchor (capped at `m`).
    pub up: usize,
    /// Longest present path starting at the anchor (capped at `m`).
    pub down: usize,
    /// Whether a path of length ≥ m exists in the processed subinstance.
    pub sat: bool,
}

impl TreeAutomaton for OptPathAutomaton {
    type State = OptPathState;

    fn leaf(&self, label: NodeLabel, present: bool) -> OptPathState {
        match (label, present) {
            (_, false) | (NodeLabel::Eps, true) => OptPathState {
                up: 0,
                down: 0,
                sat: self.m == 0,
            },
            (NodeLabel::Up, true) => OptPathState {
                up: 1.min(self.m),
                down: 0,
                sat: self.m <= 1,
            },
            (NodeLabel::Down, true) => OptPathState {
                up: 0,
                down: 1.min(self.m),
                sat: self.m <= 1,
            },
        }
    }

    fn internal(
        &self,
        label: NodeLabel,
        present: bool,
        l: &OptPathState,
        r: &OptPathState,
    ) -> OptPathState {
        let cross = (l.up + r.down).max(r.up + l.down);
        let sat = l.sat || r.sat || cross >= self.m;
        match (label, present) {
            (_, false) => OptPathState {
                up: 0,
                down: 0,
                sat,
            },
            (NodeLabel::Eps, true) => OptPathState {
                up: l.up.max(r.up),
                down: l.down.max(r.down),
                sat,
            },
            (NodeLabel::Up, true) => {
                let up = (l.up.max(r.up) + 1).min(self.m);
                OptPathState {
                    up,
                    down: 0,
                    sat: sat || up >= self.m,
                }
            }
            (NodeLabel::Down, true) => {
                let down = (l.down.max(r.down) + 1).min(self.m);
                OptPathState {
                    up: 0,
                    down,
                    sat: sat || down >= self.m,
                }
            }
        }
    }

    fn accepting(&self, s: &OptPathState) -> bool {
        s.sat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_table_matches_paper() {
        let a = PathAutomaton { m: 5 };
        // ι((s,0)) = ⟨0,0,0⟩ for any s; ι((−,1)) = ⟨0,0,0⟩;
        // ι((↑,1)) = ⟨1,0,1⟩; ι((↓,1)) = ⟨0,1,1⟩.
        for lbl in [NodeLabel::Up, NodeLabel::Down, NodeLabel::Eps] {
            assert_eq!(
                a.leaf(lbl, false),
                PathState {
                    up: 0,
                    down: 0,
                    max: 0
                }
            );
        }
        assert_eq!(
            a.leaf(NodeLabel::Eps, true),
            PathState {
                up: 0,
                down: 0,
                max: 0
            }
        );
        assert_eq!(
            a.leaf(NodeLabel::Up, true),
            PathState {
                up: 1,
                down: 0,
                max: 1
            }
        );
        assert_eq!(
            a.leaf(NodeLabel::Down, true),
            PathState {
                up: 0,
                down: 1,
                max: 1
            }
        );
    }

    #[test]
    fn up_transition_matches_paper() {
        // ∆((↑,1), ⟨i,j,k⟩, ⟨i′,j′,k′⟩) = ⟨min(m, max(i,i′)+1), 0, k″⟩ with
        // k″ = min(m, max(i″, i+j′, i′+j, k, k′)).
        let a = PathAutomaton { m: 10 };
        let s1 = PathState {
            up: 2,
            down: 3,
            max: 4,
        };
        let s2 = PathState {
            up: 1,
            down: 5,
            max: 5,
        };
        let out = a.internal(NodeLabel::Up, true, &s1, &s2);
        assert_eq!(out.up, 3);
        assert_eq!(out.down, 0);
        // cross = max(2+5, 1+3) = 7; k″ = max(3, 7, 4, 5) = 7.
        assert_eq!(out.max, 7);
    }

    #[test]
    fn eps_cross_value() {
        let a = PathAutomaton { m: 10 };
        let s1 = PathState {
            up: 2,
            down: 1,
            max: 3,
        };
        let s2 = PathState {
            up: 4,
            down: 2,
            max: 4,
        };
        let out = a.internal(NodeLabel::Eps, true, &s1, &s2);
        // cross = max(l.up + r.down, r.up + l.down) = max(4, 5) = 5.
        assert_eq!(out.max, 5);
        assert_eq!(out.up, 4);
        assert_eq!(out.down, 2);
    }

    #[test]
    fn absent_node_disconnects_anchor() {
        let a = PathAutomaton { m: 10 };
        let s1 = PathState {
            up: 2,
            down: 3,
            max: 4,
        };
        let s2 = PathState {
            up: 1,
            down: 5,
            max: 5,
        };
        let out = a.internal(NodeLabel::Up, false, &s1, &s2);
        assert_eq!(out.up, 0);
        assert_eq!(out.down, 0);
        assert_eq!(out.max, 7); // joins below the anchor survive
    }

    #[test]
    fn capping_at_m() {
        let a = PathAutomaton { m: 3 };
        let s = PathState {
            up: 3,
            down: 0,
            max: 3,
        };
        let z = PathState {
            up: 0,
            down: 0,
            max: 0,
        };
        let out = a.internal(NodeLabel::Up, true, &s, &z);
        assert_eq!(
            out,
            PathState {
                up: 3,
                down: 0,
                max: 3
            }
        );
        assert!(a.accepting(&out));
    }

    #[test]
    fn opt_automaton_agrees_pointwise() {
        // The Opt automaton simulates the paper automaton: up/down equal,
        // sat ⟺ max = m. Checked here on composed transitions.
        let m = 3;
        let a = PathAutomaton { m };
        let o = OptPathAutomaton { m };
        let labels = [NodeLabel::Up, NodeLabel::Down, NodeLabel::Eps];
        let mut pairs: Vec<(PathState, OptPathState)> = Vec::new();
        for lbl in labels {
            for b in [true, false] {
                pairs.push((a.leaf(lbl, b), o.leaf(lbl, b)));
            }
        }
        for _ in 0..2 {
            let snapshot = pairs.clone();
            for (s1, t1) in &snapshot {
                for (s2, t2) in &snapshot {
                    for lbl in labels {
                        for b in [true, false] {
                            let s = a.internal(lbl, b, s1, s2);
                            let t = o.internal(lbl, b, t1, t2);
                            assert_eq!(s.up, t.up);
                            assert_eq!(s.down, t.down);
                            assert_eq!(s.max >= m, t.sat);
                            pairs.push((s, t));
                        }
                    }
                }
            }
            pairs.sort();
            pairs.dedup();
        }
    }
}
