//! Bottom-up deterministic tree automata on uncertain trees, and the
//! polytree lineage compilation of Proposition 5.4.
//!
//! Pipeline (Appendix C of the paper):
//!
//! 1. [`encode`] — transform a connected probabilistic polytree `H` into a
//!    *full binary* uncertain tree `T` via the left-child-right-sibling
//!    variant with ε-edges: every original node becomes a chain of clones
//!    linked by certain ε-edges, every original probabilistic edge becomes
//!    one tree node carrying its direction (↑ / ↓) and probability, and the
//!    query "`H` contains a directed path of length `m`" becomes "`T`
//!    contains a path of the form `(→ ε*)^m`".
//! 2. [`dta`] — the bottom-up deterministic automaton `A_G` with states
//!    `⟨↑: i, ↓: j, Max: k⟩` tracking, for the processed subtree, the
//!    longest present directed path *into* its anchor, *out of* its anchor,
//!    and *anywhere*. An optimized variant collapses `Max` to a saturation
//!    bit (an ablation measured in the benches).
//! 3. [`run`] — two evaluation strategies, cross-checked in tests:
//!    a direct state-distribution dynamic program, and the explicit
//!    **d-DNNF** compilation of [5, Prop 3.1] (one gate per reachable
//!    (node, state) pair) evaluated by `phom-lineage`.

pub mod dta;
pub mod encode;
pub mod run;
pub mod utree;

pub use dta::{OptPathAutomaton, PathAutomaton, TreeAutomaton};
pub use encode::encode_polytree;
pub use utree::{NodeLabel, UTree};
