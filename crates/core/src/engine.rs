//! The session-oriented serving surface: a long-lived [`Engine`] per
//! probabilistic instance, typed [`Request`]s/[`Response`]s, sharded
//! batch submission, and a [`Fleet`] registry for serving many graph
//! versions at once.
//!
//! The paper's dichotomy makes query evaluation a *routing* problem —
//! every tractable `PHom` route ends in one engine pass — and a serving
//! process should pay the instance-side work (classification, label set,
//! the Lemma 3.7 split, the answer cache) **once per instance lifetime**,
//! not once per call. That is what `Engine` owns:
//!
//! * the [`ProbGraph`] instance plus its cached
//!   [`InstanceState`](crate::solver) (classification, labels, lazy
//!   component split);
//! * a **bounded LRU [`EvalCache`]** keyed by (instance fingerprint,
//!   options fingerprint, interned query) — see
//!   [`EngineBuilder::cache_capacity`];
//! * a **shard width** ([`EngineBuilder::threads`]): `submit` distributes
//!   the batch's unique, uncached queries across scoped worker threads.
//!
//! ## Sharding and bit-identical results
//!
//! Planning is pure reads over the shared state. Each shard compiles its
//! assigned circuit-compilable plans into its *own* lineage arena and
//! answers them with one multi-root engine pass; all other plans run the
//! exact per-query path. A query's compiled circuit — and therefore its
//! exact rational probability — does not depend on which arena it lands
//! in or on what else that arena holds (interning only deduplicates
//! structurally identical gates), so `submit` returns **bit-identical**
//! `Response`s for `threads = 1`, `threads = N`, and the legacy
//! `solve_many` path. The equivalence suite in `tests/engine_api.rs`
//! asserts exactly this.
//!
//! ## Quick start
//!
//! ```
//! use phom_core::{Engine, Request, Response};
//! use phom_graph::{Graph, GraphBuilder, Label, ProbGraph};
//! use phom_num::Rational;
//!
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//!
//! let engine = Engine::builder().cache_capacity(1024).build(h);
//! let batch = [
//!     Request::probability(Graph::one_way_path(&[r, s])),
//!     Request::probability(Graph::one_way_path(&[r])).with_provenance(),
//! ];
//! let answers = engine.submit(&batch);
//! let Ok(Response::Probability(sol)) = &answers[0] else { panic!() };
//! assert_eq!(sol.probability, Rational::from_ratio(3, 8));
//! assert_eq!(engine.cache_stats().misses, 2);
//! ```

use crate::algo::lineage_circuits;
use crate::batch::{
    instance_fingerprint, opts_fingerprint, BatchStats, CacheKey, CacheStats, EvalCache, QueryKey,
};
use crate::sensitivity::{self, SensitivityRoute};
use crate::solver::{
    finish_plan, plan_query, solve_with_impl, Hardness, InstanceState, Plan, Planned,
    SharedInstance, Solution, SolveError, SolverOptions,
};
use crate::ucq::{Ucq, UcqRoute};
use crate::{counting, Fallback, Route};
use phom_graph::{Graph, ProbGraph};
use phom_lineage::engine::{Arena, EvalScratch, GateId};
use phom_lineage::fxhash::FxHashMap;
use phom_num::{Natural, Rational};
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------

/// A typed unit of work for [`Engine::submit`], unifying the historical
/// per-module entry points (`solve*`, `counting`, `sensitivity`, `ucq`)
/// behind one builder.
///
/// Construct with [`Request::probability`] or [`Request::ucq`], reshape
/// with [`counting`](Request::counting) / [`sensitivity`](Request::sensitivity),
/// and tune with [`with_provenance`](Request::with_provenance) /
/// [`fallback`](Request::fallback) / [`options`](Request::options).
/// Unset knobs inherit the engine's
/// [`default_options`](EngineBuilder::default_options).
#[derive(Clone, Debug)]
pub struct Request {
    kind: RequestKind,
    overrides: Overrides,
}

#[derive(Clone, Debug)]
enum RequestKind {
    Probability(Graph),
    Counting(Graph),
    Sensitivity(Graph),
    Ucq(Ucq),
}

#[derive(Clone, Copy, Debug, Default)]
struct Overrides {
    /// Full replacement of the engine defaults, applied before the
    /// per-field overrides below.
    options: Option<SolverOptions>,
    fallback: Option<Fallback>,
    want_provenance: Option<bool>,
}

impl Request {
    /// `Pr(G ⇝ H)`: the core probability query. Answered through the
    /// engine's interned/cached/sharded batch path.
    pub fn probability(query: Graph) -> Self {
        Request {
            kind: RequestKind::Probability(query),
            overrides: Overrides::default(),
        }
    }

    /// A union of conjunctive queries: `Pr(G₁ ∨ … ∨ G_r ⇝ H)`.
    pub fn ucq(ucq: Ucq) -> Self {
        Request {
            kind: RequestKind::Ucq(ucq),
            overrides: Overrides::default(),
        }
    }

    /// Reshape into a model-counting request: the number of worlds (over
    /// the instance's all-½ uncertain edges) in which the query holds.
    ///
    /// # Panics
    /// When called on a UCQ request (counting is defined per query graph).
    pub fn counting(self) -> Self {
        Request {
            kind: RequestKind::Counting(self.query_graph("counting")),
            overrides: self.overrides,
        }
    }

    /// Reshape into a sensitivity request: all edge influences
    /// `∂ Pr / ∂ π(e)`.
    ///
    /// # Panics
    /// When called on a UCQ request.
    pub fn sensitivity(self) -> Self {
        Request {
            kind: RequestKind::Sensitivity(self.query_graph("sensitivity")),
            overrides: self.overrides,
        }
    }

    /// Ask the solver to attach a [`Provenance`](phom_lineage::Provenance)
    /// handle on routes that can compile one.
    pub fn with_provenance(mut self) -> Self {
        self.overrides.want_provenance = Some(true);
        self
    }

    /// Configure the hard-cell fallback for this request.
    pub fn fallback(mut self, fallback: Fallback) -> Self {
        self.overrides.fallback = Some(fallback);
        self
    }

    /// Replace the engine's default [`SolverOptions`] wholesale for this
    /// request (the chained per-field overrides still apply on top).
    pub fn options(mut self, options: SolverOptions) -> Self {
        self.overrides.options = Some(options);
        self
    }

    fn query_graph(&self, what: &str) -> Graph {
        match &self.kind {
            RequestKind::Probability(q)
            | RequestKind::Counting(q)
            | RequestKind::Sensitivity(q) => q.clone(),
            RequestKind::Ucq(_) => {
                panic!("Request::{what}() applies to single-query requests, not UCQs")
            }
        }
    }

    fn resolved_options(&self, default: SolverOptions) -> SolverOptions {
        let mut opts = self.overrides.options.unwrap_or(default);
        if let Some(f) = self.overrides.fallback {
            opts.fallback = f;
        }
        if let Some(w) = self.overrides.want_provenance {
            opts.want_provenance = w;
        }
        opts
    }
}

/// The typed answer to a [`Request`].
#[derive(Clone, Debug)]
pub enum Response {
    /// The answer to a [`Request::probability`] request.
    Probability(Solution),
    /// The answer to a counting request.
    Count {
        /// Worlds (over the uncertain edges) in which the query holds.
        worlds: Natural,
        /// The number of uncertain edges (worlds range over `2^this`).
        uncertain_edges: usize,
    },
    /// The answer to a sensitivity request.
    Sensitivity {
        /// `∂ Pr / ∂ π(e)` per instance edge.
        influences: Vec<Rational>,
        /// How the influences were obtained.
        route: SensitivityRoute,
    },
    /// The answer to a [`Request::ucq`] request.
    Ucq {
        /// `Pr(G₁ ∨ … ∨ G_r ⇝ H)`.
        probability: Rational,
        /// The tractable UCQ route taken.
        route: UcqRoute,
    },
}

impl Response {
    /// The [`Solution`] of a probability response.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Response::Probability(sol) => Some(sol),
            _ => None,
        }
    }

    /// The probability of a probability or UCQ response.
    pub fn probability(&self) -> Option<&Rational> {
        match self {
            Response::Probability(sol) => Some(&sol.probability),
            Response::Ucq { probability, .. } => Some(probability),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Configuration for a long-lived [`Engine`].
#[derive(Clone)]
pub struct EngineBuilder {
    cache_capacity: usize,
    threads: usize,
    default_options: SolverOptions,
    shared_cache: Option<Arc<Mutex<EvalCache>>>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder::new()
    }
}

impl EngineBuilder {
    /// Defaults: unbounded cache, one shard, default [`SolverOptions`].
    pub fn new() -> Self {
        EngineBuilder {
            cache_capacity: usize::MAX,
            threads: 1,
            default_options: SolverOptions::default(),
            shared_cache: None,
        }
    }

    /// Bound the engine's [`EvalCache`] to `n` answers (LRU eviction).
    /// Ignored when the engine joins a [`Fleet`] (the fleet's shared
    /// cache carries the bound).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Shard width for [`Engine::submit`]: unique uncached queries are
    /// distributed across `k` scoped worker threads. `1` keeps the
    /// historical sequential path (one shared arena across the whole
    /// batch); `0` resolves to the machine's available parallelism.
    /// Results are bit-identical for every width.
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k;
        self
    }

    /// The [`SolverOptions`] applied to requests that don't override
    /// them.
    pub fn default_options(mut self, options: SolverOptions) -> Self {
        self.default_options = options;
        self
    }

    /// Joins an existing shared cache (used by [`Fleet`]).
    fn with_shared_cache(mut self, cache: Arc<Mutex<EvalCache>>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Builds the engine: classifies the instance, computes its
    /// fingerprint, and allocates the cache.
    pub fn build(self, instance: ProbGraph) -> Engine {
        let state = InstanceState::new(&instance);
        let fingerprint = instance_fingerprint(&instance);
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        };
        let cache = self
            .shared_cache
            .unwrap_or_else(|| Arc::new(Mutex::new(EvalCache::with_capacity(self.cache_capacity))));
        Engine {
            instance,
            state,
            fingerprint,
            cache,
            threads,
            default_options: self.default_options,
        }
    }
}

/// A long-lived serving handle for one probabilistic instance: owns the
/// instance-side state, a bounded answer cache, and the sharded submit
/// loop. See the [module docs](self) for the full story.
///
/// `Engine` is `Sync`: one engine can serve `submit` calls from many
/// threads (the cache is internally locked; everything else is read-only
/// after construction).
pub struct Engine {
    instance: ProbGraph,
    state: InstanceState,
    fingerprint: u64,
    cache: Arc<Mutex<EvalCache>>,
    threads: usize,
    default_options: SolverOptions,
}

impl Engine {
    /// An engine with default configuration (unbounded cache, one shard).
    pub fn new(instance: ProbGraph) -> Self {
        EngineBuilder::new().build(instance)
    }

    /// Starts a configuration.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The served instance.
    pub fn instance(&self) -> &ProbGraph {
        &self.instance
    }

    /// The instance's content fingerprint
    /// ([`instance_fingerprint`]) — the routing key inside a [`Fleet`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The configured shard width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The options requests inherit when they don't override them.
    pub fn default_options(&self) -> SolverOptions {
        self.default_options
    }

    /// Counters and size of the engine's answer cache. For a fleet
    /// member these describe the *shared* cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Drops every cached answer (lifetime counters are kept — see
    /// [`EvalCache::clear`]).
    pub fn clear_cache(&self) {
        self.lock_cache().clear();
    }

    /// The cache lock, recovering from poisoning: the cache's own
    /// operations never unwind mid-mutation, so a panic elsewhere while
    /// the lock was held cannot leave it inconsistent — a long-lived
    /// serving engine must not die because one query panicked.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, EvalCache> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// One-shot convenience: a single probability query under the engine
    /// defaults, through the same cache the batch path uses.
    pub fn solve(&self, query: &Graph) -> Result<Solution, SolveError> {
        let shared = SharedInstance::new(&self.instance, &self.state);
        let items = [BatchItem {
            query,
            opts: self.default_options,
        }];
        let (mut results, _) = self.run_cached_batch(shared, &items, 1);
        results
            .pop()
            .expect("one item in")
            .map_err(SolveError::from)
    }

    /// Answers a batch of requests, preserving order. Probability
    /// requests are interned, served from the cache where possible, and
    /// sharded across the configured worker threads; counting,
    /// sensitivity, and UCQ requests run as independent jobs on the same
    /// workers.
    ///
    /// The cache lock is held only for the (cheap) probe and fill
    /// phases, never across planning or solving — concurrent `submit`
    /// calls against one engine (or one fleet) overlap their solve work.
    /// Two concurrent misses of the same query may both solve it; the
    /// second insert is a no-op.
    pub fn submit(&self, requests: &[Request]) -> Vec<Result<Response, SolveError>> {
        self.submit_stats(requests).0
    }

    /// As [`submit`](Engine::submit), returning the [`BatchStats`] of the
    /// probability sub-batch alongside the responses.
    pub fn submit_stats(
        &self,
        requests: &[Request],
    ) -> (Vec<Result<Response, SolveError>>, BatchStats) {
        let shared = SharedInstance::new(&self.instance, &self.state);
        let mut prob_items: Vec<BatchItem> = Vec::new();
        let mut prob_req: Vec<usize> = Vec::new();
        let mut other_req: Vec<usize> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match &request.kind {
                RequestKind::Probability(query) => {
                    prob_items.push(BatchItem {
                        query,
                        opts: request.resolved_options(self.default_options),
                    });
                    prob_req.push(i);
                }
                _ => other_req.push(i),
            }
        }
        let mut out: Vec<Option<Result<Response, SolveError>>> = Vec::new();
        out.resize_with(requests.len(), || None);
        let (prob_results, stats) = self.run_cached_batch(shared, &prob_items, self.threads);
        for (i, result) in prob_req.into_iter().zip(prob_results) {
            out[i] = Some(result.map(Response::Probability).map_err(SolveError::from));
        }
        let other_results = run_jobs(self.threads, other_req.len(), |j| {
            self.run_request(&requests[other_req[j]])
        });
        for (i, result) in other_req.into_iter().zip(other_results) {
            out[i] = Some(result);
        }
        let responses = out
            .into_iter()
            .map(|slot| slot.expect("every request answered"))
            .collect();
        (responses, stats)
    }

    /// The probability batch against the engine cache, locking only
    /// around the probe and fill phases.
    fn run_cached_batch(
        &self,
        shared: SharedInstance<'_>,
        items: &[BatchItem<'_>],
        threads: usize,
    ) -> (Vec<Result<Solution, Hardness>>, BatchStats) {
        let mut prepared = {
            let mut guard = self.lock_cache();
            prepare_batch(items, Some(&mut guard), self.fingerprint)
        };
        execute_batch(shared, items, &mut prepared, threads);
        let mut guard = self.lock_cache();
        finalize_batch(prepared, Some(&mut guard), self.fingerprint)
    }

    /// One non-probability request (counting / sensitivity / UCQ). The
    /// counting and UCQ paths reuse the engine's cached instance state —
    /// no per-request re-classification.
    fn run_request(&self, request: &Request) -> Result<Response, SolveError> {
        let opts = request.resolved_options(self.default_options);
        let shared = SharedInstance::new(&self.instance, &self.state);
        match &request.kind {
            RequestKind::Probability(_) => unreachable!("handled by the batch path"),
            RequestKind::Counting(query) => {
                match counting::count_satisfying_worlds_shared(query, &shared, opts) {
                    Ok(worlds) => Ok(Response::Count {
                        worlds,
                        uncertain_edges: self.instance.uncertain_edges().len(),
                    }),
                    Err(counting::CountError::NotUnweighted { edge }) => {
                        Err(SolveError::InvalidQuery(format!(
                            "counting requires all-½ uncertain probabilities; \
                             edge {edge} has probability {}",
                            self.instance.prob(edge)
                        )))
                    }
                    Err(counting::CountError::Hard(h)) => Err(SolveError::Hard(h)),
                }
            }
            RequestKind::Sensitivity(query) => self.run_sensitivity(query, opts),
            RequestKind::Ucq(ucq) => self.run_ucq(ucq, &shared, opts),
        }
    }

    /// A UCQ request: the tractable routes first (on the engine's cached
    /// instance state), then the request's configured fallback (mirroring
    /// the probability path's hard-cell handling), then typed hardness.
    fn run_ucq(
        &self,
        ucq: &Ucq,
        shared: &SharedInstance<'_>,
        opts: SolverOptions,
    ) -> Result<Response, SolveError> {
        if let Some((probability, route)) = crate::ucq::probability_shared::<Rational>(ucq, shared)
        {
            return Ok(Response::Ucq { probability, route });
        }
        match opts.fallback {
            Fallback::BruteForce { max_uncertain }
                if self.instance.uncertain_edges().len() <= max_uncertain =>
            {
                Ok(Response::Ucq {
                    probability: crate::ucq::bruteforce_probability(ucq, &self.instance),
                    route: UcqRoute::BruteForce,
                })
            }
            Fallback::MonteCarlo { samples, seed } => {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let est = crate::montecarlo::estimate_ucq(ucq, &self.instance, samples, &mut rng);
                Ok(Response::Ucq {
                    probability: crate::solver::dyadic_from_f64(est.mean),
                    route: UcqRoute::MonteCarlo { samples },
                })
            }
            _ => Err(SolveError::Hard(Hardness {
                prop: "beyond the tractable UCQ routes",
                cell: format!("{}-disjunct UCQ on this instance shape", ucq.len()),
            })),
        }
    }

    /// All edge influences: the engine gradient sweep when a circuit
    /// route applies, otherwise exact conditioning (`2·|E|` dispatcher
    /// solves — the request's fallback applies to each, and hardness
    /// propagates).
    fn run_sensitivity(&self, query: &Graph, opts: SolverOptions) -> Result<Response, SolveError> {
        if let Some((influences, route)) =
            sensitivity::influences::<Rational>(query, &self.instance)
        {
            return Ok(Response::Sensitivity { influences, route });
        }
        let influences = sensitivity::try_influences_by_conditioning::<Rational, SolveError>(
            &self.instance,
            |pinned| Ok(solve_with_impl(query, pinned, opts)?.probability),
        )?;
        Ok(Response::Sensitivity {
            influences,
            route: SensitivityRoute::Conditioning,
        })
    }
}

// ---------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------

/// A registry of [`Engine`]s keyed by [`instance_fingerprint`], for
/// processes serving **many graph versions** at once (the ROADMAP's
/// cross-instance item). All member engines share **one** bounded
/// [`EvalCache`] — the cache key embeds the instance fingerprint, so
/// answers never leak across versions while hot versions compete for the
/// same capacity.
///
/// ```
/// use phom_core::{Fleet, Request, Response};
/// use phom_graph::{Graph, ProbGraph};
/// use phom_num::Rational;
///
/// let mut fleet = Fleet::with_cache_capacity(4096);
/// let v1 = ProbGraph::new(Graph::directed_path(2), vec![
///     Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)]);
/// let fp = fleet.register(v1);
/// let answers = fleet
///     .submit(fp, &[Request::probability(Graph::directed_path(1))])
///     .expect("registered version");
/// assert_eq!(
///     answers[0].as_ref().unwrap().probability(),
///     Some(&Rational::from_ratio(3, 4)),
/// );
/// ```
pub struct Fleet {
    cache: Arc<Mutex<EvalCache>>,
    engines: FxHashMap<u64, Engine>,
    threads: usize,
    default_options: SolverOptions,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new()
    }
}

impl Fleet {
    /// An empty fleet with an unbounded shared cache.
    pub fn new() -> Self {
        Fleet::with_cache_capacity(usize::MAX)
    }

    /// An empty fleet whose members share one cache bounded to
    /// `capacity` answers (LRU across *all* served instances).
    pub fn with_cache_capacity(capacity: usize) -> Self {
        Fleet {
            cache: Arc::new(Mutex::new(EvalCache::with_capacity(capacity))),
            engines: FxHashMap::default(),
            threads: 1,
            default_options: SolverOptions::default(),
        }
    }

    /// Shard width applied to engines registered from now on.
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k;
        self
    }

    /// Default [`SolverOptions`] applied to engines registered from now
    /// on.
    pub fn default_options(mut self, options: SolverOptions) -> Self {
        self.default_options = options;
        self
    }

    /// Registers an instance version, building its engine on the shared
    /// cache, and returns its routing fingerprint. Re-registering an
    /// identical instance replaces the engine (same fingerprint, same
    /// cached answers).
    pub fn register(&mut self, instance: ProbGraph) -> u64 {
        let engine = EngineBuilder::new()
            .threads(self.threads)
            .default_options(self.default_options)
            .with_shared_cache(Arc::clone(&self.cache))
            .build(instance);
        let fingerprint = engine.fingerprint();
        self.engines.insert(fingerprint, engine);
        fingerprint
    }

    /// Removes a served version, freeing its engine (its cached answers
    /// age out of the shared cache naturally).
    pub fn deregister(&mut self, fingerprint: u64) -> bool {
        self.engines.remove(&fingerprint).is_some()
    }

    /// The engine serving `fingerprint`, if registered.
    pub fn engine(&self, fingerprint: u64) -> Option<&Engine> {
        self.engines.get(&fingerprint)
    }

    /// Routes a batch to the engine serving `fingerprint`; `None` when no
    /// such version is registered.
    pub fn submit(
        &self,
        fingerprint: u64,
        requests: &[Request],
    ) -> Option<Vec<Result<Response, SolveError>>> {
        Some(self.engine(fingerprint)?.submit(requests))
    }

    /// Registered versions.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True iff no version is registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The routing fingerprints of every registered version.
    pub fn fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.engines.keys().copied()
    }

    /// Counters and size of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Drops every cached answer across all served versions.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache lock").clear();
    }
}

// ---------------------------------------------------------------------
// The batch core (shared by Engine::submit and the legacy shims)
// ---------------------------------------------------------------------

/// One probability query with its resolved options.
struct BatchItem<'q> {
    query: &'q Graph,
    opts: SolverOptions,
}

/// A unique cache miss recorded during the probe phase, before planning.
struct MissSlot {
    slot: usize,
    item_idx: usize,
}

/// A planned-but-unsolved unique query, ready for a shard.
struct PendingSlot {
    slot: usize,
    item_idx: usize,
    planned: Planned,
}

/// What one shard produced.
struct ShardOutcome {
    results: Vec<(usize, Result<Solution, Hardness>)>,
    gates: usize,
    circuit_batched: usize,
    general_solved: usize,
}

/// A batch after the probe/plan phase, awaiting execution and cache
/// fill. Splitting the phases lets [`Engine`] hold its cache lock only
/// around [`prepare_batch`] and [`finalize_batch`], never across the
/// solve work in [`execute_batch`].
struct PreparedBatch {
    stats: BatchStats,
    /// Per unique slot: the answer, once known.
    slots: Vec<Option<Result<Solution, Hardness>>>,
    /// Unique slots still to solve (not planned yet — planning runs in
    /// [`execute_batch`], outside any cache lock).
    pending: Vec<MissSlot>,
    /// Per unique slot: (first item idx, opts fingerprint, query key).
    unique: Vec<(usize, u64, QueryKey)>,
    /// Batch order → unique slot.
    slot_of_item: Vec<usize>,
}

/// Phase 1 of the batched probability core: intern the batch (one slot
/// per structurally distinct (options, query) pair), probe the cache,
/// and record every miss. Nothing heavier than hashing runs here — this
/// is the phase an [`Engine`] holds its cache lock around.
fn prepare_batch(
    items: &[BatchItem<'_>],
    mut cache: Option<&mut EvalCache>,
    fingerprint: u64,
) -> PreparedBatch {
    let mut stats = BatchStats {
        queries: items.len(),
        shards: 1,
        ..Default::default()
    };
    let mut slot_of_key: FxHashMap<(u64, QueryKey), usize> = FxHashMap::default();
    let mut unique: Vec<(usize, u64, QueryKey)> = Vec::new();
    let mut slot_of_item: Vec<usize> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let opts_fp = opts_fingerprint(&item.opts);
        let key = QueryKey::new(item.query);
        let next = unique.len();
        let slot = *slot_of_key
            .entry((opts_fp, key.clone()))
            .or_insert_with(|| {
                unique.push((i, opts_fp, key));
                next
            });
        slot_of_item.push(slot);
    }
    stats.unique_queries = unique.len();

    let mut slots: Vec<Option<Result<Solution, Hardness>>> = Vec::new();
    slots.resize_with(unique.len(), || None);
    let mut pending: Vec<MissSlot> = Vec::new();
    for (slot, (item_idx, opts_fp, key)) in unique.iter().enumerate() {
        if let Some(c) = cache.as_deref_mut() {
            let ckey = CacheKey {
                instance: fingerprint,
                opts: *opts_fp,
                query: key.clone(),
            };
            if let Some(answer) = c.get(&ckey) {
                stats.cache_hits += 1;
                slots[slot] = Some(answer.clone());
                continue;
            }
        }
        pending.push(MissSlot {
            slot,
            item_idx: *item_idx,
        });
    }
    PreparedBatch {
        stats,
        slots,
        pending,
        unique,
        slot_of_item,
    }
}

/// Phase 2: plan and execute the pending slots, sharded. Planning is
/// pure reads and runs sequentially (slot order stays deterministic);
/// each shard then owns an arena: circuit-compilable plans compile into
/// it and are answered by one multi-root engine pass; everything else
/// runs the exact per-query path. No cache access.
fn execute_batch(
    shared: SharedInstance<'_>,
    items: &[BatchItem<'_>],
    prepared: &mut PreparedBatch,
    threads: usize,
) {
    let pending: Vec<PendingSlot> = std::mem::take(&mut prepared.pending)
        .into_iter()
        .map(|miss| PendingSlot {
            slot: miss.slot,
            item_idx: miss.item_idx,
            planned: plan_query(items[miss.item_idx].query, &shared),
        })
        .collect();
    let workers = if threads <= 1 {
        1
    } else {
        threads.min(pending.len()).max(1)
    };
    prepared.stats.shards = workers;
    let outcomes: Vec<ShardOutcome> = if workers == 1 {
        vec![run_shard(shared, items, pending)]
    } else {
        let mut buckets: Vec<Vec<PendingSlot>> = Vec::new();
        buckets.resize_with(workers, Vec::new);
        for (i, p) in pending.into_iter().enumerate() {
            buckets[i % workers].push(p);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|work| scope.spawn(move || run_shard(shared, items, work)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch shard panicked"))
                .collect()
        })
    };
    for outcome in outcomes {
        prepared.stats.shared_gates += outcome.gates;
        prepared.stats.circuit_batched += outcome.circuit_batched;
        prepared.stats.general_solved += outcome.general_solved;
        for (slot, answer) in outcome.results {
            prepared.slots[slot] = Some(answer);
        }
    }
}

/// Phase 3: fill the cache with the freshly solved slots and fan back
/// out to batch order.
fn finalize_batch(
    prepared: PreparedBatch,
    cache: Option<&mut EvalCache>,
    fingerprint: u64,
) -> (Vec<Result<Solution, Hardness>>, BatchStats) {
    let PreparedBatch {
        stats,
        slots,
        pending,
        unique,
        slot_of_item,
    } = prepared;
    debug_assert!(pending.is_empty(), "finalize before execute");
    let slots: Vec<Result<Solution, Hardness>> = slots
        .into_iter()
        .map(|slot| slot.expect("every unique slot answered"))
        .collect();
    if let Some(c) = cache {
        for ((_, opts_fp, key), answer) in unique.into_iter().zip(&slots) {
            c.insert(
                CacheKey {
                    instance: fingerprint,
                    opts: opts_fp,
                    query: key,
                },
                answer.clone(),
            );
        }
    }
    let results = slot_of_item.iter().map(|&s| slots[s].clone()).collect();
    (results, stats)
}

/// The single-lock-scope batched probability core (intern → cache probe
/// → plan → shard-execute → cache fill → fan out), for callers that own
/// their cache exclusively. Results are bit-identical for every
/// `threads` value and identical to per-query `solve_with` calls.
fn run_batch(
    shared: SharedInstance<'_>,
    items: &[BatchItem<'_>],
    mut cache: Option<&mut EvalCache>,
    fingerprint: u64,
    threads: usize,
) -> (Vec<Result<Solution, Hardness>>, BatchStats) {
    let mut prepared = prepare_batch(items, cache.as_deref_mut(), fingerprint);
    execute_batch(shared, items, &mut prepared, threads);
    finalize_batch(prepared, cache, fingerprint)
}

/// Executes one shard's worth of planned queries; see [`run_batch`].
fn run_shard(
    shared: SharedInstance<'_>,
    items: &[BatchItem<'_>],
    work: Vec<PendingSlot>,
) -> ShardOutcome {
    let instance = shared.instance;
    let mut arena = Arena::new(instance.graph().n_edges());
    let mut deferred: Vec<(usize, GateId, bool, Route)> = Vec::new();
    let mut outcome = ShardOutcome {
        results: Vec::with_capacity(work.len()),
        gates: 0,
        circuit_batched: 0,
        general_solved: 0,
    };
    let connected = shared.ic().is_connected();
    for pending in work {
        let opts = items[pending.item_idx].opts;
        // The shared-arena fast path: circuit-compilable plans on a
        // connected instance, when no provenance handle was requested
        // (handles own their circuit, so they compile separately).
        if connected && !opts.want_provenance {
            match &pending.planned.plan {
                Plan::Prop411 { effective } => {
                    if let Some(root) =
                        lineage_circuits::match_into_2wp(&mut arena, effective, instance.graph())
                    {
                        deferred.push((pending.slot, root, false, Route::Prop411));
                        outcome.circuit_batched += 1;
                        continue;
                    }
                }
                Plan::Prop410 => {
                    if let Some(root) = lineage_circuits::fail_into_dwt(
                        &mut arena,
                        &pending.planned.absorbed,
                        instance.graph(),
                    ) {
                        deferred.push((pending.slot, root, true, Route::Prop410));
                        outcome.circuit_batched += 1;
                        continue;
                    }
                }
                _ => {}
            }
        }
        // General path: finish the plan exactly as `solve_with` does.
        let answer = finish_plan(
            items[pending.item_idx].query,
            pending.planned,
            &shared,
            opts,
        );
        outcome.general_solved += 1;
        outcome.results.push((pending.slot, answer));
    }
    outcome.gates = arena.n_gates();
    // One multi-root engine pass answers every deferred query.
    if !deferred.is_empty() {
        let roots: Vec<GateId> = deferred.iter().map(|&(_, root, _, _)| root).collect();
        let values = arena.probability_many_with(&roots, instance.probs(), &mut EvalScratch::new());
        for ((slot, _, negated, route), value) in deferred.into_iter().zip(values) {
            let probability = if negated { value.one_minus() } else { value };
            outcome.results.push((
                slot,
                Ok(Solution {
                    probability,
                    route,
                    provenance: None,
                }),
            ));
        }
    }
    outcome
}

/// The legacy `solve_many*` core: uniform options, caller-owned cache,
/// single shard. Kept so the deprecated shims in [`crate::batch`] stay
/// bit-identical to their historical behavior.
pub(crate) fn legacy_batch(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
    cache: Option<&mut EvalCache>,
) -> (Vec<Result<Solution, Hardness>>, BatchStats) {
    let state = InstanceState::new(instance);
    let shared = SharedInstance::new(instance, &state);
    let items: Vec<BatchItem> = queries
        .iter()
        .map(|query| BatchItem { query, opts })
        .collect();
    let fingerprint = if cache.is_some() {
        instance_fingerprint(instance)
    } else {
        0 // never read: the cache is what consumes the fingerprint
    };
    run_batch(shared, &items, cache, fingerprint, 1)
}

/// Runs `n` independent jobs on up to `threads` scoped workers,
/// returning job `i`'s output in slot `i` (deterministic regardless of
/// scheduling).
fn run_jobs<T: Send>(threads: usize, n: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let job = &job;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut acc = Vec::new();
                    let mut i = w;
                    while i < n {
                        acc.push((i, job(i)));
                        i += workers;
                    }
                    acc
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("job worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::Label;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn twp_instance(seed: u64) -> ProbGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate::with_probabilities(
            generate::two_way_path(8, 2, &mut rng),
            ProbProfile::default(),
            &mut rng,
        )
    }

    #[test]
    fn engine_solve_matches_legacy_and_caches() {
        let h = twp_instance(0xE1);
        let q = Graph::one_way_path(&[Label(0), Label(1)]);
        let engine = Engine::new(h.clone());
        let sol = engine.solve(&q).unwrap();
        #[allow(deprecated)]
        let legacy = crate::solve(&q, &h).unwrap();
        assert_eq!(sol.probability, legacy.probability);
        assert_eq!(sol.route, legacy.route);
        let _ = engine.solve(&q).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn request_builder_reshapes_and_overrides() {
        let q = Graph::directed_path(1);
        let req = Request::probability(q.clone())
            .with_provenance()
            .fallback(Fallback::BruteForce { max_uncertain: 4 });
        let opts = req.resolved_options(SolverOptions::default());
        assert!(opts.want_provenance);
        assert!(matches!(
            opts.fallback,
            Fallback::BruteForce { max_uncertain: 4 }
        ));
        assert!(matches!(
            Request::probability(q.clone()).counting().kind,
            RequestKind::Counting(_)
        ));
        assert!(matches!(
            Request::probability(q).sensitivity().kind,
            RequestKind::Sensitivity(_)
        ));
    }

    #[test]
    #[should_panic(expected = "single-query requests")]
    fn counting_a_ucq_panics() {
        let _ = Request::ucq(Ucq::new(vec![])).counting();
    }

    #[test]
    fn run_jobs_is_order_preserving() {
        for threads in [1, 2, 5] {
            let got = run_jobs(threads, 13, |i| i * i);
            assert_eq!(got, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_jobs(4, 0, |i| i).is_empty());
    }

    #[test]
    fn fleet_routes_by_fingerprint_and_shares_cache() {
        let h1 = twp_instance(1);
        let h2 = twp_instance(2);
        let mut fleet = Fleet::with_cache_capacity(64);
        let fp1 = fleet.register(h1.clone());
        let fp2 = fleet.register(h2);
        assert_ne!(fp1, fp2);
        assert_eq!(fleet.len(), 2);
        let q = Graph::one_way_path(&[Label(0)]);
        let r1 = fleet
            .submit(fp1, &[Request::probability(q.clone())])
            .unwrap();
        let r2 = fleet
            .submit(fp2, &[Request::probability(q.clone())])
            .unwrap();
        #[allow(deprecated)]
        let expect = crate::solve(&q, &h1).unwrap();
        assert_eq!(
            r1[0].as_ref().unwrap().probability().unwrap(),
            &expect.probability
        );
        // Different versions may answer differently; both are cached in
        // the one shared cache under distinct fingerprints.
        let _ = r2;
        assert_eq!(fleet.cache_stats().misses, 2);
        assert!(fleet.submit(fp1 ^ fp2 ^ 1, &[]).is_none());
        assert!(fleet.deregister(fp2));
        assert!(fleet.submit(fp2, &[]).is_none());
    }
}
