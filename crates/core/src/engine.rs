//! The session-oriented serving surface: a long-lived [`Engine`] per
//! probabilistic instance, typed [`Request`]s/[`Response`]s, sharded
//! batch submission, and a [`Fleet`] registry for serving many graph
//! versions at once.
//!
//! The paper's dichotomy makes query evaluation a *routing* problem —
//! every tractable `PHom` route ends in one engine pass — and a serving
//! process should pay the instance-side work (classification, label set,
//! the Lemma 3.7 split, the answer cache) **once per instance lifetime**,
//! not once per call. That is what `Engine` owns:
//!
//! * the [`ProbGraph`] instance plus its cached
//!   [`InstanceState`](crate::solver) (classification, labels, lazy
//!   component split);
//! * a **bounded LRU [`EvalCache`]** keyed by (instance fingerprint,
//!   options fingerprint, interned query) — see
//!   [`EngineBuilder::cache_capacity`];
//! * a **shard width** ([`EngineBuilder::threads`]): `submit` distributes
//!   the batch's unique, uncached queries across scoped worker threads.
//!
//! ## Sharding and bit-identical results
//!
//! Planning is pure reads over the shared state. Each shard compiles its
//! assigned circuit-compilable plans into its *own* lineage arena and
//! answers them with one multi-root engine pass; all other plans run the
//! exact per-query path. A query's compiled circuit — and therefore its
//! exact rational probability — does not depend on which arena it lands
//! in or on what else that arena holds (interning only deduplicates
//! structurally identical gates), so `submit` returns **bit-identical**
//! `Response`s for `threads = 1`, `threads = N`, and the legacy
//! `solve_many` path. The equivalence suite in `tests/engine_api.rs`
//! asserts exactly this.
//!
//! ## Quick start
//!
//! ```
//! use phom_core::{Engine, Request, Response};
//! use phom_graph::{Graph, GraphBuilder, Label, ProbGraph};
//! use phom_num::Rational;
//!
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//!
//! let engine = Engine::builder().cache_capacity(1024).build(h);
//! let batch = [
//!     Request::probability(Graph::one_way_path(&[r, s])),
//!     Request::probability(Graph::one_way_path(&[r])).with_provenance(),
//! ];
//! let answers = engine.submit(&batch);
//! let Ok(Response::Probability(sol)) = &answers[0] else { panic!() };
//! assert_eq!(sol.probability, Rational::from_ratio(3, 8));
//! assert_eq!(engine.cache_stats().misses, 2);
//! ```

use crate::algo::lineage_circuits;
use crate::batch::{
    instance_fingerprint, opts_fingerprint, BatchStats, CacheHandle, CacheKey, CacheKind,
    CacheStats, CachedAnswer, EvalCache, QueryKey,
};
use crate::sensitivity::{self, SensitivityRoute};
use crate::solver::{
    finish_plan, plan_query, solve_with_impl, Budget, Hardness, InstanceState, OnHard, Plan,
    Planned, Precision, SharedInstance, Solution, SolveError, SolverOptions,
};
use crate::ucq::{Ucq, UcqRoute};
use crate::{counting, Fallback, Route};
use phom_graph::{Graph, ProbGraph};
use phom_lineage::engine::{Arena, EvalScratch, GateId};
use phom_lineage::fxhash::{FxHashMap, FxHasher};
use phom_lineage::{FlatArena, WorkMeter};
use phom_num::{ErrF64, Natural, Rational, Weight};
use rand::SeedableRng;
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------

/// A typed unit of work for [`Engine::submit`], unifying the historical
/// per-module entry points (`solve*`, `counting`, `sensitivity`, `ucq`)
/// behind one builder.
///
/// Construct with [`Request::probability`] or [`Request::ucq`], reshape
/// with [`counting`](Request::counting) / [`sensitivity`](Request::sensitivity),
/// and tune with [`with_provenance`](Request::with_provenance) /
/// [`fallback`](Request::fallback) / [`options`](Request::options).
/// Unset knobs inherit the engine's
/// [`default_options`](EngineBuilder::default_options).
#[derive(Clone, Debug)]
pub struct Request {
    kind: RequestKind,
    overrides: Overrides,
}

#[derive(Clone, Debug)]
enum RequestKind {
    Probability(Graph),
    Counting(Graph),
    Sensitivity(Graph),
    Ucq(Ucq),
}

#[derive(Clone, Copy, Debug, Default)]
struct Overrides {
    /// Full replacement of the engine defaults, applied before the
    /// per-field overrides below.
    options: Option<SolverOptions>,
    fallback: Option<Fallback>,
    want_provenance: Option<bool>,
    precision: Option<Precision>,
    budget: Option<Budget>,
    on_hard: Option<OnHard>,
    /// Absolute expiry, anchored when [`Request::deadline`] was called
    /// (request construction = arrival). Deliberately *not* part of the
    /// resolved [`SolverOptions`]: a deadline is relative to wall-clock
    /// arrival and never fragments the answer cache.
    deadline_at: Option<Instant>,
    /// Observability trace id minted at the front door. Like
    /// `deadline_at`, *not* part of the resolved [`SolverOptions`]:
    /// a trace id is per-request metadata and never fragments the
    /// answer cache.
    trace: Option<u64>,
}

/// Which of the serving runtime's two priority lanes a request rides,
/// derived from its route class at admission: cheap exact plans take
/// the fast lane and never queue behind sampling, estimation, or
/// float-escalation jobs in the slow lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Exact probability work with no sampling possibility: bounded,
    /// predictable tick cost.
    Fast,
    /// Everything that may sample, estimate, escalate, or run a
    /// non-probability pipeline (counting / sensitivity / UCQ).
    Slow,
}

impl Request {
    /// `Pr(G ⇝ H)`: the core probability query. Answered through the
    /// engine's interned/cached/sharded batch path.
    pub fn probability(query: Graph) -> Self {
        Request {
            kind: RequestKind::Probability(query),
            overrides: Overrides::default(),
        }
    }

    /// A union of conjunctive queries: `Pr(G₁ ∨ … ∨ G_r ⇝ H)`.
    pub fn ucq(ucq: Ucq) -> Self {
        Request {
            kind: RequestKind::Ucq(ucq),
            overrides: Overrides::default(),
        }
    }

    /// Reshape into a model-counting request: the number of worlds (over
    /// the instance's all-½ uncertain edges) in which the query holds.
    ///
    /// # Panics
    /// When called on a UCQ request (counting is defined per query graph).
    pub fn counting(self) -> Self {
        Request {
            kind: RequestKind::Counting(self.query_graph("counting")),
            overrides: self.overrides,
        }
    }

    /// Reshape into a sensitivity request: all edge influences
    /// `∂ Pr / ∂ π(e)`.
    ///
    /// # Panics
    /// When called on a UCQ request.
    pub fn sensitivity(self) -> Self {
        Request {
            kind: RequestKind::Sensitivity(self.query_graph("sensitivity")),
            overrides: self.overrides,
        }
    }

    /// Ask the solver to attach a [`Provenance`](phom_lineage::Provenance)
    /// handle on routes that can compile one.
    pub fn with_provenance(mut self) -> Self {
        self.overrides.want_provenance = Some(true);
        self
    }

    /// Configure the hard-cell fallback for this request.
    pub fn fallback(mut self, fallback: Fallback) -> Self {
        self.overrides.fallback = Some(fallback);
        self
    }

    /// Pick the evaluation tier for this request — see [`Precision`].
    /// Float-tier answers arrive as [`Response::Approximate`].
    pub fn precision(mut self, precision: Precision) -> Self {
        self.overrides.precision = Some(precision);
        self
    }

    /// Replace the engine's default [`SolverOptions`] wholesale for this
    /// request (the chained per-field overrides still apply on top).
    pub fn options(mut self, options: SolverOptions) -> Self {
        self.overrides.options = Some(options);
        self
    }

    /// Give this request a deadline, anchored **now** (request
    /// construction = arrival). The serving runtime sheds the request
    /// with [`SolveError::DeadlineExceeded`] if it expires while
    /// queued, and cooperative [`WorkMeter`] checkpoints inside the
    /// circuit evaluators and the sampler enforce it mid-evaluation.
    pub fn deadline(self, after: Duration) -> Self {
        self.deadline_at(Instant::now() + after)
    }

    /// As [`deadline`](Request::deadline), with an explicit absolute
    /// expiry (for callers that anchored arrival themselves).
    pub fn deadline_at(mut self, at: Instant) -> Self {
        self.overrides.deadline_at = Some(match self.overrides.deadline_at {
            Some(prev) => prev.min(at),
            None => at,
        });
        self
    }

    /// Cap this request's work — see [`Budget`]. Tripped caps surface
    /// as [`SolveError::BudgetExceeded`] (or a truncated
    /// [`Response::Estimate`] on the estimate path).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.overrides.budget = Some(budget);
        self
    }

    /// Pick the hard-cell degradation policy — see [`OnHard`]. With
    /// [`OnHard::Estimate`], a #P-hard cell answers a budgeted
    /// Monte-Carlo [`Response::Estimate`] instead of
    /// [`SolveError::Hard`].
    pub fn on_hard(mut self, on_hard: OnHard) -> Self {
        self.overrides.on_hard = Some(on_hard);
        self
    }

    /// The absolute deadline set via [`deadline`](Request::deadline) /
    /// [`deadline_at`](Request::deadline_at), if any. The serving
    /// runtime reads this to shed expired-in-queue requests at flush.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.overrides.deadline_at
    }

    /// Tag this request with an observability trace id (normally minted
    /// at the front door — net server or fleet router — and carried in
    /// the wire frame's optional `"trace"` field). The serving runtime
    /// records per-stage spans under this id; it does not affect
    /// solving or caching.
    pub fn trace(mut self, id: u64) -> Self {
        self.overrides.trace = Some(id);
        self
    }

    /// The trace id set via [`trace`](Request::trace), if any.
    pub fn trace_id(&self) -> Option<u64> {
        self.overrides.trace
    }

    /// The priority [`Lane`] this request rides in the serving
    /// runtime's tick scheduler, derived from its route class under
    /// `default` options: probability requests that stay exact and
    /// cannot sample are [`Lane::Fast`]; anything that may sample,
    /// estimate, or escalate — Monte-Carlo fallbacks,
    /// [`OnHard::Estimate`], float precision tiers, counting,
    /// sensitivity, UCQs — is [`Lane::Slow`].
    pub fn lane(&self, default: SolverOptions) -> Lane {
        if !matches!(self.kind, RequestKind::Probability(_)) {
            return Lane::Slow;
        }
        let opts = self.resolved_options(default);
        let may_sample = matches!(opts.fallback, Fallback::MonteCarlo { .. })
            || opts.on_hard == OnHard::Estimate;
        if opts.precision.is_exact() && !may_sample {
            Lane::Fast
        } else {
            Lane::Slow
        }
    }

    fn query_graph(&self, what: &str) -> Graph {
        match &self.kind {
            RequestKind::Probability(q)
            | RequestKind::Counting(q)
            | RequestKind::Sensitivity(q) => q.clone(),
            RequestKind::Ucq(_) => {
                panic!("Request::{what}() applies to single-query requests, not UCQs")
            }
        }
    }

    fn resolved_options(&self, default: SolverOptions) -> SolverOptions {
        let mut opts = self.overrides.options.unwrap_or(default);
        if let Some(f) = self.overrides.fallback {
            opts.fallback = f;
        }
        if let Some(w) = self.overrides.want_provenance {
            opts.want_provenance = w;
        }
        if let Some(p) = self.overrides.precision {
            opts.precision = p;
        }
        if let Some(b) = self.overrides.budget {
            opts.budget = b;
        }
        if let Some(h) = self.overrides.on_hard {
            opts.on_hard = h;
        }
        opts
    }
}

/// The typed answer to a [`Request`].
#[derive(Clone, Debug)]
pub enum Response {
    /// The answer to a [`Request::probability`] request.
    Probability(Solution),
    /// A float-tier probability answer
    /// ([`Precision::Float`] / [`Precision::Auto`] requests): the
    /// value plus a rigorous upper bound on its relative error,
    /// accumulated through every gate of the lineage evaluation.
    Approximate {
        /// `Pr(G ⇝ H)` as evaluated over `f64`.
        value: f64,
        /// Certified upper bound on `|value − exact| / exact`
        /// (infinite when the value itself rounded to zero).
        rel_err_bound: f64,
        /// The algorithm that produced it.
        route: Route,
    },
    /// The answer to a counting request.
    Count {
        /// Worlds (over the uncertain edges) in which the query holds.
        worlds: Natural,
        /// The number of uncertain edges (worlds range over `2^this`).
        uncertain_edges: usize,
    },
    /// The answer to a sensitivity request.
    Sensitivity {
        /// `∂ Pr / ∂ π(e)` per instance edge.
        influences: Vec<Rational>,
        /// How the influences were obtained.
        route: SensitivityRoute,
    },
    /// The answer to a [`Request::ucq`] request.
    Ucq {
        /// `Pr(G₁ ∨ … ∨ G_r ⇝ H)`.
        probability: Rational,
        /// The tractable UCQ route taken.
        route: UcqRoute,
    },
    /// A budgeted Monte-Carlo confidence interval: the degraded answer
    /// for a #P-hard cell under [`OnHard::Estimate`]. The interval is a
    /// 95% normal-approximation CI around the sampled hit rate; when a
    /// deadline or time budget tripped mid-run, `samples` is the
    /// truncated count and the interval is honestly wider (the
    /// *anytime* contract — partial work is still a certified answer).
    Estimate {
        /// Lower end of the 95% confidence interval (clamped to `[0, 1]`).
        lo: f64,
        /// Upper end of the 95% confidence interval (clamped to `[0, 1]`).
        hi: f64,
        /// Worlds actually sampled (≤ the budgeted count).
        samples: u64,
        /// The sampling route taken ([`Route::MonteCarlo`]).
        route: Route,
    },
}

impl Response {
    /// The [`Solution`] of a probability response.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Response::Probability(sol) => Some(sol),
            _ => None,
        }
    }

    /// The probability of a probability or UCQ response.
    pub fn probability(&self) -> Option<&Rational> {
        match self {
            Response::Probability(sol) => Some(&sol.probability),
            Response::Ucq { probability, .. } => Some(probability),
            _ => None,
        }
    }

    /// The value and certified relative-error bound of an
    /// [`Approximate`](Response::Approximate) response.
    pub fn approximate(&self) -> Option<(f64, f64)> {
        match self {
            Response::Approximate {
                value,
                rel_err_bound,
                ..
            } => Some((*value, *rel_err_bound)),
            _ => None,
        }
    }

    /// The `(lo, hi, samples)` of an [`Estimate`](Response::Estimate)
    /// response.
    pub fn estimate(&self) -> Option<(f64, f64, u64)> {
        match self {
            Response::Estimate {
                lo, hi, samples, ..
            } => Some((*lo, *hi, *samples)),
            _ => None,
        }
    }

    /// Any probability-shaped answer as an `f64` — exact responses are
    /// converted (correctly rounded), approximate ones return their
    /// carried value, estimates their interval midpoint.
    pub fn value_f64(&self) -> Option<f64> {
        match self {
            Response::Probability(sol) => Some(sol.probability.to_f64()),
            Response::Approximate { value, .. } => Some(*value),
            Response::Ucq { probability, .. } => Some(probability.to_f64()),
            Response::Estimate { lo, hi, .. } => Some((lo + hi) / 2.0),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Configuration for a long-lived [`Engine`].
#[derive(Clone)]
pub struct EngineBuilder {
    cache_capacity: usize,
    threads: usize,
    default_options: SolverOptions,
    shared_cache: Option<CacheHandle>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder::new()
    }
}

impl EngineBuilder {
    /// Defaults: unbounded cache, one shard, default [`SolverOptions`].
    pub fn new() -> Self {
        EngineBuilder {
            cache_capacity: usize::MAX,
            threads: 1,
            default_options: SolverOptions::default(),
            shared_cache: None,
        }
    }

    /// Bound the engine's [`EvalCache`] to `n` answers (LRU eviction).
    /// Ignored when the engine joins a shared cache
    /// ([`shared_cache`](EngineBuilder::shared_cache) / [`Fleet`]) —
    /// the shared handle carries the bound.
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Shard width for [`Engine::submit`]: unique uncached queries are
    /// distributed across `k` scoped worker threads. `1` keeps the
    /// historical sequential path (one shared arena across the whole
    /// batch); `0` resolves to the machine's available parallelism.
    /// Results are bit-identical for every width.
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k;
        self
    }

    /// The [`SolverOptions`] applied to requests that don't override
    /// them.
    pub fn default_options(mut self, options: SolverOptions) -> Self {
        self.default_options = options;
        self
    }

    /// Joins an existing shared answer cache: the engine probes and
    /// fills `cache` instead of allocating its own, so many engines
    /// (a [`Fleet`], a `phom_serve::Runtime`) compete for one bounded
    /// LRU capacity. Cache keys embed the instance fingerprint — answers
    /// never leak across versions.
    pub fn shared_cache(mut self, cache: CacheHandle) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Builds the engine: classifies the instance, computes its
    /// fingerprint, and allocates the cache.
    pub fn build(self, instance: ProbGraph) -> Engine {
        let state = InstanceState::new(&instance);
        let fingerprint = instance_fingerprint(&instance);
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        };
        let cache = self
            .shared_cache
            .unwrap_or_else(|| CacheHandle::with_capacity(self.cache_capacity));
        Engine {
            instance,
            state,
            fingerprint,
            cache,
            threads,
            default_options: self.default_options,
        }
    }
}

/// A long-lived serving handle for one probabilistic instance: owns the
/// instance-side state, a bounded answer cache, and the sharded submit
/// loop. See the [module docs](self) for the full story.
///
/// `Engine` is `Sync`: one engine can serve `submit` calls from many
/// threads (the cache is internally locked; everything else is read-only
/// after construction).
pub struct Engine {
    instance: ProbGraph,
    state: InstanceState,
    fingerprint: u64,
    cache: CacheHandle,
    threads: usize,
    default_options: SolverOptions,
}

impl Engine {
    /// An engine with default configuration (unbounded cache, one shard).
    pub fn new(instance: ProbGraph) -> Self {
        EngineBuilder::new().build(instance)
    }

    /// Starts a configuration.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The served instance.
    pub fn instance(&self) -> &ProbGraph {
        &self.instance
    }

    /// The instance's content fingerprint
    /// ([`instance_fingerprint`]) — the routing key inside a [`Fleet`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The configured shard width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The options requests inherit when they don't override them.
    pub fn default_options(&self) -> SolverOptions {
        self.default_options
    }

    /// Counters and size of the engine's answer cache. For a fleet
    /// member these describe the *shared* cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Drops every cached answer (lifetime counters are kept — see
    /// [`EvalCache::clear`]).
    pub fn clear_cache(&self) {
        self.lock_cache().clear();
    }

    /// A cloneable handle to the engine's answer cache, for building
    /// further engines on the *same* cache
    /// ([`EngineBuilder::shared_cache`]).
    pub fn cache_handle(&self) -> CacheHandle {
        self.cache.clone()
    }

    /// The cache lock (poison-recovering — see [`CacheHandle`]).
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, EvalCache> {
        self.cache.lock()
    }

    /// One-shot convenience: a single probability query under the engine
    /// defaults, through the same cache the batch path uses.
    pub fn solve(&self, query: &Graph) -> Result<Solution, SolveError> {
        let mut answers = self.submit(&[Request::probability(query.clone())]);
        match answers.pop().expect("one request in") {
            Ok(Response::Probability(sol)) => Ok(sol),
            // Float-tier engine defaults: fold the approximate value into
            // the historical `Solution` shape (dyadic rational).
            Ok(Response::Approximate { value, route, .. }) => Ok(Solution {
                probability: crate::solver::dyadic_from_f64(value),
                route,
                provenance: None,
            }),
            Ok(other) => unreachable!("probability request answered as {other:?}"),
            Err(e) => Err(e),
        }
    }

    /// Answers a batch of requests, preserving order. Probability
    /// requests are interned, served from the cache where possible, and
    /// sharded across the configured worker threads; counting,
    /// sensitivity, and UCQ requests run as independent jobs on the same
    /// workers.
    ///
    /// The cache lock is held only for the (cheap) probe and fill
    /// phases, never across planning or solving — concurrent `submit`
    /// calls against one engine (or one fleet) overlap their solve work.
    /// Two concurrent misses of the same query may both solve it; the
    /// second insert is a no-op.
    ///
    /// A panic while solving (a worker bug, a malformed plan) is
    /// **contained**: the affected requests answer
    /// `Err(SolveError::Internal)`, every other request in the batch is
    /// unaffected, and the engine — including its cache — stays
    /// serviceable.
    pub fn submit(&self, requests: &[Request]) -> Vec<Result<Response, SolveError>> {
        self.submit_stats(requests).0
    }

    /// As [`submit`](Engine::submit), returning the [`BatchStats`] of the
    /// probability sub-batch alongside the responses.
    pub fn submit_stats(
        &self,
        requests: &[Request],
    ) -> (Vec<Result<Response, SolveError>>, BatchStats) {
        let config = TickConfig {
            shards: self.threads,
            share_arena_at: None,
        };
        let mut tick = plan_tick(self, requests, &config);
        let units = std::mem::take(&mut tick.units);
        let outputs = run_units_scoped(self, units, self.threads);
        finish_tick(self, tick, outputs)
    }

    /// One non-probability request (counting / sensitivity / UCQ),
    /// served through the engine's answer cache under a kind-tagged key:
    /// deterministic outcomes — answers, typed hardness, validation
    /// errors — are cached; transient failures (worker panics) never
    /// are.
    fn run_request(&self, request: &Request) -> Result<Response, SolveError> {
        let opts = request.resolved_options(self.default_options);
        let key = self.request_cache_key(request, &opts);
        if let Some(key) = &key {
            let cached = {
                let mut guard = self.lock_cache();
                match guard.get(key) {
                    Some(CachedAnswer::Response(r)) => Some(r.clone()),
                    _ => None,
                }
            };
            if let Some(response) = cached {
                return response;
            }
        }
        // Pre-work deadline checkpoint: a cache hit above is served
        // regardless (instant), but an expired request never starts
        // uncached work.
        if let Some(at) = request.overrides.deadline_at {
            if Instant::now() >= at {
                return Err(SolveError::DeadlineExceeded);
            }
        }
        let result = self.run_request_uncached(request, opts);
        if let Some(key) = key {
            // Deterministic outcomes only: transient failures and the
            // time-relative limit errors (another run may finish in
            // budget) never poison the cache. Estimates are cached —
            // their seed is derived from the query, so re-runs are
            // deterministic — unless a time cap truncated the run.
            let time_capped = request.overrides.deadline_at.is_some() || opts.budget.time.is_some();
            let transient = matches!(
                result,
                Err(SolveError::Internal(_)
                    | SolveError::Overloaded { .. }
                    | SolveError::Cancelled
                    | SolveError::DeadlineExceeded
                    | SolveError::BudgetExceeded { .. })
            ) || (time_capped && matches!(result, Ok(Response::Estimate { .. })));
            if !transient {
                self.lock_cache()
                    .insert(key, CachedAnswer::Response(result.clone()));
            }
        }
        result
    }

    /// The kind-tagged cache key of a non-probability request (`None`
    /// for probability requests — the batch path interns those itself).
    fn request_cache_key(&self, request: &Request, opts: &SolverOptions) -> Option<CacheKey> {
        let (kind, query) = match &request.kind {
            RequestKind::Probability(_) => return None,
            RequestKind::Counting(q) => (CacheKind::Counting, QueryKey::new(q)),
            RequestKind::Sensitivity(q) => (CacheKind::Sensitivity, QueryKey::new(q)),
            RequestKind::Ucq(u) => (CacheKind::Ucq, QueryKey::of_many(u.disjuncts())),
        };
        Some(CacheKey {
            instance: self.fingerprint,
            opts: opts_fingerprint(opts),
            kind,
            query,
        })
    }

    /// The uncached core of [`run_request`](Engine::run_request). The
    /// counting and UCQ paths reuse the engine's cached instance state —
    /// no per-request re-classification.
    fn run_request_uncached(
        &self,
        request: &Request,
        opts: SolverOptions,
    ) -> Result<Response, SolveError> {
        let shared = SharedInstance::new(&self.instance, &self.state);
        match &request.kind {
            RequestKind::Probability(_) => unreachable!("handled by the batch path"),
            RequestKind::Counting(query) => {
                match counting::count_satisfying_worlds_shared(query, &shared, opts) {
                    Ok(worlds) => Ok(Response::Count {
                        worlds,
                        uncertain_edges: self.instance.uncertain_edges().len(),
                    }),
                    Err(counting::CountError::NotUnweighted { edge }) => {
                        Err(SolveError::InvalidQuery(format!(
                            "counting requires all-½ uncertain probabilities; \
                             edge {edge} has probability {}",
                            self.instance.prob(edge)
                        )))
                    }
                    Err(counting::CountError::Hard(h)) => Err(SolveError::Hard(h)),
                }
            }
            RequestKind::Sensitivity(query) => self.run_sensitivity(query, opts),
            RequestKind::Ucq(ucq) => self.run_ucq(ucq, &shared, opts),
        }
    }

    /// A UCQ request: the tractable routes first (on the engine's cached
    /// instance state), then the request's configured fallback (mirroring
    /// the probability path's hard-cell handling), then typed hardness.
    fn run_ucq(
        &self,
        ucq: &Ucq,
        shared: &SharedInstance<'_>,
        opts: SolverOptions,
    ) -> Result<Response, SolveError> {
        if let Some((probability, route)) = crate::ucq::probability_shared::<Rational>(ucq, shared)
        {
            return Ok(Response::Ucq { probability, route });
        }
        match opts.fallback {
            Fallback::BruteForce { max_uncertain }
                if self.instance.uncertain_edges().len() <= max_uncertain =>
            {
                Ok(Response::Ucq {
                    probability: crate::ucq::bruteforce_probability(ucq, &self.instance),
                    route: UcqRoute::BruteForce,
                })
            }
            Fallback::MonteCarlo { samples, seed } if opts.budget.samples != Some(0) => {
                let samples = match opts.budget.samples {
                    Some(limit) => samples.min(limit),
                    None => samples,
                };
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let est = crate::montecarlo::estimate_ucq(ucq, &self.instance, samples, &mut rng);
                Ok(Response::Ucq {
                    probability: crate::solver::dyadic_from_f64(est.mean),
                    route: UcqRoute::MonteCarlo { samples },
                })
            }
            // Hard UCQ cell: degrade to a budgeted interval when the
            // request opted in, mirroring the probability path.
            _ if opts.on_hard == OnHard::Estimate => {
                let samples = opts.budget.samples.unwrap_or(DEFAULT_ESTIMATE_SAMPLES);
                let mut meter = opts.budget.arm(WorkMeter::unbounded());
                let mut rng = rand::rngs::SmallRng::seed_from_u64(ucq_estimate_seed(ucq));
                let (est, _stop) = crate::montecarlo::estimate_ucq_metered(
                    ucq,
                    &self.instance,
                    samples,
                    &mut rng,
                    &mut meter,
                )
                .map_err(SolveError::from_meter)?;
                Ok(Response::Estimate {
                    lo: (est.mean - est.ci95).max(0.0),
                    hi: (est.mean + est.ci95).min(1.0),
                    samples: est.samples,
                    route: Route::MonteCarlo {
                        samples: est.samples,
                        ci95_times_1e9: (est.ci95 * 1e9) as u64,
                    },
                })
            }
            _ => Err(SolveError::Hard(Hardness {
                prop: "beyond the tractable UCQ routes",
                cell: format!("{}-disjunct UCQ on this instance shape", ucq.len()),
            })),
        }
    }

    /// All edge influences: the engine gradient sweep when a circuit
    /// route applies, otherwise exact conditioning (`2·|E|` dispatcher
    /// solves — the request's fallback applies to each, and hardness
    /// propagates).
    fn run_sensitivity(&self, query: &Graph, opts: SolverOptions) -> Result<Response, SolveError> {
        if let Some((influences, route)) =
            sensitivity::influences::<Rational>(query, &self.instance)
        {
            return Ok(Response::Sensitivity { influences, route });
        }
        let influences = sensitivity::try_influences_by_conditioning::<Rational, SolveError>(
            &self.instance,
            |pinned| Ok(solve_with_impl(query, pinned, opts)?.probability),
        )?;
        Ok(Response::Sensitivity {
            influences,
            route: SensitivityRoute::Conditioning,
        })
    }
}

// ---------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------

/// A registry of [`Engine`]s keyed by [`instance_fingerprint`], for
/// processes serving **many graph versions** at once (the ROADMAP's
/// cross-instance item). All member engines share **one** bounded
/// [`EvalCache`] — the cache key embeds the instance fingerprint, so
/// answers never leak across versions while hot versions compete for the
/// same capacity.
///
/// ```
/// use phom_core::{Fleet, Request, Response};
/// use phom_graph::{Graph, ProbGraph};
/// use phom_num::Rational;
///
/// let mut fleet = Fleet::with_cache_capacity(4096);
/// let v1 = ProbGraph::new(Graph::directed_path(2), vec![
///     Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)]);
/// let fp = fleet.register(v1);
/// let answers = fleet
///     .submit(fp, &[Request::probability(Graph::directed_path(1))])
///     .expect("registered version");
/// assert_eq!(
///     answers[0].as_ref().unwrap().probability(),
///     Some(&Rational::from_ratio(3, 4)),
/// );
/// ```
pub struct Fleet {
    cache: CacheHandle,
    engines: FxHashMap<u64, Engine>,
    threads: usize,
    default_options: SolverOptions,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new()
    }
}

impl Fleet {
    /// An empty fleet with an unbounded shared cache.
    pub fn new() -> Self {
        Fleet::with_cache_capacity(usize::MAX)
    }

    /// An empty fleet whose members share one cache bounded to
    /// `capacity` answers (LRU across *all* served instances).
    pub fn with_cache_capacity(capacity: usize) -> Self {
        Fleet {
            cache: CacheHandle::with_capacity(capacity),
            engines: FxHashMap::default(),
            threads: 1,
            default_options: SolverOptions::default(),
        }
    }

    /// Shard width applied to engines registered from now on.
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k;
        self
    }

    /// Default [`SolverOptions`] applied to engines registered from now
    /// on.
    pub fn default_options(mut self, options: SolverOptions) -> Self {
        self.default_options = options;
        self
    }

    /// Registers an instance version, building its engine on the shared
    /// cache, and returns its routing fingerprint. Re-registering an
    /// identical instance replaces the engine (same fingerprint, same
    /// cached answers).
    pub fn register(&mut self, instance: ProbGraph) -> u64 {
        let engine = EngineBuilder::new()
            .threads(self.threads)
            .default_options(self.default_options)
            .shared_cache(self.cache.clone())
            .build(instance);
        let fingerprint = engine.fingerprint();
        self.engines.insert(fingerprint, engine);
        fingerprint
    }

    /// Removes a served version, freeing its engine (its cached answers
    /// age out of the shared cache naturally).
    pub fn deregister(&mut self, fingerprint: u64) -> bool {
        self.engines.remove(&fingerprint).is_some()
    }

    /// The engine serving `fingerprint`, if registered.
    pub fn engine(&self, fingerprint: u64) -> Option<&Engine> {
        self.engines.get(&fingerprint)
    }

    /// Routes a batch to the engine serving `fingerprint`; `None` when no
    /// such version is registered.
    pub fn submit(
        &self,
        fingerprint: u64,
        requests: &[Request],
    ) -> Option<Vec<Result<Response, SolveError>>> {
        Some(self.engine(fingerprint)?.submit(requests))
    }

    /// Registered versions.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True iff no version is registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The routing fingerprints of every registered version.
    pub fn fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.engines.keys().copied()
    }

    /// Counters and size of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A cloneable handle to the fleet's shared cache (for building
    /// further engines or runtimes on the same capacity).
    pub fn cache_handle(&self) -> CacheHandle {
        self.cache.clone()
    }

    /// Drops every cached answer across all served versions.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

// ---------------------------------------------------------------------
// The batch core (shared by Engine::submit and the legacy shims)
// ---------------------------------------------------------------------

/// One probability query with its resolved options.
struct BatchItem<'q> {
    query: &'q Graph,
    opts: SolverOptions,
    /// Absolute expiry, when the request carries a deadline. Deadline'd
    /// items are never interned together (each gets its own slot) and
    /// run the solo metered path instead of a deferred batch pass.
    deadline_at: Option<Instant>,
}

/// A unique cache miss recorded during the probe phase, before planning.
struct MissSlot {
    slot: usize,
    item_idx: usize,
}

/// A planned-but-unsolved unique query, ready for a shard. Owns its
/// query and options (no borrows), so a shard can cross a thread or
/// channel boundary — the `Send` handoff the persistent worker pools in
/// `phom_serve` are built on.
struct PendingSlot {
    slot: usize,
    query: Graph,
    opts: SolverOptions,
    planned: Planned,
    deadline_at: Option<Instant>,
}

impl PendingSlot {
    /// True iff this slot needs cooperative [`WorkMeter`] checkpoints —
    /// a deadline or any budget cap. Metered slots run the solo path
    /// (own arena, fallible evaluation) and never join a deferred
    /// multi-root batch pass, whose single evaluation couldn't honor
    /// per-request limits.
    fn is_metered(&self) -> bool {
        self.deadline_at.is_some() || !self.opts.budget.is_unlimited()
    }
}

/// What one shard produced.
struct ShardOutcome {
    results: Vec<(usize, Result<Response, SolveError>)>,
    gates: usize,
    circuit_batched: usize,
    general_solved: usize,
    float_evaluated: usize,
    escalations: usize,
}

impl ShardOutcome {
    fn empty(capacity: usize) -> ShardOutcome {
        ShardOutcome {
            results: Vec::with_capacity(capacity),
            gates: 0,
            circuit_batched: 0,
            general_solved: 0,
            float_evaluated: 0,
            escalations: 0,
        }
    }

    fn lost(slots: Vec<usize>, message: String) -> ShardOutcome {
        ShardOutcome {
            results: slots
                .into_iter()
                .map(|slot| (slot, Err(SolveError::Internal(message.clone()))))
                .collect(),
            ..ShardOutcome::empty(0)
        }
    }
}

/// One circuit compiled into a shared arena, waiting for its partition's
/// multi-root evaluation pass: (unique slot, root gate, negated, route,
/// requested precision tier).
type DeferredRoot = (usize, GateId, bool, Route, Precision);

/// Reusable evaluation buffers for [`TickUnit::run_with`]: the exact
/// tier's cone-marking scratch and the float tier's value slab.
///
/// A persistent worker (one `phom_serve` pool thread) holds one
/// `WorkerScratch` for its lifetime and hands it to every unit it runs;
/// after warm-up the multi-root evaluation passes allocate nothing
/// beyond the returned answers. [`TickUnit::run`] is the
/// scratch-per-call convenience.
pub struct WorkerScratch {
    exact: EvalScratch<Rational>,
    float_values: Vec<ErrF64>,
}

impl Default for WorkerScratch {
    fn default() -> Self {
        WorkerScratch::new()
    }
}

impl WorkerScratch {
    /// Empty scratch; buffers grow to the arenas evaluated through it.
    pub fn new() -> Self {
        WorkerScratch {
            exact: EvalScratch::new(),
            float_values: Vec::new(),
        }
    }
}

/// One independent, owned unit of tick work: a shard of planned
/// probability queries, a partition of a **cross-shard shared arena**
/// (large ticks — every circuit compiled into one arena, each unit
/// evaluating its slice of the roots), or a single non-probability
/// request.
enum UnitWork {
    Shard(Vec<PendingSlot>),
    SharedEval {
        arena: Arc<Arena>,
        items: Vec<DeferredRoot>,
    },
    Single {
        index: usize,
        request: Box<Request>,
    },
}

/// The index-tagged output of one [`UnitWork`] — scheduling order never
/// affects where results land.
enum UnitOutput {
    Shard(ShardOutcome),
    Single {
        index: usize,
        result: Result<Response, SolveError>,
    },
}

/// A batch after the probe phase, awaiting planning, execution, and
/// cache fill. Splitting the phases lets [`Engine`] hold its cache lock
/// only around [`prepare_batch`] and [`finalize_batch`], never across
/// planning or the solve work in the units.
struct PreparedBatch {
    stats: BatchStats,
    /// Per unique slot: the answer, once known. Probability-batch slots
    /// hold `Response::Probability` (exact) or `Response::Approximate`
    /// (float tier) — never the other response kinds.
    slots: Vec<Option<Result<Response, SolveError>>>,
    /// Unique slots still to solve (not planned yet — planning runs in
    /// [`plan_pending`], outside any cache lock).
    pending: Vec<MissSlot>,
    /// Per unique slot: (first item idx, opts fingerprint, query key).
    unique: Vec<(usize, u64, QueryKey)>,
    /// Batch order → unique slot.
    slot_of_item: Vec<usize>,
}

/// The planned core of one micro-batch: the probability sub-batch after
/// intern → probe → plan, the independent work units (probability
/// shards first, then one unit per other request), and the layout
/// mapping unit outputs back to request order.
struct PlannedTick {
    n_requests: usize,
    /// Request index of each probability batch item (batch order).
    prob_req: Vec<usize>,
    /// Non-probability requests answered from the cache at plan time.
    served: Vec<(usize, Result<Response, SolveError>)>,
    prepared: PreparedBatch,
    units: Vec<UnitWork>,
}

/// How a tick splits its work across units — the knobs of the
/// [`Engine::begin_tick_with`] seam.
#[derive(Clone, Copy, Debug)]
pub struct TickConfig {
    /// Probability work is split across at most this many units.
    pub shards: usize,
    /// Cross-shard arena sharing: when at least this many unique,
    /// uncached probability queries must be solved, every
    /// circuit-compilable plan is compiled into **one** shared arena at
    /// plan time and the roots are partitioned across the shards (one
    /// multi-root pass per unit) — instead of each shard compiling its
    /// own arena. `None` keeps per-shard arenas always. Answers are
    /// bit-identical either way; sharing trades plan-time compilation
    /// for maximal gate interning across the whole tick.
    pub share_arena_at: Option<usize>,
}

impl Default for TickConfig {
    fn default() -> Self {
        TickConfig {
            shards: 1,
            share_arena_at: None,
        }
    }
}

/// Intern → cache probe → plan → shard: everything before execution.
/// The cache lock is held only around the probe; planning is pure reads
/// over the shared instance state and runs sequentially, so slot order
/// stays deterministic.
fn plan_tick(engine: &Engine, requests: &[Request], config: &TickConfig) -> PlannedTick {
    let shared = SharedInstance::new(&engine.instance, &engine.state);
    let mut prob_items: Vec<BatchItem> = Vec::new();
    let mut prob_req: Vec<usize> = Vec::new();
    let mut other_req: Vec<usize> = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        match &request.kind {
            RequestKind::Probability(query) => {
                prob_items.push(BatchItem {
                    query,
                    opts: request.resolved_options(engine.default_options),
                    deadline_at: request.overrides.deadline_at,
                });
                prob_req.push(i);
            }
            _ => other_req.push(i),
        }
    }
    let mut singles: Vec<UnitWork> = Vec::new();
    let mut served: Vec<(usize, Result<Response, SolveError>)> = Vec::new();
    let mut prepared = {
        let mut guard = engine.lock_cache();
        let prepared = prepare_batch(&prob_items, Some(&mut guard), engine.fingerprint);
        // Non-probability requests probe the cache at plan time too, so
        // a cached counting/sensitivity/UCQ answer produces no unit and
        // never queues behind a saturated (or panicking) pool.
        for &i in &other_req {
            let request = &requests[i];
            let opts = request.resolved_options(engine.default_options);
            if let Some(key) = engine.request_cache_key(request, &opts) {
                if let Some(CachedAnswer::Response(response)) = guard.get(&key) {
                    served.push((i, response.clone()));
                    continue;
                }
            }
            singles.push(UnitWork::Single {
                index: i,
                request: Box::new(request.clone()),
            });
        }
        prepared
    };
    let pending = plan_pending(shared, &prob_items, &mut prepared);
    // Large ticks on a connected instance may compile into one shared
    // arena; what does not compile falls through to per-shard units.
    let share = config
        .share_arena_at
        .is_some_and(|t| pending.len() >= t.max(1))
        && shared.ic().is_connected();
    let (shared_units, pending) = if share {
        split_shared_arena(shared, pending, config.shards, &mut prepared.stats)
    } else {
        (Vec::new(), pending)
    };
    let mut units = shard_units(pending, config.shards, &mut prepared.stats);
    units.extend(shared_units);
    units.extend(singles);
    PlannedTick {
        n_requests: requests.len(),
        prob_req,
        served,
        prepared,
        units,
    }
}

/// Fills the cache with the freshly solved probability slots and fans
/// every unit output back to request order. Outputs may arrive in any
/// order; a missing output surfaces as `Err(SolveError::Internal)` on
/// its requests rather than a panic — a serving loop must not die
/// because one unit was lost.
fn finish_tick(
    engine: &Engine,
    tick: PlannedTick,
    outputs: Vec<UnitOutput>,
) -> (Vec<Result<Response, SolveError>>, BatchStats) {
    let PlannedTick {
        n_requests,
        prob_req,
        served,
        mut prepared,
        units,
    } = tick;
    debug_assert!(units.is_empty(), "finish before running the units");
    let mut out: Vec<Option<Result<Response, SolveError>>> = Vec::new();
    out.resize_with(n_requests, || None);
    for (i, response) in served {
        out[i] = Some(response);
    }
    for output in outputs {
        match output {
            UnitOutput::Shard(outcome) => apply_shard(&mut prepared, outcome),
            UnitOutput::Single { index, result } => {
                count_degradations(&mut prepared.stats, &result);
                out[index] = Some(result);
            }
        }
    }
    let (prob_results, stats) = {
        let mut guard = engine.lock_cache();
        finalize_batch(prepared, Some(&mut guard), engine.fingerprint)
    };
    for (i, result) in prob_req.into_iter().zip(prob_results) {
        out[i] = Some(result);
    }
    let responses = out
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(SolveError::Internal("a work unit's output was lost".into()))
            })
        })
        .collect();
    (responses, stats)
}

/// Merges one shard's outcome into the prepared batch.
fn apply_shard(prepared: &mut PreparedBatch, outcome: ShardOutcome) {
    prepared.stats.shared_gates += outcome.gates;
    prepared.stats.circuit_batched += outcome.circuit_batched;
    prepared.stats.general_solved += outcome.general_solved;
    prepared.stats.float_evaluated += outcome.float_evaluated;
    prepared.stats.escalations += outcome.escalations;
    for (slot, answer) in outcome.results {
        count_degradations(&mut prepared.stats, &answer);
        prepared.slots[slot] = Some(answer);
    }
}

/// Folds one answer's degradation outcome (estimate / deadline /
/// budget) into the batch counters.
fn count_degradations(stats: &mut BatchStats, answer: &Result<Response, SolveError>) {
    match answer {
        Ok(Response::Estimate { .. }) => stats.estimates += 1,
        Err(SolveError::DeadlineExceeded) => stats.deadline_exceeded += 1,
        Err(SolveError::BudgetExceeded { .. }) => stats.budget_exceeded += 1,
        _ => {}
    }
}

/// Phase 1 of the batched probability core: intern the batch (one slot
/// per structurally distinct (options, query) pair), probe the cache,
/// and record every miss. Nothing heavier than hashing runs here — this
/// is the phase an [`Engine`] holds its cache lock around.
fn prepare_batch(
    items: &[BatchItem<'_>],
    mut cache: Option<&mut EvalCache>,
    fingerprint: u64,
) -> PreparedBatch {
    let mut stats = BatchStats {
        queries: items.len(),
        shards: 1,
        ..Default::default()
    };
    let mut slot_of_key: FxHashMap<(u64, QueryKey), usize> = FxHashMap::default();
    let mut unique: Vec<(usize, u64, QueryKey)> = Vec::new();
    let mut slot_of_item: Vec<usize> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let opts_fp = opts_fingerprint(&item.opts);
        let key = QueryKey::new(item.query);
        let next = unique.len();
        // Deadline'd items never share a slot: two identical queries
        // with different expiries must be sheddable independently (the
        // deadline is not in the options fingerprint, so the intern map
        // would otherwise conflate them). They still probe and are
        // probed *from* the same cache key.
        let slot = if item.deadline_at.is_some() {
            unique.push((i, opts_fp, key));
            next
        } else {
            *slot_of_key
                .entry((opts_fp, key.clone()))
                .or_insert_with(|| {
                    unique.push((i, opts_fp, key));
                    next
                })
        };
        slot_of_item.push(slot);
    }
    stats.unique_queries = unique.len();

    let mut slots: Vec<Option<Result<Response, SolveError>>> = Vec::new();
    slots.resize_with(unique.len(), || None);
    let mut pending: Vec<MissSlot> = Vec::new();
    for (slot, (item_idx, opts_fp, key)) in unique.iter().enumerate() {
        if let Some(c) = cache.as_deref_mut() {
            let ckey = CacheKey {
                instance: fingerprint,
                opts: *opts_fp,
                kind: CacheKind::Probability,
                query: key.clone(),
            };
            // Exact answers are stored as `Solution`s, float-tier answers
            // as full `Response`s; the options fingerprint (which folds
            // in the precision) keeps the two populations disjoint.
            match c.get(&ckey) {
                Some(CachedAnswer::Solution(answer)) => {
                    stats.cache_hits += 1;
                    slots[slot] = Some(
                        answer
                            .clone()
                            .map(Response::Probability)
                            .map_err(SolveError::Hard),
                    );
                    continue;
                }
                Some(CachedAnswer::Response(response)) => {
                    stats.cache_hits += 1;
                    slots[slot] = Some(response.clone());
                    continue;
                }
                None => {}
            }
        }
        pending.push(MissSlot {
            slot,
            item_idx: *item_idx,
        });
    }
    PreparedBatch {
        stats,
        slots,
        pending,
        unique,
        slot_of_item,
    }
}

/// Phase 2a: plan every pending unique query. Planning is pure reads
/// over the shared state and runs sequentially (slot order stays
/// deterministic); the produced [`PendingSlot`]s own their query and
/// options, ready to cross a thread boundary. No cache access.
fn plan_pending(
    shared: SharedInstance<'_>,
    items: &[BatchItem<'_>],
    prepared: &mut PreparedBatch,
) -> Vec<PendingSlot> {
    std::mem::take(&mut prepared.pending)
        .into_iter()
        .map(|miss| PendingSlot {
            slot: miss.slot,
            query: items[miss.item_idx].query.clone(),
            opts: items[miss.item_idx].opts,
            planned: plan_query(items[miss.item_idx].query, &shared),
            deadline_at: items[miss.item_idx].deadline_at,
        })
        .collect()
}

/// Phase 2b: buckets the planned slots into at most `shards` shard
/// units (round-robin — the historical assignment, so results stay
/// bit-identical), recording the shard count in `stats`.
fn shard_units(pending: Vec<PendingSlot>, shards: usize, stats: &mut BatchStats) -> Vec<UnitWork> {
    let workers = if shards <= 1 {
        1
    } else {
        shards.min(pending.len()).max(1)
    };
    stats.shards = workers;
    if pending.is_empty() {
        return Vec::new();
    }
    let mut buckets: Vec<Vec<PendingSlot>> = Vec::new();
    buckets.resize_with(workers, Vec::new);
    for (i, p) in pending.into_iter().enumerate() {
        buckets[i % workers].push(p);
    }
    buckets.into_iter().map(UnitWork::Shard).collect()
}

/// Executes one unit. Each shard owns an arena: circuit-compilable
/// plans compile into it and are answered by one multi-root engine
/// pass; everything else runs the exact per-query path. Panics are
/// contained into per-request [`SolveError::Internal`] errors.
fn run_unit(engine: &Engine, work: UnitWork, scratch: &mut WorkerScratch) -> UnitOutput {
    match work {
        UnitWork::Shard(work) => {
            let shared = SharedInstance::new(&engine.instance, &engine.state);
            UnitOutput::Shard(run_shard_guarded(shared, work, scratch))
        }
        UnitWork::SharedEval { arena, items } => {
            UnitOutput::Shard(run_shared_eval_guarded(engine, &arena, items, scratch))
        }
        UnitWork::Single { index, request } => {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                test_support::maybe_panic();
                engine.run_request(&request)
            }))
            .unwrap_or_else(|payload| Err(SolveError::Internal(panic_message(payload.as_ref()))));
            UnitOutput::Single { index, result }
        }
    }
}

/// Runs work units on up to `threads` scoped worker threads (inline
/// when one suffices). Unit outputs are index-tagged, so scheduling
/// never affects where results land; panics inside a unit are already
/// contained by [`run_unit`].
fn run_units_scoped(engine: &Engine, units: Vec<UnitWork>, threads: usize) -> Vec<UnitOutput> {
    if threads <= 1 || units.len() <= 1 {
        let mut scratch = WorkerScratch::new();
        return units
            .into_iter()
            .map(|u| run_unit(engine, u, &mut scratch))
            .collect();
    }
    let workers = threads.min(units.len());
    let work: Vec<Mutex<Option<UnitWork>>> =
        units.into_iter().map(|u| Mutex::new(Some(u))).collect();
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut acc = Vec::new();
                    let mut scratch = WorkerScratch::new();
                    let mut i = w;
                    while i < work.len() {
                        let unit = work[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take()
                            .expect("each unit is taken exactly once");
                        acc.push(run_unit(engine, unit, &mut scratch));
                        i += workers;
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("units contain their own panics"))
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Phase 3: fill the cache with the freshly solved slots and fan back
/// out to batch order. Deterministic outcomes (answers and typed
/// hardness) are cached; transient failures (a contained worker panic)
/// never are, so a retry re-solves. A slot whose shard was lost
/// surfaces as `Err(SolveError::Internal)`, never a panic.
fn finalize_batch(
    prepared: PreparedBatch,
    cache: Option<&mut EvalCache>,
    fingerprint: u64,
) -> (Vec<Result<Response, SolveError>>, BatchStats) {
    let PreparedBatch {
        stats,
        slots,
        pending,
        unique,
        slot_of_item,
    } = prepared;
    debug_assert!(pending.is_empty(), "finalize before execute");
    let slots: Vec<Result<Response, SolveError>> = slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| Err(SolveError::Internal("a shard's output was lost".into())))
        })
        .collect();
    if let Some(c) = cache {
        for ((_, opts_fp, key), answer) in unique.into_iter().zip(&slots) {
            let cached = match answer {
                Ok(Response::Probability(sol)) => CachedAnswer::Solution(Ok(sol.clone())),
                Ok(approx @ Response::Approximate { .. }) => {
                    CachedAnswer::Response(Ok(approx.clone()))
                }
                Ok(_) => continue,
                Err(SolveError::Hard(h)) => CachedAnswer::Solution(Err(h.clone())),
                Err(_) => continue,
            };
            c.insert(
                CacheKey {
                    instance: fingerprint,
                    opts: opts_fp,
                    kind: CacheKind::Probability,
                    query: key,
                },
                cached,
            );
        }
    }
    let results = slot_of_item.iter().map(|&s| slots[s].clone()).collect();
    (results, stats)
}

/// Evaluates one partition of a cross-shard shared arena: a single
/// multi-root engine pass restricted to this partition's root cones.
/// Panic containment mirrors [`run_shard_guarded`].
fn run_shared_eval_guarded(
    engine: &Engine,
    arena: &Arena,
    items: Vec<DeferredRoot>,
    scratch: &mut WorkerScratch,
) -> ShardOutcome {
    let slots: Vec<usize> = items.iter().map(|d| d.0).collect();
    let n = items.len();
    match std::panic::catch_unwind(AssertUnwindSafe(|| {
        test_support::maybe_panic();
        let mut outcome = ShardOutcome::empty(n);
        // The shared arena's gates are counted once, at plan time.
        outcome.circuit_batched = n;
        eval_deferred(arena, engine.instance.probs(), items, &mut outcome, scratch);
        outcome
    })) {
        Ok(outcome) => outcome,
        Err(payload) => ShardOutcome::lost(slots, panic_message(payload.as_ref())),
    }
}

/// The cross-shard shared-arena split: compiles every circuit-compilable
/// pending plan into **one** arena (sequentially, at plan time — gate
/// interning across queries maximizes sharing) and partitions the
/// resulting roots round-robin into [`UnitWork::SharedEval`] units, one
/// multi-root pass each. Plans that don't compile (general routes,
/// provenance requests, failed compilations) are returned for the
/// ordinary per-shard path. A query's compiled circuit — and therefore
/// its exact rational probability — does not depend on which arena it
/// lands in, so answers stay bit-identical to the per-shard path.
fn split_shared_arena(
    shared: SharedInstance<'_>,
    pending: Vec<PendingSlot>,
    shards: usize,
    stats: &mut BatchStats,
) -> (Vec<UnitWork>, Vec<PendingSlot>) {
    let instance = shared.instance;
    let mut arena = Arena::new(instance.graph().n_edges());
    let mut deferred: Vec<DeferredRoot> = Vec::new();
    let mut rest: Vec<PendingSlot> = Vec::new();
    for pending in pending {
        // Metered slots (deadline / budget) need a fallible solo
        // evaluation; the shared multi-root pass can't stop one root
        // without stopping them all.
        if !pending.opts.want_provenance && !pending.is_metered() {
            match &pending.planned.plan {
                Plan::Prop411 { effective } => {
                    if let Some(root) =
                        lineage_circuits::match_into_2wp(&mut arena, effective, instance.graph())
                    {
                        deferred.push((
                            pending.slot,
                            root,
                            false,
                            Route::Prop411,
                            pending.opts.precision,
                        ));
                        continue;
                    }
                }
                Plan::Prop410 => {
                    if let Some(root) = lineage_circuits::fail_into_dwt(
                        &mut arena,
                        &pending.planned.absorbed,
                        instance.graph(),
                    ) {
                        deferred.push((
                            pending.slot,
                            root,
                            true,
                            Route::Prop410,
                            pending.opts.precision,
                        ));
                        continue;
                    }
                }
                _ => {}
            }
        }
        rest.push(pending);
    }
    if deferred.is_empty() {
        return (Vec::new(), rest);
    }
    stats.shared_arena = true;
    stats.shared_gates += arena.n_gates();
    let arena = Arc::new(arena);
    let partitions = shards.max(1).min(deferred.len());
    let mut buckets: Vec<Vec<DeferredRoot>> = Vec::new();
    buckets.resize_with(partitions, Vec::new);
    for (i, d) in deferred.into_iter().enumerate() {
        buckets[i % partitions].push(d);
    }
    let units = buckets
        .into_iter()
        .map(|items| UnitWork::SharedEval {
            arena: Arc::clone(&arena),
            items,
        })
        .collect();
    (units, rest)
}

/// Executes one shard with panic containment: a panicking plan turns
/// into `Err(SolveError::Internal)` on every slot the shard was
/// assigned, and the caller's thread never unwinds.
fn run_shard_guarded(
    shared: SharedInstance<'_>,
    work: Vec<PendingSlot>,
    scratch: &mut WorkerScratch,
) -> ShardOutcome {
    let slots: Vec<usize> = work.iter().map(|p| p.slot).collect();
    match std::panic::catch_unwind(AssertUnwindSafe(|| {
        test_support::maybe_panic();
        run_shard(shared, work, scratch)
    })) {
        Ok(outcome) => outcome,
        Err(payload) => ShardOutcome::lost(slots, panic_message(payload.as_ref())),
    }
}

/// Wraps a general-path (non-circuit) exact answer for its requested
/// tier: under [`Precision::Float`] the exact probability is *reported*
/// approximately (correctly-rounded conversion, half-ulp bound) — unless
/// a provenance handle rides on the solution, which only the exact shape
/// carries. `Exact` and `Auto` report the exact solution unchanged.
fn respond_exact(
    answer: Result<Solution, SolveError>,
    precision: Precision,
) -> Result<Response, SolveError> {
    let sol = answer?;
    match precision {
        Precision::Float { .. } if sol.provenance.is_none() => {
            let value = sol.probability.to_f64();
            let wrapped = ErrF64::from_rounded(value, sol.probability.is_zero());
            Ok(Response::Approximate {
                value,
                rel_err_bound: wrapped.rel_err_bound(),
                route: sol.route,
            })
        }
        _ => Ok(Response::Probability(sol)),
    }
}

/// Answers every deferred circuit root of one arena, honoring each
/// root's precision tier.
///
/// The float tiers (`Float` / `Auto`) compile the union of their root
/// cones into a [`FlatArena`] and evaluate once over
/// [`ErrF64`](phom_num::ErrF64), certifying a relative-error bound per
/// root. `Float` roots always answer [`Response::Approximate`]; `Auto`
/// roots whose bound exceeds their tolerance **escalate** into the
/// exact pass. The exact pass — `Exact` roots plus escalations — is the
/// historical multi-root rational evaluation, so exact answers stay
/// bit-identical to a pure-exact batch (per-root values don't depend on
/// which other roots share the pass).
fn eval_deferred(
    arena: &Arena,
    probs: &[Rational],
    deferred: Vec<DeferredRoot>,
    outcome: &mut ShardOutcome,
    scratch: &mut WorkerScratch,
) {
    let mut exact: Vec<(usize, GateId, bool, Route)> = Vec::new();
    // (slot, root, negated, route, tolerance, escalates-on-miss)
    let mut float: Vec<(usize, GateId, bool, Route, f64, bool)> = Vec::new();
    for (slot, root, negated, route, precision) in deferred {
        match precision {
            Precision::Exact => exact.push((slot, root, negated, route)),
            Precision::Float { max_rel_err } => {
                float.push((slot, root, negated, route, max_rel_err, false))
            }
            Precision::Auto { max_rel_err } => {
                float.push((slot, root, negated, route, max_rel_err, true))
            }
        }
    }
    if !float.is_empty() {
        let roots: Vec<GateId> = float.iter().map(|d| d.1).collect();
        let flat = FlatArena::compile(arena, &roots);
        let leaves: Vec<ErrF64> = probs.iter().map(ErrF64::from_rational).collect();
        let values = flat.eval_err_many(&leaves, &mut scratch.float_values);
        for ((slot, root, negated, route, tol, escalates), value) in float.into_iter().zip(values) {
            let value = if negated { value.complement() } else { value };
            let rel_err_bound = value.rel_err_bound();
            if rel_err_bound > tol && escalates {
                outcome.escalations += 1;
                exact.push((slot, root, negated, route));
            } else {
                // `Float` never escalates: above tolerance the value is
                // still served, with its honest (too-large) bound.
                outcome.float_evaluated += 1;
                outcome.results.push((
                    slot,
                    Ok(Response::Approximate {
                        value: value.value(),
                        rel_err_bound,
                        route,
                    }),
                ));
            }
        }
    }
    if !exact.is_empty() {
        let roots: Vec<GateId> = exact.iter().map(|d| d.1).collect();
        let values = arena.probability_many_with(&roots, probs, &mut scratch.exact);
        for ((slot, _, negated, route), value) in exact.into_iter().zip(values) {
            let probability = if negated { value.one_minus() } else { value };
            outcome.results.push((
                slot,
                Ok(Response::Probability(Solution {
                    probability,
                    route,
                    provenance: None,
                })),
            ));
        }
    }
}

/// Samples drawn by the [`OnHard::Estimate`] degradation when the
/// request's [`Budget`] doesn't cap them.
const DEFAULT_ESTIMATE_SAMPLES: u64 = 10_000;

/// The deterministic seed of the [`OnHard::Estimate`] sampler: a hash
/// of the query's content. Repeated runs of the same request estimate
/// from the same world sequence — the statistical suite (and any
/// retrying client) sees identical intervals.
fn estimate_seed(query: &Graph) -> u64 {
    let mut h = FxHasher::default();
    QueryKey::new(query).hash(&mut h);
    h.finish()
}

/// [`estimate_seed`] for UCQ requests: hashed over every disjunct.
fn ucq_estimate_seed(ucq: &Ucq) -> u64 {
    let mut h = FxHasher::default();
    QueryKey::of_many(ucq.disjuncts()).hash(&mut h);
    h.finish()
}

/// The [`OnHard::Estimate`] degradation: a budgeted, metered
/// Monte-Carlo run answering a 95% confidence interval as
/// [`Response::Estimate`]. Anytime: a deadline or time budget tripping
/// after at least one sample returns the truncated (wider) interval; a
/// stop before the first sample surfaces as the meter's typed error.
fn estimate_response(
    query: &Graph,
    instance: &ProbGraph,
    opts: SolverOptions,
    meter: &mut WorkMeter,
) -> Result<Response, SolveError> {
    let samples = opts.budget.samples.unwrap_or(DEFAULT_ESTIMATE_SAMPLES);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(estimate_seed(query));
    let (est, _stop) =
        crate::montecarlo::estimate_metered(query, instance, samples, &mut rng, meter)
            .map_err(SolveError::from_meter)?;
    Ok(Response::Estimate {
        lo: (est.mean - est.ci95).max(0.0),
        hi: (est.mean + est.ci95).min(1.0),
        samples: est.samples,
        route: Route::MonteCarlo {
            samples: est.samples,
            ci95_times_1e9: (est.ci95 * 1e9) as u64,
        },
    })
}

/// The solo path for metered slots (deadline / budget caps): compiles
/// the slot's own arena when its plan is circuit-shaped and evaluates
/// it under the [`WorkMeter`]'s checkpoints, so a stuck or oversized
/// evaluation stops cooperatively instead of wedging the worker. The
/// compiled circuit — and therefore the exact rational answer — is
/// identical to the batched path's, so a request that finishes within
/// its limits answers bit-identically to an unmetered twin.
fn run_metered_slot(
    shared: SharedInstance<'_>,
    pending: PendingSlot,
    outcome: &mut ShardOutcome,
    scratch: &mut WorkerScratch,
) -> (usize, Result<Response, SolveError>) {
    let opts = pending.opts;
    let slot = pending.slot;
    let mut meter = opts.budget.arm(WorkMeter::unbounded());
    if let Some(at) = pending.deadline_at {
        meter = meter.with_deadline(at);
    }
    // Pre-work checkpoint: a request that expired in a queue (or
    // behind a stuck unit) sheds before compiling anything.
    if let Err(stop) = meter.check_now() {
        return (slot, Err(SolveError::from_meter(stop)));
    }
    let instance = shared.instance;
    if shared.ic().is_connected() && !opts.want_provenance {
        let mut arena = Arena::new(instance.graph().n_edges());
        let compiled = match &pending.planned.plan {
            Plan::Prop411 { effective } => {
                lineage_circuits::match_into_2wp(&mut arena, effective, instance.graph())
                    .map(|root| (root, false, Route::Prop411))
            }
            Plan::Prop410 => lineage_circuits::fail_into_dwt(
                &mut arena,
                &pending.planned.absorbed,
                instance.graph(),
            )
            .map(|root| (root, true, Route::Prop410)),
            _ => None,
        };
        if let Some((root, negated, route)) = compiled {
            outcome.circuit_batched += 1;
            outcome.gates += arena.n_gates();
            let result = eval_metered_root(
                &arena,
                instance.probs(),
                root,
                negated,
                route,
                opts.precision,
                &mut meter,
                outcome,
                scratch,
            );
            return (slot, result);
        }
    }
    // General path (DP routes, fallbacks, provenance): the meter
    // checkpointed before the work; hard cells degrade per `on_hard`.
    outcome.general_solved += 1;
    let answer = finish_plan(&pending.query, pending.planned, &shared, opts);
    let result = match answer {
        Err(_) if opts.on_hard == OnHard::Estimate => {
            estimate_response(&pending.query, instance, opts, &mut meter)
        }
        other => respond_exact(other.map_err(SolveError::Hard), opts.precision),
    };
    (slot, result)
}

/// Metered evaluation of one compiled root, honoring its precision
/// tier: the exact tier runs the metered rational cone pass, the float
/// tiers the metered flat-slab pass (with `Auto` escalating to the
/// metered exact pass when the certified bound misses tolerance).
/// Arithmetic and evaluation order match the unmetered batch passes,
/// so completed answers are bit-identical.
#[allow(clippy::too_many_arguments)]
fn eval_metered_root(
    arena: &Arena,
    probs: &[Rational],
    root: GateId,
    negated: bool,
    route: Route,
    precision: Precision,
    meter: &mut WorkMeter,
    outcome: &mut ShardOutcome,
    scratch: &mut WorkerScratch,
) -> Result<Response, SolveError> {
    let exact_pass =
        |meter: &mut WorkMeter, scratch: &mut WorkerScratch| -> Result<Response, SolveError> {
            let values = arena
                .probability_many_metered(&[root], probs, &mut scratch.exact, meter)
                .map_err(SolveError::from_meter)?;
            let value = values.into_iter().next().expect("one root");
            let probability = if negated { value.one_minus() } else { value };
            Ok(Response::Probability(Solution {
                probability,
                route: route.clone(),
                provenance: None,
            }))
        };
    let (tol, escalates) = match precision {
        Precision::Exact => return exact_pass(meter, scratch),
        Precision::Float { max_rel_err } => (max_rel_err, false),
        Precision::Auto { max_rel_err } => (max_rel_err, true),
    };
    let flat = FlatArena::compile(arena, &[root]);
    let leaves: Vec<ErrF64> = probs.iter().map(ErrF64::from_rational).collect();
    let values = flat
        .eval_many_metered(&leaves, &mut scratch.float_values, meter)
        .map_err(SolveError::from_meter)?;
    let value = values.into_iter().next().expect("one root");
    let value = if negated { value.complement() } else { value };
    let rel_err_bound = value.rel_err_bound();
    if rel_err_bound > tol && escalates {
        outcome.escalations += 1;
        return exact_pass(meter, scratch);
    }
    outcome.float_evaluated += 1;
    Ok(Response::Approximate {
        value: value.value(),
        rel_err_bound,
        route,
    })
}

/// Executes one shard's worth of planned queries.
fn run_shard(
    shared: SharedInstance<'_>,
    work: Vec<PendingSlot>,
    scratch: &mut WorkerScratch,
) -> ShardOutcome {
    let instance = shared.instance;
    let mut arena = Arena::new(instance.graph().n_edges());
    let mut deferred: Vec<DeferredRoot> = Vec::new();
    let mut outcome = ShardOutcome::empty(work.len());
    let connected = shared.ic().is_connected();
    for pending in work {
        let opts = pending.opts;
        // Metered slots (deadline / budget caps) run the fallible solo
        // path: own arena, WorkMeter checkpoints, typed stops.
        if pending.is_metered() {
            let (slot, result) = run_metered_slot(shared, pending, &mut outcome, scratch);
            outcome.results.push((slot, result));
            continue;
        }
        // The shared-arena fast path: circuit-compilable plans on a
        // connected instance, when no provenance handle was requested
        // (handles own their circuit, so they compile separately).
        if connected && !opts.want_provenance {
            match &pending.planned.plan {
                Plan::Prop411 { effective } => {
                    if let Some(root) =
                        lineage_circuits::match_into_2wp(&mut arena, effective, instance.graph())
                    {
                        deferred.push((pending.slot, root, false, Route::Prop411, opts.precision));
                        outcome.circuit_batched += 1;
                        continue;
                    }
                }
                Plan::Prop410 => {
                    if let Some(root) = lineage_circuits::fail_into_dwt(
                        &mut arena,
                        &pending.planned.absorbed,
                        instance.graph(),
                    ) {
                        deferred.push((pending.slot, root, true, Route::Prop410, opts.precision));
                        outcome.circuit_batched += 1;
                        continue;
                    }
                }
                _ => {}
            }
        }
        // General path: finish the plan exactly as `solve_with` does —
        // then degrade a hard cell to a budgeted estimate when the
        // request opted in.
        let answer = finish_plan(&pending.query, pending.planned, &shared, opts);
        outcome.general_solved += 1;
        let result = match answer {
            Err(_) if opts.on_hard == OnHard::Estimate => {
                let mut meter = opts.budget.arm(WorkMeter::unbounded());
                estimate_response(&pending.query, instance, opts, &mut meter)
            }
            other => respond_exact(other.map_err(SolveError::Hard), opts.precision),
        };
        outcome.results.push((pending.slot, result));
    }
    outcome.gates = arena.n_gates();
    // One multi-root engine pass per tier answers every deferred query.
    if !deferred.is_empty() {
        eval_deferred(&arena, instance.probs(), deferred, &mut outcome, scratch);
    }
    outcome
}

/// The legacy `solve_many*` core: uniform options, caller-owned cache,
/// single shard. Kept so the deprecated shims in [`crate::batch`] stay
/// bit-identical to their historical behavior — including propagating a
/// worker panic to the caller (the typed containment is an [`Engine`]
/// surface; these shims still speak bare `Hardness`).
pub(crate) fn legacy_batch(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
    mut cache: Option<&mut EvalCache>,
) -> (Vec<Result<Solution, Hardness>>, BatchStats) {
    // The legacy surface predates the float tiers and speaks `Solution`
    // only — exact precision, whatever the caller's options say.
    let opts = SolverOptions {
        precision: Precision::Exact,
        ..opts
    };
    let state = InstanceState::new(instance);
    let shared = SharedInstance::new(instance, &state);
    let items: Vec<BatchItem> = queries
        .iter()
        .map(|query| BatchItem {
            query,
            opts,
            deadline_at: None,
        })
        .collect();
    let fingerprint = if cache.is_some() {
        instance_fingerprint(instance)
    } else {
        0 // never read: the cache is what consumes the fingerprint
    };
    let mut prepared = prepare_batch(&items, cache.as_deref_mut(), fingerprint);
    let pending = plan_pending(shared, &items, &mut prepared);
    let mut scratch = WorkerScratch::new();
    for unit in shard_units(pending, 1, &mut prepared.stats) {
        let UnitWork::Shard(work) = unit else {
            unreachable!("probability-only batch")
        };
        apply_shard(&mut prepared, run_shard_guarded(shared, work, &mut scratch));
    }
    let (results, stats) = finalize_batch(prepared, cache, fingerprint);
    let results = results
        .into_iter()
        .map(|r| {
            r.map(|resp| match resp {
                Response::Probability(sol) => sol,
                other => unreachable!("exact batch answered as {other:?}"),
            })
            .map_err(|e| match e {
                SolveError::Hard(h) => h,
                other => panic!("{other}"),
            })
        })
        .collect();
    (results, stats)
}

// ---------------------------------------------------------------------
// The tick seam: external worker pools
// ---------------------------------------------------------------------

/// A planned micro-batch ("tick") against one engine, split into
/// independent [`TickUnit`]s — the plan/execute seam behind
/// `phom_serve`'s persistent worker pools.
///
/// [`Engine::begin_tick`] plans the batch (cheap, pure reads over the
/// shared instance state, sequential); the returned units are
/// `Send + 'static` — they own their queries, options, and plans — and
/// may run on any thread, in any order, **without scoped spawns**;
/// [`Tick::finish`] fills the answer cache and assembles the responses
/// in request order.
///
/// [`Engine::submit`] is exactly this seam run on ad-hoc scoped
/// threads, so tick results are **bit-identical** to `submit` for every
/// shard count and scheduling.
pub struct Tick {
    engine: Arc<Engine>,
    plan: PlannedTick,
    units: Vec<TickUnit>,
}

impl Engine {
    /// Plans `requests` into a [`Tick`] whose probability work is split
    /// across at most `shards` units (plus one unit per counting /
    /// sensitivity / UCQ request). Cache hits are answered during
    /// planning and produce no units at all. Per-shard arenas only; see
    /// [`begin_tick_with`](Engine::begin_tick_with) for the cross-shard
    /// shared-arena knob.
    pub fn begin_tick(self: &Arc<Self>, requests: &[Request], shards: usize) -> Tick {
        self.begin_tick_with(
            requests,
            &TickConfig {
                shards,
                share_arena_at: None,
            },
        )
    }

    /// As [`begin_tick`](Engine::begin_tick), with the full
    /// [`TickConfig`] — including
    /// [`share_arena_at`](TickConfig::share_arena_at), the cross-shard
    /// shared-arena threshold the serving runtime uses for large ticks.
    pub fn begin_tick_with(self: &Arc<Self>, requests: &[Request], config: &TickConfig) -> Tick {
        let mut plan = plan_tick(self, requests, config);
        let units = std::mem::take(&mut plan.units)
            .into_iter()
            .map(|work| TickUnit {
                engine: Arc::clone(self),
                work,
            })
            .collect();
        Tick {
            engine: Arc::clone(self),
            plan,
            units,
        }
    }
}

impl Tick {
    /// Hands out the tick's work units (empty on a second call — each
    /// unit runs exactly once).
    pub fn take_units(&mut self) -> Vec<TickUnit> {
        std::mem::take(&mut self.units)
    }

    /// Total requests this tick answers.
    pub fn n_requests(&self) -> usize {
        self.plan.n_requests
    }

    /// Assembles the responses (request order) once every unit has run.
    /// Outputs may arrive in any order; a missing output surfaces as
    /// `Err(SolveError::Internal)` on its requests, never a panic.
    pub fn finish(
        self,
        outputs: Vec<TickOutput>,
    ) -> (Vec<Result<Response, SolveError>>, BatchStats) {
        finish_tick(
            &self.engine,
            self.plan,
            outputs.into_iter().map(|o| o.0).collect(),
        )
    }
}

/// One independent, `Send + 'static` unit of tick work: a shard of
/// planned probability queries (compiled into one arena, answered by
/// one multi-root engine pass) or a single non-probability request.
pub struct TickUnit {
    engine: Arc<Engine>,
    work: UnitWork,
}

impl TickUnit {
    /// Executes the unit. Panics are contained: a panicking plan turns
    /// into `Err(SolveError::Internal)` on the affected requests and
    /// the engine stays serviceable.
    pub fn run(self) -> TickOutput {
        self.run_with(&mut WorkerScratch::new())
    }

    /// As [`run`](TickUnit::run), with caller-owned evaluation scratch:
    /// a persistent worker holds one [`WorkerScratch`] across ticks so
    /// the multi-root evaluation passes stop allocating after warm-up.
    /// Answers are bit-identical to [`run`](TickUnit::run).
    pub fn run_with(self, scratch: &mut WorkerScratch) -> TickOutput {
        TickOutput(run_unit(&self.engine, self.work, scratch))
    }

    /// How many requests this unit answers (for load accounting).
    pub fn n_requests(&self) -> usize {
        match &self.work {
            UnitWork::Shard(work) => work.len(),
            UnitWork::SharedEval { items, .. } => items.len(),
            UnitWork::Single { .. } => 1,
        }
    }
}

/// The opaque output of one [`TickUnit::run`], handed back to
/// [`Tick::finish`].
pub struct TickOutput(UnitOutput);

// The pool handoff types must cross thread and channel boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TickUnit>();
    assert_send::<TickOutput>();
    assert_send::<Request>();
    assert_send::<Response>();
};

/// Support for the worker panic-recovery regression suite — not part of
/// the public API.
#[doc(hidden)]
pub mod test_support {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static INJECT_PANIC: AtomicBool = AtomicBool::new(false);
    static PANIC_BUDGET: AtomicU64 = AtomicU64::new(0);

    /// While set, every executed work unit panics at entry (before any
    /// solving). The engine must contain the panic into per-request
    /// `SolveError::Internal` errors. Test-only; never set in
    /// production code.
    pub fn inject_unit_panic(on: bool) {
        INJECT_PANIC.store(on, Ordering::SeqCst);
    }

    /// One-shot flavor: the next `n` executed work units panic at
    /// entry, then injection stops by itself. Used by scripted fault
    /// plans (`phom_serve::test_support::FaultPlan`) where exactly one
    /// unit should fail rather than every unit while a flag is up.
    pub fn inject_unit_panics(n: u64) {
        PANIC_BUDGET.store(n, Ordering::SeqCst);
    }

    pub(super) fn maybe_panic() {
        if INJECT_PANIC.load(Ordering::SeqCst) {
            panic!("injected unit panic (engine::test_support)");
        }
        loop {
            let left = PANIC_BUDGET.load(Ordering::SeqCst);
            if left == 0 {
                return;
            }
            if PANIC_BUDGET
                .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                panic!("injected unit panic (engine::test_support, one-shot)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::Label;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn twp_instance(seed: u64) -> ProbGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate::with_probabilities(
            generate::two_way_path(8, 2, &mut rng),
            ProbProfile::default(),
            &mut rng,
        )
    }

    #[test]
    fn engine_solve_matches_legacy_and_caches() {
        let h = twp_instance(0xE1);
        let q = Graph::one_way_path(&[Label(0), Label(1)]);
        let engine = Engine::new(h.clone());
        let sol = engine.solve(&q).unwrap();
        #[allow(deprecated)]
        let legacy = crate::solve(&q, &h).unwrap();
        assert_eq!(sol.probability, legacy.probability);
        assert_eq!(sol.route, legacy.route);
        let _ = engine.solve(&q).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn request_builder_reshapes_and_overrides() {
        let q = Graph::directed_path(1);
        let req = Request::probability(q.clone())
            .with_provenance()
            .fallback(Fallback::BruteForce { max_uncertain: 4 });
        let opts = req.resolved_options(SolverOptions::default());
        assert!(opts.want_provenance);
        assert!(matches!(
            opts.fallback,
            Fallback::BruteForce { max_uncertain: 4 }
        ));
        assert!(matches!(
            Request::probability(q.clone()).counting().kind,
            RequestKind::Counting(_)
        ));
        assert!(matches!(
            Request::probability(q).sensitivity().kind,
            RequestKind::Sensitivity(_)
        ));
    }

    #[test]
    #[should_panic(expected = "single-query requests")]
    fn counting_a_ucq_panics() {
        let _ = Request::ucq(Ucq::new(vec![])).counting();
    }

    #[test]
    fn non_probability_responses_are_cached() {
        let mut rng = SmallRng::seed_from_u64(0xCA);
        let h = generate::with_probabilities(
            generate::two_way_path(6, 2, &mut rng),
            ProbProfile::half(),
            &mut rng,
        );
        let q = generate::planted_path_query(h.graph(), 2, &mut rng)
            .unwrap_or_else(|| Graph::one_way_path(&[Label(0)]));
        let engine = Engine::new(h);
        let batch = [
            Request::probability(q.clone()).counting(),
            Request::probability(q.clone()).sensitivity(),
            Request::ucq(Ucq::new(vec![q.clone(), Graph::directed_path(1)])),
        ];
        let first = engine.submit(&batch);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.entries, 3, "{stats:?}");
        let second = engine.submit(&batch);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 3, "every response kind served hot: {stats:?}");
        for (i, (a, b)) in first.iter().zip(&second).enumerate() {
            match (a, b) {
                (
                    Ok(Response::Count { worlds: wa, .. }),
                    Ok(Response::Count { worlds: wb, .. }),
                ) => {
                    assert_eq!(wa, wb, "request {i}")
                }
                (
                    Ok(Response::Sensitivity { influences: ia, .. }),
                    Ok(Response::Sensitivity { influences: ib, .. }),
                ) => assert_eq!(ia, ib, "request {i}"),
                (
                    Ok(Response::Ucq {
                        probability: pa, ..
                    }),
                    Ok(Response::Ucq {
                        probability: pb, ..
                    }),
                ) => assert_eq!(pa, pb, "request {i}"),
                (a, b) => panic!("request {i}: {a:?} vs {b:?}"),
            }
        }
        // A counting answer never shadows the probability answer for the
        // same query graph: the kind tag keeps the keys distinct.
        let answers = engine.submit(&[Request::probability(q)]);
        assert!(matches!(answers[0], Ok(Response::Probability(_))));
    }

    #[test]
    fn hardness_responses_are_cached_but_deterministically() {
        // A hard-cell counting request caches its typed hardness error.
        let mut rng = SmallRng::seed_from_u64(0xCB);
        let h = generate::with_probabilities(
            generate::connected(4, 2, 1, &mut rng),
            ProbProfile::half(),
            &mut rng,
        );
        let q = Graph::directed_path(2);
        let engine = Engine::new(h);
        let req = [Request::probability(q).counting()];
        let first = engine.submit(&req);
        let second = engine.submit(&req);
        match (&first[0], &second[0]) {
            (Err(SolveError::Hard(a)), Err(SolveError::Hard(b))) => assert_eq!(a, b),
            (Ok(Response::Count { worlds: a, .. }), Ok(Response::Count { worlds: b, .. })) => {
                assert_eq!(a, b)
            }
            (a, b) => panic!("{a:?} vs {b:?}"),
        }
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn fleet_routes_by_fingerprint_and_shares_cache() {
        let h1 = twp_instance(1);
        let h2 = twp_instance(2);
        let mut fleet = Fleet::with_cache_capacity(64);
        let fp1 = fleet.register(h1.clone());
        let fp2 = fleet.register(h2);
        assert_ne!(fp1, fp2);
        assert_eq!(fleet.len(), 2);
        let q = Graph::one_way_path(&[Label(0)]);
        let r1 = fleet
            .submit(fp1, &[Request::probability(q.clone())])
            .unwrap();
        let r2 = fleet
            .submit(fp2, &[Request::probability(q.clone())])
            .unwrap();
        #[allow(deprecated)]
        let expect = crate::solve(&q, &h1).unwrap();
        assert_eq!(
            r1[0].as_ref().unwrap().probability().unwrap(),
            &expect.probability
        );
        // Different versions may answer differently; both are cached in
        // the one shared cache under distinct fingerprints.
        let _ = r2;
        assert_eq!(fleet.cache_stats().misses, 2);
        assert!(fleet.submit(fp1 ^ fp2 ^ 1, &[]).is_none());
        assert!(fleet.deregister(fp2));
        assert!(fleet.submit(fp2, &[]).is_none());
    }
}
