//! The *unweighted* regime the paper's conclusion proposes as future work:
//! all probabilities are ½, so `PHom` becomes **model counting** — the
//! number of subgraphs of `H` to which `G` has a homomorphism (the
//! `#SUB`-adjacent problem of the introduction's related work).
//!
//! For an instance whose uncertain edges all have probability ½ (certain
//! and impossible edges are allowed), the count of satisfying worlds is
//! `Pr(G ⇝ H) · 2^u` with `u` the number of uncertain edges, so every
//! tractable cell of Tables 1–3 yields polynomial-time *counting* over an
//! exponential world space.
//!
//! Counting routes through the unified provenance engine whenever the
//! solver attaches a lineage: the circuit is evaluated once in the
//! [`Natural`] counting semiring (uncertain edges free, certain edges
//! pinned), with no rational arithmetic and no scaling step. Routes
//! without a circuit fall back to the `Pr · 2^u` identity.

use crate::solver::{solve_shared, Hardness, InstanceState, SharedInstance, SolverOptions};
use phom_graph::{Graph, ProbGraph};
use phom_lineage::VarStatus;
use phom_num::{Natural, Rational};

/// Why a counting call failed.
#[derive(Debug, Clone)]
pub enum CountError {
    /// Some uncertain edge has a probability other than ½.
    NotUnweighted {
        /// The offending edge id.
        edge: usize,
    },
    /// The input lies in a #P-hard cell (and no fallback was configured).
    Hard(Hardness),
}

/// Counts the worlds of `H` (over its uncertain edges, which must all have
/// probability ½) in which `G` has a homomorphism. Certain (π = 1) and
/// impossible (π = 0) edges are fixed, not counted.
///
/// Returns an arbitrary-precision [`Natural`]: counts reach `2^u`.
pub fn count_satisfying_worlds(query: &Graph, instance: &ProbGraph) -> Result<Natural, CountError> {
    count_satisfying_worlds_with(query, instance, SolverOptions::default())
}

/// As [`count_satisfying_worlds`], with solver options (e.g. a brute-force
/// fallback for hard cells).
pub fn count_satisfying_worlds_with(
    query: &Graph,
    instance: &ProbGraph,
    opts: SolverOptions,
) -> Result<Natural, CountError> {
    let state = InstanceState::new(instance);
    count_satisfying_worlds_shared(query, &SharedInstance::new(instance, &state), opts)
}

/// The shared-state counting path: a long-lived [`crate::Engine`] passes
/// its cached instance state here, so counting-heavy serving never
/// re-classifies the instance.
pub(crate) fn count_satisfying_worlds_shared(
    query: &Graph,
    shared: &SharedInstance,
    opts: SolverOptions,
) -> Result<Natural, CountError> {
    let instance = shared.instance;
    let half = Rational::from_ratio(1, 2);
    let uncertain = instance.uncertain_edges();
    for &e in &uncertain {
        if instance.prob(e) != &half {
            return Err(CountError::NotUnweighted { edge: e });
        }
    }
    // Ask the solver for a provenance handle: when one comes back the
    // count is a single Natural-semiring pass of the engine.
    let opts = SolverOptions {
        want_provenance: true,
        ..opts
    };
    let sol = solve_shared(query, shared, opts).map_err(CountError::Hard)?;
    if let Some(prov) = &sol.provenance {
        let status: Vec<VarStatus> = (0..instance.graph().n_edges())
            .map(|e| {
                let p = instance.prob(e);
                if p.is_one() {
                    VarStatus::Pinned(true)
                } else if p.is_zero() {
                    VarStatus::Pinned(false)
                } else {
                    VarStatus::Free
                }
            })
            .collect();
        let count = prov.count_worlds(&status);
        debug_assert_eq!(count, scale_probability(&sol.probability, uncertain.len()));
        return Ok(count);
    }
    Ok(scale_probability(&sol.probability, uncertain.len()))
}

/// The `Pr · 2^u` identity, for routes without a provenance circuit.
fn scale_probability(probability: &Rational, uncertain: usize) -> Natural {
    let scale = Rational::new(false, Natural::one().shl(uncertain as u32), Natural::one());
    let scaled = probability.mul(&scale);
    debug_assert!(scaled.denom().is_one(), "½-weights make Pr·2^u integral");
    scaled.numer().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::hom::exists_hom_into_world;
    use phom_graph::{GraphBuilder, Label};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Oracle: count satisfying worlds by enumeration.
    fn brute_count(query: &Graph, instance: &ProbGraph) -> u64 {
        let mut count = 0;
        for (mask, p) in instance.worlds() {
            if !p.is_zero() && exists_hom_into_world(query, instance.graph(), &mask) {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn counts_on_a_path() {
        // Instance → → at ½ each; query →: 3 of the 4 worlds contain an
        // edge.
        let h = ProbGraph::new(
            Graph::directed_path(2),
            vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)],
        );
        let q = Graph::directed_path(1);
        assert_eq!(
            count_satisfying_worlds(&q, &h).unwrap(),
            Natural::from_u64(3)
        );
        let q2 = Graph::directed_path(2);
        assert_eq!(
            count_satisfying_worlds(&q2, &h).unwrap(),
            Natural::from_u64(1)
        );
    }

    #[test]
    fn certain_edges_are_not_counted() {
        let mut b = GraphBuilder::with_vertices(3);
        b.edge(0, 1, Label::UNLABELED);
        b.edge(1, 2, Label::UNLABELED);
        let h = ProbGraph::new(b.build(), vec![Rational::one(), Rational::from_ratio(1, 2)]);
        // One uncertain edge: counts range over 2 worlds.
        let q = Graph::directed_path(2);
        assert_eq!(
            count_satisfying_worlds(&q, &h).unwrap(),
            Natural::from_u64(1)
        );
        let q1 = Graph::directed_path(1);
        assert_eq!(
            count_satisfying_worlds(&q1, &h).unwrap(),
            Natural::from_u64(2)
        );
    }

    #[test]
    fn rejects_weighted_instances() {
        let h = ProbGraph::new(Graph::directed_path(1), vec![Rational::from_ratio(1, 3)]);
        let q = Graph::directed_path(1);
        assert!(matches!(
            count_satisfying_worlds(&q, &h),
            Err(CountError::NotUnweighted { edge: 0 })
        ));
    }

    #[test]
    fn hard_cells_reported_or_brute_forced() {
        let h = phom_graph::fixtures::figure_1();
        // Figure 1 has non-½ probabilities, so normalize: all uncertain → ½.
        let probs: Vec<Rational> = h
            .probs()
            .iter()
            .map(|p| {
                if p.is_one() || p.is_zero() {
                    p.clone()
                } else {
                    Rational::from_ratio(1, 2)
                }
            })
            .collect();
        let h = ProbGraph::new(h.graph().clone(), probs);
        let q = phom_graph::fixtures::example_2_2_query();
        assert!(matches!(
            count_satisfying_worlds(&q, &h),
            Err(CountError::Hard(_))
        ));
        let opts = SolverOptions {
            fallback: crate::solver::Fallback::BruteForce { max_uncertain: 10 },
            ..Default::default()
        };
        let got = count_satisfying_worlds_with(&q, &h, opts).unwrap();
        assert_eq!(got, Natural::from_u64(brute_count(&q, &h)));
    }

    #[test]
    fn random_unweighted_counts_match_enumeration() {
        let mut rng = SmallRng::seed_from_u64(71);
        for _ in 0..60 {
            let h_graph = generate::downward_tree(rng.gen_range(1..8), 2, &mut rng);
            let h = generate::with_probabilities(h_graph, ProbProfile::half(), &mut rng);
            let q = generate::one_way_path(rng.gen_range(1..4), 2, &mut rng);
            let got = count_satisfying_worlds(&q, &h).unwrap();
            assert_eq!(got, Natural::from_u64(brute_count(&q, &h)), "q={q:?}");
        }
    }

    /// The engine-counting path (connected DWT/2WP instances attach a
    /// provenance circuit) agrees with enumeration across both labeled
    /// tractable cells.
    #[test]
    fn engine_counts_match_enumeration_on_2wp() {
        let mut rng = SmallRng::seed_from_u64(72);
        for _ in 0..60 {
            let h_graph = generate::two_way_path(rng.gen_range(1..8), 2, &mut rng);
            let h = generate::with_probabilities(h_graph, ProbProfile::half(), &mut rng);
            let q = generate::connected(rng.gen_range(1..4), 1, 2, &mut rng);
            match count_satisfying_worlds(&q, &h) {
                Ok(got) => {
                    assert_eq!(got, Natural::from_u64(brute_count(&q, &h)), "q={q:?}")
                }
                Err(CountError::Hard(_)) => {} // disconnected query, etc.
                Err(e) => panic!("unexpected counting error: {e:?}"),
            }
        }
    }

    use phom_graph::Graph;
}
