//! Propositions 5.4 and 5.5: `PHom̸L(1WP, PT)` and `PHom̸L(⊔DWT, PT)` are
//! PTIME.
//!
//! An unlabeled one-way-path query of length `m` on a connected polytree
//! instance asks for the probability that a possible world contains a
//! directed path of length `m`. Following Appendix C, we encode the
//! polytree as a full binary uncertain tree (`phom_automata::encode`), run
//! the bottom-up deterministic automaton with states `⟨↑, ↓, Max⟩`
//! (`phom_automata::dta`), and evaluate the acceptance probability — either
//! directly over state distributions or through the compiled d-DNNF
//! lineage.

use phom_automata::run::{acceptance_probability, compile_ddnnf};
use phom_automata::{encode_polytree, OptPathAutomaton, PathAutomaton};
use phom_graph::ProbGraph;
use phom_num::Weight;

/// Which Prop 5.4 pipeline to run (ablation ABL-2 in `DESIGN.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PtStrategy {
    /// Optimized `⟨↑, ↓, sat⟩` automaton + state-distribution DP (default).
    #[default]
    OptAutomaton,
    /// Paper-faithful `⟨↑, ↓, Max⟩` automaton + state-distribution DP.
    PaperAutomaton,
    /// Optimized automaton compiled to an explicit d-DNNF, then evaluated
    /// (the paper's actual proof pipeline, via \[5] and \[21]).
    Ddnnf,
}

/// `Pr[the connected polytree instance has a present directed path of
/// length ≥ m]`. Returns `None` when the instance is not a connected
/// polytree.
pub fn long_path_probability<W: Weight>(
    instance: &ProbGraph,
    m: usize,
    strategy: PtStrategy,
) -> Option<W> {
    if m == 0 {
        return Some(W::one());
    }
    let tree = encode_polytree(instance)?;
    let p = match strategy {
        PtStrategy::OptAutomaton => acceptance_probability(&OptPathAutomaton { m }, &tree),
        PtStrategy::PaperAutomaton => acceptance_probability(&PathAutomaton { m }, &tree),
        PtStrategy::Ddnnf => {
            let (circuit, root) = compile_ddnnf(&OptPathAutomaton { m }, &tree);
            let probs: Vec<W> = tree
                .node_probs()
                .iter()
                .map(|r| W::from_rational(r))
                .collect();
            circuit.probability(root, &probs)
        }
    };
    Some(p)
}

/// Size report of the compiled d-DNNF for a given instance and `m`
/// (used by the benchmark harness to report lineage sizes).
pub fn ddnnf_size(instance: &ProbGraph, m: usize) -> Option<(usize, usize)> {
    let tree = encode_polytree(instance)?;
    let (circuit, _) = compile_ddnnf(&OptPathAutomaton { m }, &tree);
    Some((circuit.n_gates(), circuit.n_wires()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use phom_graph::{generate, Graph};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn all_strategies_agree_with_brute_force() {
        let mut rng = SmallRng::seed_from_u64(51);
        for _ in 0..60 {
            let g = generate::polytree(rng.gen_range(1..9), 1, &mut rng);
            let h = generate::with_probabilities(
                g,
                generate::ProbProfile {
                    certain_ratio: 0.25,
                    denominator: 4,
                },
                &mut rng,
            );
            for m in 1..5 {
                let expect = bruteforce::probability(&Graph::directed_path(m), &h);
                for strat in [
                    PtStrategy::OptAutomaton,
                    PtStrategy::PaperAutomaton,
                    PtStrategy::Ddnnf,
                ] {
                    let got: Rational = long_path_probability(&h, m, strat).unwrap();
                    assert_eq!(got, expect, "strategy {strat:?}, m={m}");
                }
            }
        }
    }

    #[test]
    fn m_zero_is_certain() {
        let h = ProbGraph::certain(Graph::directed_path(2));
        let p: Rational = long_path_probability(&h, 0, PtStrategy::OptAutomaton).unwrap();
        assert!(p.is_one());
    }

    #[test]
    fn non_polytree_rejected() {
        let mut b = phom_graph::GraphBuilder::with_vertices(2);
        b.edge(0, 1, phom_graph::Label::UNLABELED);
        b.edge(1, 0, phom_graph::Label::UNLABELED);
        let h = ProbGraph::certain(b.build());
        assert!(long_path_probability::<Rational>(&h, 1, PtStrategy::OptAutomaton).is_none());
    }

    #[test]
    fn ddnnf_size_reported() {
        let mut rng = SmallRng::seed_from_u64(52);
        let g = generate::polytree(15, 1, &mut rng);
        let h = generate::with_probabilities(g, generate::ProbProfile::default(), &mut rng);
        let (gates, wires) = ddnnf_size(&h, 3).unwrap();
        assert!(gates > 0 && wires > 0);
    }

    use phom_graph::ProbGraph;
    use phom_num::Rational;
}
