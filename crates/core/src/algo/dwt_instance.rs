//! Proposition 3.6: `PHom̸L(All, ⊔DWT)` is PTIME.
//!
//! On a `⊔DWT` instance every possible world is a downward forest, where
//! any two vertices are joined by at most one directed path. Hence:
//!
//! * a query with a directed cycle or a *jumping edge* (two directed paths
//!   of different lengths between the same pair — i.e. not graded,
//!   Definition 3.5) has probability 0;
//! * a graded query `G` is equivalent, on such worlds, to the one-way path
//!   `→^m` where `m` is `G`'s difference of levels (max over connected
//!   components).
//!
//! It remains to compute `Pr[some world component has a directed path of
//! length ≥ m]`, which we do by a per-tree dynamic program over the
//! distribution of `(longest present downward path starting at v, capped
//! at m; saturation bit)` — `O(n·m²)` overall.

use phom_graph::classes::as_downward_tree;
use phom_graph::graded::level_mapping;
use phom_graph::{Graph, ProbGraph};
use phom_num::{Rational, Weight};

use super::components::{combine_connected_query, split_components};

/// Computes `Pr(G ⇝ H)` for an arbitrary unlabeled query on a `⊔DWT`
/// unlabeled instance. Returns `None` if the instance is not a `⊔DWT` (the
/// dispatcher never calls it that way).
pub fn probability(query: &Graph, instance: &ProbGraph) -> Option<Rational> {
    let m = match collapse_length(query) {
        Some(0) => return Some(Rational::one()),
        Some(m) => m,
        None => return Some(Rational::zero()),
    };
    let per: Option<Vec<Rational>> = split_components(instance)
        .iter()
        .map(|h| dwt_long_path_probability::<Rational>(h, m))
        .collect();
    Some(combine_connected_query(&per?))
}

/// The length `m` such that the (unlabeled, graded) query is equivalent to
/// `→^m` on downward-forest worlds; `None` when the query is cyclic or not
/// graded (probability 0 on `⊔DWT` instances).
pub fn collapse_length(query: &Graph) -> Option<usize> {
    if query.n_edges() == 0 {
        return Some(0);
    }
    let lm = level_mapping(query)?;
    Some(lm.difference_of_levels() as usize)
}

/// `Pr[the DWT instance has a present directed path of length ≥ m]`, for a
/// *connected* DWT instance, `m ≥ 1`. Returns `None` when the instance is
/// not a connected DWT.
pub fn dwt_long_path_probability<W: Weight>(instance: &ProbGraph, m: usize) -> Option<W> {
    if m == 0 {
        return Some(W::one());
    }
    let view = as_downward_tree(instance.graph())?;
    // dist[v]: over states (d, sat) — d = longest present downward path
    // starting at v (capped at m), sat = some path ≥ m inside v's subtree.
    // States indexed d * 2 + sat.
    let n = instance.graph().n_vertices();
    let mut dist: Vec<Vec<W>> = vec![Vec::new(); n];
    for &v in view.order.iter().rev() {
        // Start: no children processed — d = 0, sat = false.
        let mut cur = vec![W::zero(); (m + 1) * 2];
        cur[0] = W::one();
        for &e in instance.graph().out_edges(v) {
            let c = instance.graph().edge(e).dst;
            let p = W::from_rational(instance.prob(e));
            let q = p.complement();
            let child = std::mem::take(&mut dist[c]);
            let mut next = vec![W::zero(); (m + 1) * 2];
            for d in 0..=m {
                for sat in 0..2 {
                    let w = cur[d * 2 + sat].clone();
                    if w.is_zero() {
                        continue;
                    }
                    for dc in 0..=m {
                        for satc in 0..2 {
                            let wc = &child[dc * 2 + satc];
                            if wc.is_zero() {
                                continue;
                            }
                            let joint = w.mul(wc);
                            let sat2 = sat | satc;
                            // Edge absent: d unchanged.
                            if !q.is_zero() {
                                let idx = d * 2 + sat2;
                                next[idx] = next[idx].add(&joint.mul(&q));
                            }
                            // Edge present: d' = max(d, dc + 1) capped.
                            if !p.is_zero() {
                                let d2 = d.max((dc + 1).min(m));
                                let idx = d2 * 2 + sat2;
                                next[idx] = next[idx].add(&joint.mul(&p));
                            }
                        }
                    }
                }
            }
            cur = next;
        }
        // Finalize v: saturate if d reached m.
        let mut fin = vec![W::zero(); (m + 1) * 2];
        for d in 0..=m {
            for sat in 0..2 {
                let w = cur[d * 2 + sat].clone();
                if w.is_zero() {
                    continue;
                }
                let sat2 = if d >= m { 1 } else { sat };
                fin[d * 2 + sat2] = fin[d * 2 + sat2].add(&w);
            }
        }
        dist[v] = fin;
    }
    let root = &dist[view.root];
    let mut total = W::zero();
    for d in 0..=m {
        total = total.add(&root[d * 2 + 1]);
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use phom_graph::generate;
    use phom_graph::graded::longest_directed_path;
    use phom_graph::{GraphBuilder, Label};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const U: Label = Label::UNLABELED;

    #[test]
    fn collapse_length_basics() {
        assert_eq!(collapse_length(&Graph::directed_path(3)), Some(3));
        assert_eq!(collapse_length(&Graph::directed_path(0)), Some(0));
        // Figure 6's DAG has difference of levels 5.
        let (g, _) = phom_graph::fixtures::figure_6_graded_dag();
        assert_eq!(collapse_length(&g), Some(5));
        // Non-graded: jumping edge.
        let mut b = GraphBuilder::with_vertices(3);
        b.edge(0, 1, U);
        b.edge(1, 2, U);
        b.edge(0, 2, U);
        assert_eq!(collapse_length(&b.build()), None);
        // Note the difference of levels is NOT the longest path (Figure 6):
        // → ← → has difference 1 but a longest path of 1 as well; build the
        // N-shape → → ← with difference 2.
        let g = Graph::two_way_path(&[
            (phom_graph::Dir::Forward, U),
            (phom_graph::Dir::Forward, U),
            (phom_graph::Dir::Backward, U),
        ]);
        assert_eq!(collapse_length(&g), Some(2));
    }

    #[test]
    fn long_path_probability_on_a_path_instance() {
        // Instance: → → with probs 1/2, 1/3. Pr[path ≥ 2] = 1/6,
        // Pr[path ≥ 1] = 1 − 1/2·2/3 = 2/3.
        let g = Graph::directed_path(2);
        let h = ProbGraph::new(
            g,
            vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 3)],
        );
        assert_eq!(
            dwt_long_path_probability::<Rational>(&h, 2),
            Some(Rational::from_ratio(1, 6))
        );
        assert_eq!(
            dwt_long_path_probability::<Rational>(&h, 1),
            Some(Rational::from_ratio(2, 3))
        );
        assert_eq!(
            dwt_long_path_probability::<Rational>(&h, 3),
            Some(Rational::zero())
        );
    }

    #[test]
    fn random_dwt_instances_match_brute_force() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..80 {
            let g = generate::downward_tree(rng.gen_range(1..9), 1, &mut rng);
            let h = generate::with_probabilities(
                g,
                generate::ProbProfile {
                    certain_ratio: 0.25,
                    denominator: 4,
                },
                &mut rng,
            );
            for m in 1..5 {
                let got = dwt_long_path_probability::<Rational>(&h, m).unwrap();
                let query = Graph::directed_path(m);
                let expect = bruteforce::probability(&query, &h);
                assert_eq!(got, expect, "m={m}, h={:?}", h.graph());
            }
        }
    }

    #[test]
    fn full_prop_36_vs_brute_force_random_queries() {
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..80 {
            // Arbitrary unlabeled queries: graded, non-graded, cyclic,
            // disconnected.
            let query = if rng.gen_bool(0.5) {
                generate::graded_query(rng.gen_range(1..7), 2, 3, &mut rng)
            } else {
                generate::arbitrary(rng.gen_range(1..5), 0.3, 1, &mut rng)
            };
            // ⊔DWT instance.
            let h_graph = generate::union_of(rng.gen_range(1..3), &mut rng, |r| {
                generate::downward_tree(r.gen_range(1..6), 1, r)
            });
            let h = generate::with_probabilities(
                h_graph,
                generate::ProbProfile {
                    certain_ratio: 0.25,
                    denominator: 4,
                },
                &mut rng,
            );
            let got = probability(&query, &h).unwrap();
            let expect = bruteforce::probability(&query, &h);
            assert_eq!(got, expect, "query={query:?} h={:?}", h.graph());
        }
    }

    #[test]
    fn difference_of_levels_claim_on_worlds() {
        // The claim inside Prop 3.6's proof: on any DWT world, a graded
        // connected query maps iff the world has a path of length m =
        // difference of levels. Spot-check by brute force.
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..60 {
            let query = generate::graded_query(rng.gen_range(2..7), 2, 3, &mut rng);
            let m = match collapse_length(&query) {
                Some(m) => m,
                None => continue,
            };
            let tree = generate::downward_tree(rng.gen_range(1..8), 1, &mut rng);
            let maps = phom_graph::hom::exists_hom(&query, &tree);
            let lp = longest_directed_path(&tree).unwrap();
            assert_eq!(maps, lp >= m, "query={query:?} tree={tree:?} m={m}");
        }
    }

    use phom_graph::Graph;
}
