//! Proposition 5.5 (and the discussion in Sections 3.1/3.3): in the
//! unlabeled setting, a `⊔DWT` query is equivalent — on **every** instance
//! — to the one-way path `→^m`, where `m` is the maximum height of a
//! component.
//!
//! (Contrast with Prop 3.6's collapse, which applies to *arbitrary* graded
//! queries but only on `⊔DWT` instances.)

use phom_graph::classes::classify;
use phom_graph::graded::longest_directed_path;
use phom_graph::Graph;

/// If the query is effectively unlabeled (at most one distinct label) and
/// all of its components are downward trees (1WP included), returns the
/// equivalent query `→^m`. Returns `None` otherwise.
///
/// The collapsed path carries the query's own label: a single-label query
/// other than `Label(0)` must keep that label, or downstream label-aware
/// routes (Prop 4.10/4.11) would match nothing and silently report
/// probability 0.
pub fn collapse_union_dwt_query(query: &Graph) -> Option<Graph> {
    if !query.is_effectively_unlabeled() {
        return None;
    }
    let cls = classify(query);
    if !cls.in_union_class(phom_graph::ConnClass::DownwardTree) {
        return None;
    }
    // Height of a DWT = its longest directed path (well-defined, acyclic).
    let m = longest_directed_path(query).expect("DWTs are acyclic");
    let label = query
        .labels_used()
        .first()
        .copied()
        .unwrap_or(phom_graph::Label::UNLABELED);
    Some(Graph::one_way_path(&vec![label; m]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::fixtures;
    use phom_graph::generate;
    use phom_graph::hom::equivalent;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dwt_collapses_to_height_path() {
        let tree = fixtures::figure_4_dwt(); // height 3
        let collapsed = collapse_union_dwt_query(&tree).unwrap();
        assert_eq!(collapsed.n_edges(), 3);
        assert!(equivalent(&tree, &collapsed));
    }

    #[test]
    fn union_takes_max_height() {
        let u = Graph::disjoint_union(&[&Graph::directed_path(2), &fixtures::figure_4_dwt()]);
        let collapsed = collapse_union_dwt_query(&u).unwrap();
        assert_eq!(collapsed.n_edges(), 3);
        assert!(equivalent(&u, &collapsed));
    }

    #[test]
    fn labeled_and_non_dwt_queries_do_not_collapse() {
        assert!(collapse_union_dwt_query(&fixtures::figure_3_owp()).is_none()); // labeled
        assert!(collapse_union_dwt_query(&fixtures::figure_4_polytree()).is_none());
        // two-way
    }

    #[test]
    fn random_dwt_unions_are_equivalent_to_their_collapse() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let q = generate::union_of(rng.gen_range(1..4), &mut rng, |r| {
                generate::downward_tree(r.gen_range(1..7), 1, r)
            });
            let collapsed = collapse_union_dwt_query(&q).unwrap();
            assert!(equivalent(&q, &collapsed), "q={q:?}");
        }
    }

    #[test]
    fn single_label_queries_keep_their_label() {
        // Regression: a query whose only label is not Label(0) is still
        // "effectively unlabeled", but its collapse must keep the label or
        // label-aware routes downstream match nothing.
        let s = phom_graph::Label(1);
        let q = Graph::one_way_path(&[s, s]);
        let collapsed = collapse_union_dwt_query(&q).unwrap();
        assert_eq!(collapsed.labels_used(), vec![s]);
        assert!(equivalent(&q, &collapsed));
    }

    #[test]
    fn edgeless_query_collapses_to_single_vertex() {
        let q = phom_graph::GraphBuilder::with_vertices(3).build();
        let collapsed = collapse_union_dwt_query(&q).unwrap();
        assert_eq!(collapsed.n_vertices(), 1);
        assert_eq!(collapsed.n_edges(), 0);
    }
}
