//! Proposition 4.10: `PHomL(1WP, DWT)` is PTIME.
//!
//! The matches of a one-way-path query `u₁ -R₁→ … -R_m→ u_{m+1}` in a
//! downward tree are exactly the downward paths of length `m` whose labels
//! spell `R₁ … R_m`; each vertex of the instance is the bottom endpoint of
//! at most one such path, so there are at most `n` candidate matches.
//!
//! Two evaluation strategies, cross-checked:
//!
//! * **Lineage + β-acyclicity** (the paper's proof): one clause per match;
//!   eliminating edge variables bottom-up (each leaf's parent edge first)
//!   is a β-elimination order, and Theorem 4.9's algorithm finishes the
//!   job.
//! * **Direct run-length DP** (ablation ABL-1): process the tree top-down;
//!   the only relevant state at a vertex is the length of the streak of
//!   *present* edges ending there (capped at `m`), since label matching is
//!   static per vertex. `O(n·m)`.

use phom_graph::classes::{as_downward_tree, as_one_way_path};
use phom_graph::{Graph, ProbGraph};
use phom_lineage::beta::beta_dnf_probability_with_order;
use phom_lineage::Dnf;
use phom_num::Weight;

/// The lineage DNF of a 1WP query on a connected DWT instance, with a valid
/// β-elimination order on its variables (the instance's edges, bottom-up).
/// Returns `None` when the inputs do not have the required shapes.
pub fn lineage(query: &Graph, instance: &Graph) -> Option<(Dnf, Vec<usize>)> {
    let qpath = as_one_way_path(query)?;
    let view = as_downward_tree(instance)?;
    let m = qpath.labels.len();
    let mut dnf = Dnf::falsum(instance.n_edges());
    if m == 0 {
        dnf.push_clause(Vec::new()); // single-vertex query: constant true
    } else {
        // For each vertex v at depth ≥ m, walk up m edges and compare
        // labels (from the bottom: query labels reversed).
        for &v in &view.order {
            if view.depth[v] < m {
                continue;
            }
            let mut clause = Vec::with_capacity(m);
            let mut cur = v;
            let mut ok = true;
            for i in 0..m {
                let (parent, e) = view.parent[cur].expect("depth ≥ m");
                if instance.edge(e).label != qpath.labels[m - 1 - i] {
                    ok = false;
                    break;
                }
                clause.push(e);
                cur = parent;
            }
            if ok {
                dnf.push_clause(clause);
            }
        }
    }
    // β-elimination order: edges bottom-up — eliminate each vertex's parent
    // edge in reverse-BFS (deepest first) order.
    let order: Vec<usize> = view
        .order
        .iter()
        .rev()
        .filter_map(|&v| view.parent[v].map(|(_, e)| e))
        .collect();
    Some((dnf, order))
}

/// `Pr(G ⇝ H)` via the β-acyclic lineage (the paper's algorithm). Requires
/// a 1WP query and a connected DWT instance.
pub fn probability_lineage<W: Weight>(query: &Graph, instance: &ProbGraph) -> Option<W> {
    let (dnf, order) = lineage(query, instance.graph())?;
    if dnf.is_valid() {
        return Some(W::one());
    }
    let probs: Vec<W> = instance.probs().iter().map(W::from_rational).collect();
    Some(
        beta_dnf_probability_with_order(&dnf, &probs, &order)
            .expect("bottom-up is a valid β-elimination order for DWT lineages"),
    )
}

/// `Pr(G ⇝ H)` via the direct run-length DP (ablation). Same preconditions.
pub fn probability_dp<W: Weight>(query: &Graph, instance: &ProbGraph) -> Option<W> {
    let qpath = as_one_way_path(query)?;
    let view = as_downward_tree(instance.graph())?;
    let m = qpath.labels.len();
    if m == 0 {
        return Some(W::one());
    }
    let g = instance.graph();
    // matches[v]: the upward path of m edges above v exists and spells the
    // query labels (bottom-up reversed).
    let mut matches = vec![false; g.n_vertices()];
    for &v in &view.order {
        if view.depth[v] < m {
            continue;
        }
        let mut cur = v;
        let mut ok = true;
        for i in 0..m {
            let (parent, e) = view.parent[cur].unwrap();
            if g.edge(e).label != qpath.labels[m - 1 - i] {
                ok = false;
                break;
            }
            cur = parent;
        }
        matches[v] = ok;
    }
    // fail[v][r] = Pr[no match fires in subtree(v) | streak of present
    // edges ending at v has length r (capped at m)].
    let mut fail: Vec<Vec<W>> = vec![Vec::new(); g.n_vertices()];
    for &v in view.order.iter().rev() {
        let mut row = Vec::with_capacity(m + 1);
        for r in 0..=m {
            if matches[v] && r >= m {
                row.push(W::zero());
                continue;
            }
            let mut acc = W::one();
            for &e in g.out_edges(v) {
                let c = g.edge(e).dst;
                let p = W::from_rational(instance.prob(e));
                let q = p.complement();
                let term = q.mul(&fail[c][0]).add(&p.mul(&fail[c][(r + 1).min(m)]));
                acc = acc.mul(&term);
            }
            row.push(acc);
        }
        fail[v] = row;
    }
    Some(fail[view.root][0].complement())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use phom_graph::generate;
    use phom_graph::Label;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const R: Label = Label(0);
    const S: Label = Label(1);

    #[test]
    fn single_edge_query_on_small_tree() {
        // Tree: root 0 with children 1 (R, 1/2) and 2 (S, 1/3). Query: -R→.
        let tree = Graph::downward_tree(&[None, Some((0, R)), Some((0, S))]);
        let h = ProbGraph::new(
            tree,
            vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 3)],
        );
        let q = Graph::one_way_path(&[R]);
        let p = probability_lineage(&q, &h).unwrap();
        assert_eq!(p, Rational::from_ratio(1, 2));
        assert_eq!(probability_dp::<Rational>(&q, &h), Some(p));
    }

    #[test]
    fn label_mismatch_gives_zero() {
        let tree = Graph::downward_tree(&[None, Some((0, R))]);
        let h = ProbGraph::certain(tree);
        let q = Graph::one_way_path(&[S]);
        assert!(probability_lineage::<Rational>(&q, &h).unwrap().is_zero());
        assert!(probability_dp::<Rational>(&q, &h).unwrap().is_zero());
    }

    #[test]
    fn query_longer_than_tree_gives_zero() {
        let tree = Graph::downward_tree(&[None, Some((0, R))]);
        let h = ProbGraph::certain(tree);
        let q = Graph::one_way_path(&[R, R]);
        assert!(probability_lineage::<Rational>(&q, &h).unwrap().is_zero());
    }

    #[test]
    fn empty_query_is_certain() {
        let tree = Graph::downward_tree(&[None, Some((0, R))]);
        let h = ProbGraph::certain(tree);
        let q = Graph::directed_path(0);
        assert!(probability_lineage::<Rational>(&q, &h).unwrap().is_one());
        assert!(probability_dp::<Rational>(&q, &h).unwrap().is_one());
    }

    #[test]
    fn overlapping_matches_share_edges() {
        // Path instance R R R (as a degenerate tree), query R R: two
        // overlapping matches sharing the middle edge.
        let inst = Graph::one_way_path(&[R, R, R]);
        let h = ProbGraph::new(
            inst,
            vec![
                Rational::from_ratio(1, 2),
                Rational::from_ratio(1, 3),
                Rational::from_ratio(1, 5),
            ],
        );
        let q = Graph::one_way_path(&[R, R]);
        let expect = bruteforce::probability(&q, &h);
        assert_eq!(probability_lineage(&q, &h), Some(expect.clone()));
        assert_eq!(probability_dp::<Rational>(&q, &h), Some(expect));
    }

    #[test]
    fn random_labeled_dwts_match_brute_force() {
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..120 {
            let tree = generate::downward_tree(rng.gen_range(1..10), 2, &mut rng);
            let h = generate::with_probabilities(
                tree,
                generate::ProbProfile {
                    certain_ratio: 0.3,
                    denominator: 4,
                },
                &mut rng,
            );
            let m = rng.gen_range(1..4);
            let q = match generate::planted_path_query(h.graph(), m, &mut rng) {
                Some(q) => q,
                None => generate::one_way_path(m, 2, &mut rng),
            };
            let expect = bruteforce::probability(&q, &h);
            let lin: Rational = probability_lineage(&q, &h).unwrap();
            let dp: Rational = probability_dp(&q, &h).unwrap();
            assert_eq!(lin, expect, "q={q:?} h={:?}", h.graph());
            assert_eq!(dp, expect, "q={q:?} h={:?}", h.graph());
        }
    }

    #[test]
    fn lineage_is_beta_acyclic() {
        let mut rng = SmallRng::seed_from_u64(32);
        for _ in 0..40 {
            let tree = generate::downward_tree(rng.gen_range(2..20), 2, &mut rng);
            let q = generate::one_way_path(rng.gen_range(1..4), 2, &mut rng);
            let (dnf, _) = lineage(&q, &tree).unwrap();
            assert!(dnf.hypergraph().is_beta_acyclic());
        }
    }

    use phom_graph::Graph;
    use phom_graph::ProbGraph;
    use phom_num::Rational;
}
