//! OBDD evaluation of the labeled tractable cells (ablation route).
//!
//! The paper's conclusion asks for "extensions of the β-acyclicity
//! approach"; one classical alternative is to compile the same lineage
//! DNFs into a reduced ordered BDD ([`phom_lineage::obdd`]) and do
//! weighted model counting there. This gives a third independent
//! evaluator for the labeled cells — the test suite checks β-elimination,
//! the direct DPs, the d-DNNF circuits and the OBDDs all agree, and the
//! `ablations` bench compares their cost.
//!
//! **Variable order matters — measurably.** For the 2WP cell (Prop 4.11)
//! the path order is both the β-elimination order and a good OBDD order:
//! the interval clauses crossing any cut are nested, so compilation stays
//! linear. For the DWT cell (Prop 4.10) the two notions *diverge*: the
//! bottom-up (reverse-BFS) β-elimination order interleaves unrelated
//! branches, and the OBDD blows up super-quadratically (hundreds of
//! thousands of nodes at n = 400 — measured by the `ablations` bench),
//! even though β-elimination along the same order is linear. A **DFS
//! preorder** of the edges fixes this: every clause (a downward path of
//! length m) lies along the DFS stack, so a cut only needs the run of
//! present stack edges ending at the current vertex — width `O(m)`, size
//! `O(n·m)`. β-acyclicity is therefore *not* a proxy for OBDD-friendly
//! orders, which is why the paper's Theorem 4.9 route is the more robust
//! one; the default entry points here use the DFS order.

use phom_graph::{Graph, ProbGraph};
use phom_lineage::obdd::Manager;
use phom_lineage::Dnf;
use phom_num::Weight;

/// Compiles a lineage DNF into an OBDD whose variable order is the given
/// β-elimination order (a permutation of the instance's edge ids) and
/// returns `(manager, root, size)`.
pub fn compile(dnf: &Dnf, order: Vec<usize>) -> (Manager, usize, usize) {
    let mut m = Manager::with_order(order);
    let f = m.from_dnf(dnf);
    let size = m.size(f);
    (m, f, size)
}

/// DFS preorder of a DWT's edges: roots first, each root-to-leaf path's
/// edges appear in stack order. The OBDD-friendly order for Prop 4.10
/// lineages (see the module docs). Returns `None` if some edge is not
/// reachable from an in-degree-0 vertex (not a DWT).
pub fn dfs_edge_order(instance: &Graph) -> Option<Vec<usize>> {
    let mut order = Vec::with_capacity(instance.n_edges());
    let mut stack = Vec::new();
    for root in 0..instance.n_vertices() {
        if instance.in_degree(root) != 0 {
            continue;
        }
        stack.push(root);
        while let Some(v) = stack.pop() {
            for &e in instance.out_edges(v) {
                order.push(e);
                stack.push(instance.edge(e).dst);
            }
        }
    }
    (order.len() == instance.n_edges()).then_some(order)
}

/// Prop 4.10 via OBDD along the DFS edge order: `PHomL(1WP, DWT)`.
/// `None` when the inputs do not have the required shapes.
pub fn probability_obdd_dwt<W: Weight>(query: &Graph, instance: &ProbGraph) -> Option<W> {
    let (dnf, _) = super::path_on_dwt::lineage(query, instance.graph())?;
    let order = dfs_edge_order(instance.graph())?;
    let probs: Vec<W> = instance.probs().iter().map(W::from_rational).collect();
    let (m, f, _) = compile(&dnf, order);
    Some(m.probability(f, &probs))
}

/// Prop 4.11 via OBDD: `PHomL(Connected, 2WP)`. `None` when the inputs do
/// not have the required shapes.
pub fn probability_obdd_2wp<W: Weight>(query: &Graph, instance: &ProbGraph) -> Option<W> {
    let (dnf, order) = super::connected_on_2wp::lineage(query, instance.graph())?;
    let probs: Vec<W> = instance.probs().iter().map(W::from_rational).collect();
    let (m, f, _) = compile(&dnf, order);
    Some(m.probability(f, &probs))
}

/// OBDD sizes reached on the Prop 4.10 lineage under the two candidate
/// variable orders (reporting hook for the ablation bench):
/// `(dfs-order size, β-elimination-order size, dnf clauses)`.
pub fn obdd_size_dwt(query: &Graph, instance: &Graph) -> Option<(usize, usize, usize)> {
    let (dnf, beta_order) = super::path_on_dwt::lineage(query, instance)?;
    let dfs_order = dfs_edge_order(instance)?;
    let n_clauses = dnf.clauses().len();
    let (_, _, dfs_size) = compile(&dnf, dfs_order);
    let (_, _, beta_size) = compile(&dnf, beta_order);
    Some((dfs_size, beta_size, n_clauses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{connected_on_2wp, path_on_dwt};
    use crate::bruteforce;
    use phom_graph::generate::{self, ProbProfile};
    use phom_num::Rational;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dwt_route_agrees_with_all_other_evaluators() {
        let mut rng = SmallRng::seed_from_u64(0x0B0D);
        for trial in 0..30 {
            let h_graph = generate::downward_tree(rng.gen_range(2..10), 2, &mut rng);
            let h = generate::with_probabilities(h_graph, ProbProfile::half(), &mut rng);
            let q = match generate::planted_path_query(h.graph(), rng.gen_range(1..4), &mut rng) {
                Some(q) => q,
                None => generate::one_way_path(rng.gen_range(1..4), 2, &mut rng),
            };
            let obdd: Rational = probability_obdd_dwt(&q, &h).expect("1WP on DWT");
            let beta: Rational = path_on_dwt::probability_lineage(&q, &h).unwrap();
            let dp: Rational = path_on_dwt::probability_dp(&q, &h).unwrap();
            let bf = bruteforce::probability(&q, &h);
            assert_eq!(obdd, beta, "trial {trial}");
            assert_eq!(obdd, dp, "trial {trial}");
            assert_eq!(obdd, bf, "trial {trial}");
        }
    }

    #[test]
    fn twp_route_agrees_with_all_other_evaluators() {
        let mut rng = SmallRng::seed_from_u64(0x2B0D);
        for trial in 0..30 {
            let h_graph = generate::two_way_path(rng.gen_range(1..9), 2, &mut rng);
            let h = generate::with_probabilities(h_graph, ProbProfile::half(), &mut rng);
            let q = match rng.gen_range(0..2) {
                0 => generate::two_way_path(rng.gen_range(1..4), 2, &mut rng),
                _ => generate::connected(rng.gen_range(2..5), 1, 2, &mut rng),
            };
            let obdd: Rational = probability_obdd_2wp(&q, &h).expect("connected on 2WP");
            let beta: Rational = connected_on_2wp::probability_lineage(&q, &h).unwrap();
            let bf = bruteforce::probability(&q, &h);
            assert_eq!(obdd, beta, "trial {trial}");
            assert_eq!(obdd, bf, "trial {trial}");
        }
    }

    #[test]
    fn dfs_order_stays_linear_where_beta_order_blows_up() {
        // Short queries on a sizable DWT: along the DFS preorder the OBDD
        // is O(n·m); along the reverse-BFS β-elimination order it is
        // dramatically larger (the module-docs ablation).
        let mut rng = SmallRng::seed_from_u64(0x51CE);
        let h = generate::downward_tree(200, 2, &mut rng);
        let q = generate::planted_path_query(&h, 2, &mut rng)
            .unwrap_or_else(|| generate::one_way_path(2, 2, &mut rng));
        let m = q.n_edges();
        let (dfs_size, beta_size, _clauses) = obdd_size_dwt(&q, &h).unwrap();
        assert!(
            dfs_size <= 4 * h.n_edges() * (m + 1) + 16,
            "dfs size = {dfs_size}"
        );
        assert!(beta_size >= dfs_size, "β-order should not beat DFS here");
    }

    #[test]
    fn dfs_edge_order_covers_dwts_and_rejects_cycles() {
        let mut rng = SmallRng::seed_from_u64(0xD0F5);
        let h = generate::downward_tree(30, 2, &mut rng);
        let order = dfs_edge_order(&h).unwrap();
        assert_eq!(order.len(), h.n_edges());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), h.n_edges(), "order is a permutation");
        // A directed cycle has no in-degree-0 root: rejected.
        let mut b = phom_graph::GraphBuilder::with_vertices(3);
        for i in 0..3 {
            b.edge(i, (i + 1) % 3, phom_graph::Label::UNLABELED);
        }
        assert!(dfs_edge_order(&b.build()).is_none());
    }
}
