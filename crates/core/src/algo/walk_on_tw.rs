//! Bounded-treewidth instances: the Section 6 future-work generalization
//! of Proposition 5.5.
//!
//! The paper conjectures that the tractability of `PHom̸L(⊔DWT, PT)`
//! "adapts to" bounded-treewidth instances. This module realizes that: a
//! `⊔DWT` query is equivalent to `→^m` on **every** instance
//! ([`super::collapse`]), and `→^m ⇝ H'` holds iff the possible world `H'`
//! contains a **directed walk** with `m` edges (homomorphisms need not be
//! injective, so walks — not simple paths — are the right notion; on the
//! acyclic worlds of polytree instances the two coincide, which is why the
//! paper can speak of paths).
//!
//! The algorithm is a dynamic program over a *nice tree decomposition with
//! edge introduction* ([`phom_graph::treedecomp`]). The DP state at a node
//! summarizes a possible world of the already-introduced edges by its
//! **walk profile** relative to the current bag `B`:
//!
//! * `d[u][v]` for `u, v ∈ B` — the maximum number of edges on a walk from
//!   `u` to `v` inside the processed part, capped at `m` (`⊥` if none;
//!   `d[v][v] ≥ 0` always);
//! * `in[v]` / `out[v]` — the maximum processed walk ending / starting at
//!   `v` (from/to anywhere, including forgotten vertices);
//! * `best` — the maximum processed walk overall, capped at `m`.
//!
//! Because walks may repeat vertices and edges, the profile algebra is a
//! max-plus closure with saturation at `m`: a directed cycle in the
//! processed part pumps every walk through it up to the cap, with no
//! disjointness bookkeeping. Two worlds with the same profile are
//! interchangeable for the rest of the computation, so the DP aggregates
//! their probability mass, and tuple-independence makes the join-node
//! combination a simple product. The final answer is the total mass of
//! profiles with `best = m`.
//!
//! For a fixed width `k` the number of profiles is at most
//! `(m + 2)^{(k+1)² + 2(k+1) + 1}` — polynomial in the instance for fixed
//! `k` and `m`, and far smaller in practice. Width 1 (polytrees) recovers
//! Proposition 5.4/5.5 and is cross-checked against the tree-automata
//! pipeline; small dense instances are cross-checked against brute force.

use phom_graph::treedecomp::{NiceDecomposition, NiceNode};
use phom_graph::{Graph, Label, ProbGraph};
use phom_num::Weight;
use std::collections::HashMap;

/// Sentinel for "no walk".
const NONE: u32 = u32::MAX;

/// A walk profile, stored flat: `d` (k×k), then `in` (k), `out` (k), then
/// `best`. `k` is the bag size of the owning node.
type Key = Box<[u32]>;

#[inline]
fn profile_len(k: usize) -> usize {
    k * k + 2 * k + 1
}

#[inline]
fn idx_d(k: usize, u: usize, v: usize) -> usize {
    u * k + v
}

#[inline]
fn idx_in(k: usize, v: usize) -> usize {
    k * k + v
}

#[inline]
fn idx_out(k: usize, v: usize) -> usize {
    k * k + k + v
}

#[inline]
fn idx_best(k: usize) -> usize {
    k * k + 2 * k
}

/// Saturating max-plus addition: `⊥` absorbs, sums cap at `m`.
#[inline]
fn splus(a: u32, b: u32, m: u32) -> u32 {
    if a == NONE || b == NONE {
        NONE
    } else {
        (a + b).min(m)
    }
}

#[inline]
fn smax(a: u32, b: u32) -> u32 {
    if a == NONE {
        b
    } else if b == NONE {
        a
    } else {
        a.max(b)
    }
}

/// Recomputes the closure of a profile in place after its `d` entries were
/// enlarged (new edge, or join merge): transitive max-plus closure of `d`
/// with saturation, then the `in`/`out` single passes, then the `best`
/// update. `in`/`out`/`best` entries must hold the pre-update values.
fn close(key: &mut [u32], k: usize, m: u32) {
    // Transitive closure of d. Values are monotone and capped, so the
    // relaxation terminates; bags are small, so the loop is cheap.
    loop {
        let mut changed = false;
        for x in 0..k {
            for u in 0..k {
                let dux = key[idx_d(k, u, x)];
                if dux == NONE {
                    continue;
                }
                for v in 0..k {
                    let s = splus(dux, key[idx_d(k, x, v)], m);
                    if s != NONE && (key[idx_d(k, u, v)] == NONE || s > key[idx_d(k, u, v)]) {
                        key[idx_d(k, u, v)] = s;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // in'(v) = max_u in(u) + d(u, v); out'(u) = max_v d(u, v) + out(v).
    // One pass each suffices because d is closed (a walk ending at v
    // decomposes at its first bag occurrence).
    let ins: Vec<u32> = (0..k)
        .map(|v| {
            (0..k).fold(key[idx_in(k, v)], |acc, u| {
                smax(acc, splus(key[idx_in(k, u)], key[idx_d(k, u, v)], m))
            })
        })
        .collect();
    let outs: Vec<u32> = (0..k)
        .map(|u| {
            (0..k).fold(key[idx_out(k, u)], |acc, v| {
                smax(acc, splus(key[idx_d(k, u, v)], key[idx_out(k, v)], m))
            })
        })
        .collect();
    for v in 0..k {
        key[idx_in(k, v)] = ins[v];
        key[idx_out(k, v)] = outs[v];
    }
    // Any walk created by the update passes through a bag vertex, so
    // in'(v) ⧺ out'(v) covers it (walk concatenation at v is a walk).
    let mut best = key[idx_best(k)];
    for v in 0..k {
        best = smax(best, splus(key[idx_in(k, v)], key[idx_out(k, v)], m));
    }
    key[idx_best(k)] = best;
}

/// `Pr(∃ directed walk with ≥ m edges)` over the possible worlds of
/// `instance`, restricted to the edges with `usable[e] = true` (walks may
/// only traverse usable edges; non-usable edges still exist
/// probabilistically but carry no walk — this is how a single-label query
/// on a multi-label instance is handled). `nice` must be a nice
/// decomposition of the instance's graph.
pub fn long_walk_probability_with<W: Weight>(
    instance: &ProbGraph,
    m: usize,
    nice: &NiceDecomposition,
    usable: &[bool],
) -> W {
    assert_eq!(usable.len(), instance.graph().n_edges());
    if m == 0 {
        // The empty walk exists in every world (instances are non-empty).
        return W::one();
    }
    let m32 = u32::try_from(m).expect("query length fits in u32");
    let n_nodes = nice.n_nodes();
    let mut states: Vec<Option<HashMap<Key, W>>> = vec![None; n_nodes];
    for i in 0..n_nodes {
        let bag = nice.bag(i);
        let k = bag.len();
        let map: HashMap<Key, W> = match nice.node(i) {
            NiceNode::Leaf => {
                let mut key = vec![NONE; profile_len(0)];
                key[idx_best(0)] = 0;
                HashMap::from([(key.into_boxed_slice(), W::one())])
            }
            NiceNode::Introduce { child, v } => {
                let cbag = nice.bag(*child);
                let pos_v = bag.binary_search(v).expect("introduced vertex in bag");
                let child_states = states[*child].take().expect("children precede parents");
                let ck = cbag.len();
                let mut map = HashMap::with_capacity(child_states.len());
                for (ckey, w) in child_states {
                    let mut key = vec![NONE; profile_len(k)];
                    // Positions of child-bag vertices in the new bag.
                    for (ci, cv) in cbag.iter().enumerate() {
                        let ni = bag.binary_search(cv).expect("child bag ⊆ bag");
                        for (cj, cu) in cbag.iter().enumerate() {
                            let nj = bag.binary_search(cu).expect("child bag ⊆ bag");
                            key[idx_d(k, ni, nj)] = ckey[idx_d(ck, ci, cj)];
                        }
                        key[idx_in(k, ni)] = ckey[idx_in(ck, ci)];
                        key[idx_out(k, ni)] = ckey[idx_out(ck, ci)];
                    }
                    // The new vertex is isolated in the processed part.
                    key[idx_d(k, pos_v, pos_v)] = 0;
                    key[idx_in(k, pos_v)] = 0;
                    key[idx_out(k, pos_v)] = 0;
                    key[idx_best(k)] = ckey[idx_best(ck)];
                    merge(&mut map, key.into_boxed_slice(), w);
                }
                map
            }
            NiceNode::Forget { child, v } => {
                let cbag = nice.bag(*child);
                let ck = cbag.len();
                let pos_v = cbag
                    .binary_search(v)
                    .expect("forgotten vertex in child bag");
                let child_states = states[*child].take().expect("children precede parents");
                let mut map = HashMap::with_capacity(child_states.len());
                for (ckey, w) in child_states {
                    let mut key = vec![NONE; profile_len(k)];
                    let keep: Vec<usize> = (0..ck).filter(|&i| i != pos_v).collect();
                    for (ni, &ci) in keep.iter().enumerate() {
                        for (nj, &cj) in keep.iter().enumerate() {
                            key[idx_d(k, ni, nj)] = ckey[idx_d(ck, ci, cj)];
                        }
                        key[idx_in(k, ni)] = ckey[idx_in(ck, ci)];
                        key[idx_out(k, ni)] = ckey[idx_out(ck, ci)];
                    }
                    key[idx_best(k)] = ckey[idx_best(ck)];
                    merge(&mut map, key.into_boxed_slice(), w);
                }
                map
            }
            NiceNode::IntroduceEdge { child, edge } => {
                let child_states = states[*child].take().expect("children precede parents");
                let e = instance.graph().edge(*edge);
                let p = W::from_rational(instance.prob(*edge));
                let q = p.complement();
                if !usable[*edge] {
                    // The edge exists probabilistically but carries no
                    // walk: both branches leave the profile unchanged, so
                    // the masses just stay put (p + (1 − p) = 1).
                    child_states
                } else {
                    let pos_a = bag.binary_search(&e.src).expect("endpoint in bag");
                    let pos_b = bag.binary_search(&e.dst).expect("endpoint in bag");
                    let mut map = HashMap::with_capacity(child_states.len() * 2);
                    for (ckey, w) in child_states {
                        if !q.is_zero() {
                            merge(&mut map, ckey.clone(), w.mul(&q));
                        }
                        if !p.is_zero() {
                            let mut key = ckey.into_vec();
                            let cur = key[idx_d(k, pos_a, pos_b)];
                            key[idx_d(k, pos_a, pos_b)] = smax(cur, 1.min(m32));
                            close(&mut key, k, m32);
                            merge(&mut map, key.into_boxed_slice(), w.mul(&p));
                        }
                    }
                    map
                }
            }
            NiceNode::Join { left, right } => {
                let left_states = states[*left].take().expect("children precede parents");
                let right_states = states[*right].take().expect("children precede parents");
                let mut map = HashMap::with_capacity(left_states.len().max(right_states.len()));
                let plen = profile_len(k);
                for (lkey, lw) in &left_states {
                    for (rkey, rw) in &right_states {
                        let mut key = vec![NONE; plen];
                        for i in 0..plen {
                            key[i] = smax(lkey[i], rkey[i]);
                        }
                        close(&mut key, k, m32);
                        merge(&mut map, key.into_boxed_slice(), lw.mul(rw));
                    }
                }
                map
            }
        };
        states[i] = Some(map);
    }
    let root = states[nice.root()].take().expect("root computed");
    let mut total = W::zero();
    for (key, w) in root {
        if key[idx_best(0)] == m32 {
            total = total.add(&w);
        }
    }
    total
}

fn merge<W: Weight>(map: &mut HashMap<Key, W>, key: Key, w: W) {
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut o) => {
            let sum = o.get().add(&w);
            *o.get_mut() = sum;
        }
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(w);
        }
    }
}

/// `Pr(∃ directed walk with ≥ m edges)` treating every edge as usable
/// (the unlabeled reading of the instance).
pub fn long_walk_probability<W: Weight>(
    instance: &ProbGraph,
    m: usize,
    nice: &NiceDecomposition,
) -> W {
    let usable = vec![true; instance.graph().n_edges()];
    long_walk_probability_with(instance, m, nice, &usable)
}

/// `Pr(G ⇝ H)` for an (effectively) unlabeled `⊔DWT` query on an
/// **arbitrary** instance, via the query collapse `G ≡ →^m` and the
/// treewidth DP over a heuristic decomposition. Returns `None` when the
/// query is not a unlabeled `⊔DWT` (the problem is #P-hard beyond that on
/// general instances: Prop 5.6 already on polytrees for 2WP queries).
///
/// This is the module's headline entry point: it extends the tractable
/// cell `PHom̸L(⊔DWT, PT)` of Table 3 to every instance family of bounded
/// treewidth, as the paper's Section 6 anticipates. Runtime is polynomial
/// for fixed decomposition width and query length.
pub fn probability<W: Weight>(query: &Graph, instance: &ProbGraph) -> Option<W> {
    let collapsed = super::collapse::collapse_union_dwt_query(query)?;
    let m = collapsed.n_edges();
    let query_label = query
        .labels_used()
        .first()
        .copied()
        .unwrap_or(Label::UNLABELED);
    let usable: Vec<bool> = instance
        .graph()
        .edges()
        .iter()
        .map(|e| e.label == query_label)
        .collect();
    let nice = NiceDecomposition::heuristic(instance.graph());
    Some(long_walk_probability_with(instance, m, &nice, &usable))
}

/// Oracle used by the test suite: the maximum number of edges on a
/// directed walk of `graph` (restricted to `usable` edges), capped at
/// `cap`. Plain label-free relaxation, exponential in nothing — `O(cap·E)`.
pub fn max_walk_length_capped(graph: &Graph, usable: &[bool], cap: usize) -> usize {
    let n = graph.n_vertices();
    let mut len = vec![0usize; n];
    loop {
        let mut changed = false;
        for (e, edge) in graph.edges().iter().enumerate() {
            if !usable[e] {
                continue;
            }
            let cand = (len[edge.src] + 1).min(cap);
            if cand > len[edge.dst] {
                len[edge.dst] = cand;
                changed = true;
            }
        }
        if !changed {
            return len.iter().copied().max().unwrap_or(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::treedecomp::heuristic_decomposition;
    use phom_graph::{GraphBuilder, ProbGraph};
    use phom_num::Rational;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn half_probs(g: Graph) -> ProbGraph {
        let probs = vec![Rational::from_ratio(1, 2); g.n_edges()];
        ProbGraph::new(g, probs)
    }

    fn nice_of(h: &ProbGraph) -> NiceDecomposition {
        NiceDecomposition::heuristic(h.graph())
    }

    #[test]
    fn single_edge() {
        let g = Graph::directed_path(1);
        let h = half_probs(g.clone());
        let nice = nice_of(&h);
        let p: Rational = long_walk_probability(&h, 1, &nice);
        assert_eq!(p, Rational::from_ratio(1, 2));
        let p0: Rational = long_walk_probability(&h, 0, &nice);
        assert_eq!(p0, Rational::one());
        let p2: Rational = long_walk_probability(&h, 2, &nice);
        assert_eq!(p2, Rational::zero());
    }

    #[test]
    fn two_chained_edges() {
        // →→ with probability 1/2 each: both present = 1/4.
        let h = half_probs(Graph::directed_path(2));
        let nice = nice_of(&h);
        let p: Rational = long_walk_probability(&h, 2, &nice);
        assert_eq!(p, Rational::from_ratio(1, 4));
        let p1: Rational = long_walk_probability(&h, 1, &nice);
        assert_eq!(p1, Rational::from_ratio(3, 4));
    }

    #[test]
    fn cycle_pumps_walks() {
        // A 2-cycle a ⇄ b with certain edges has walks of every length.
        let mut b = GraphBuilder::with_vertices(2);
        b.edge(0, 1, phom_graph::Label::UNLABELED);
        b.edge(1, 0, phom_graph::Label::UNLABELED);
        let h = ProbGraph::certain(b.build());
        let nice = nice_of(&h);
        for m in [1usize, 5, 40] {
            let p: Rational = long_walk_probability(&h, m, &nice);
            assert_eq!(p, Rational::one(), "m = {m}");
        }
    }

    #[test]
    fn uncertain_cycle() {
        // 3-cycle, each edge 1/2: a walk of length 3 exists iff all three
        // edges are present (every proper subset of the cycle is acyclic,
        // and its longest path has at most 2 edges).
        let mut b = GraphBuilder::with_vertices(3);
        for i in 0..3 {
            b.edge(i, (i + 1) % 3, phom_graph::Label::UNLABELED);
        }
        let h = half_probs(b.build());
        let nice = nice_of(&h);
        let p3: Rational = long_walk_probability(&h, 3, &nice);
        assert_eq!(p3, Rational::from_ratio(1, 8));
        // Length 100 likewise: needs the full cycle.
        let p100: Rational = long_walk_probability(&h, 100, &nice);
        assert_eq!(p100, Rational::from_ratio(1, 8));
        // Length 2: the two worlds with ≥ 2 consecutive edges: {01,12},
        // {12,20}, {20,01}, plus the full cycle: 4/8.
        let p2: Rational = long_walk_probability(&h, 2, &nice);
        assert_eq!(p2, Rational::from_ratio(4, 8));
    }

    #[test]
    fn agrees_with_bruteforce_on_random_sparse_graphs() {
        let mut rng = SmallRng::seed_from_u64(0x7A1C);
        for trial in 0..60 {
            let n = rng.gen_range(2..7);
            let g = generate::arbitrary(n, 0.35, 1, &mut rng);
            if g.n_edges() > 10 {
                continue;
            }
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let nice = nice_of(&h);
            for m in 1..=4usize {
                let dp: Rational = long_walk_probability(&h, m, &nice);
                let bf = bruteforce::probability(&Graph::directed_path(m), &h);
                assert_eq!(dp, bf, "trial {trial}, m = {m}, h = {:?}", h.graph());
            }
        }
    }

    #[test]
    fn agrees_with_bruteforce_with_mixed_probabilities() {
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        for trial in 0..40 {
            let n = rng.gen_range(2..6);
            let g = generate::arbitrary(n, 0.4, 1, &mut rng);
            if g.n_edges() > 9 {
                continue;
            }
            let probs: Vec<Rational> = (0..g.n_edges())
                .map(|_| Rational::from_ratio(rng.gen_range(0..=4), 4))
                .collect();
            let h = ProbGraph::new(g, probs);
            let nice = nice_of(&h);
            for m in 1..=3usize {
                let dp: Rational = long_walk_probability(&h, m, &nice);
                let bf = bruteforce::probability(&Graph::directed_path(m), &h);
                assert_eq!(dp, bf, "trial {trial}, m = {m}");
            }
        }
    }

    #[test]
    fn polytrees_agree_with_prop54_pipeline() {
        use crate::algo::path_on_pt::{self, PtStrategy};
        let mut rng = SmallRng::seed_from_u64(0x9999);
        for _ in 0..25 {
            let n = rng.gen_range(2..14);
            let g = generate::polytree(n, 1, &mut rng);
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let nice = nice_of(&h);
            assert!(nice.width() <= 1);
            for m in 1..=4usize {
                let dp: Rational = long_walk_probability(&h, m, &nice);
                let aut: Rational =
                    path_on_pt::long_path_probability(&h, m, PtStrategy::PaperAutomaton)
                        .expect("polytree instance");
                assert_eq!(dp, aut, "n = {n}, m = {m}");
            }
        }
    }

    #[test]
    fn probability_entry_point_collapses_dwt_queries() {
        let mut rng = SmallRng::seed_from_u64(0x1234);
        for _ in 0..20 {
            let q = generate::union_of(rng.gen_range(1..3), &mut rng, |r| {
                generate::downward_tree(r.gen_range(1..5), 1, r)
            });
            let n = rng.gen_range(2..6);
            let g = generate::arbitrary(n, 0.4, 1, &mut rng);
            if g.n_edges() > 9 {
                continue;
            }
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let dp: Rational = probability(&q, &h).expect("⊔DWT query");
            let bf = bruteforce::probability(&q, &h);
            assert_eq!(dp, bf, "q = {q:?}, h = {:?}", h.graph());
        }
    }

    #[test]
    fn rejects_non_dwt_queries() {
        let q = phom_graph::fixtures::figure_4_polytree();
        let h = half_probs(Graph::directed_path(3));
        assert!(probability::<Rational>(&q, &h).is_none());
    }

    #[test]
    fn label_mismatch_blocks_walks() {
        // Instance edges labeled S, query labeled R: no match (m ≥ 1).
        let mut b = GraphBuilder::with_vertices(3);
        b.edge(0, 1, phom_graph::Label(1));
        b.edge(1, 2, phom_graph::Label(1));
        let h = ProbGraph::certain(b.build());
        let q = Graph::directed_path(2); // label R = Label(0)
        let p: Rational = probability(&q, &h).expect("1WP is a ⊔DWT");
        assert_eq!(p, Rational::zero());
        // Same-label query matches certainly.
        let q_s = Graph::one_way_path(&[phom_graph::Label(1); 2]);
        let p_s: Rational = probability(&q_s, &h).expect("1WP is a ⊔DWT");
        assert_eq!(p_s, Rational::one());
    }

    #[test]
    fn disconnected_instances_compose_like_lemma_3_7() {
        // The DP handles ⊔ instances natively; the answer must satisfy
        // the Lemma 3.7 identity Pr = 1 − Π(1 − Pr_i) over components.
        let mut rng = SmallRng::seed_from_u64(0x37_37);
        for _ in 0..15 {
            let g1 = generate::arbitrary(rng.gen_range(2..5), 0.4, 1, &mut rng);
            let g2 = generate::arbitrary(rng.gen_range(2..5), 0.4, 1, &mut rng);
            if g1.n_edges() + g2.n_edges() > 9 {
                continue;
            }
            let union = Graph::disjoint_union(&[&g1, &g2]);
            let mut probs = Vec::new();
            for _ in 0..union.n_edges() {
                probs.push(Rational::from_ratio(rng.gen_range(1..4), 4));
            }
            let h = ProbGraph::new(union, probs.clone());
            let h1 = ProbGraph::new(g1.clone(), probs[..g1.n_edges()].to_vec());
            let h2 = ProbGraph::new(g2.clone(), probs[g1.n_edges()..].to_vec());
            let m = rng.gen_range(1..4);
            let joint: Rational = long_walk_probability(&h, m, &nice_of(&h));
            let p1: Rational = long_walk_probability(&h1, m, &nice_of(&h1));
            let p2: Rational = long_walk_probability(&h2, m, &nice_of(&h2));
            let composed = Rational::one().sub(&p1.one_minus().mul(&p2.one_minus()));
            assert_eq!(joint, composed);
        }
    }

    #[test]
    fn monotone_decreasing_in_m() {
        let mut rng = SmallRng::seed_from_u64(0x5150);
        let g = generate::arbitrary(6, 0.3, 1, &mut rng);
        let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
        let nice = nice_of(&h);
        let mut last = Rational::one();
        for m in 0..=6usize {
            let p: Rational = long_walk_probability(&h, m, &nice);
            assert!(p <= last, "Pr must be antitone in m");
            last = p;
        }
    }

    #[test]
    fn grid_instance_exact_small() {
        // 2×3 directed grid (all edges rightward/downward, probability
        // 1/2): cross-check against brute force; width-2 decomposition.
        let mut b = GraphBuilder::with_vertices(6);
        let id = |r: usize, c: usize| r * 3 + c;
        for r in 0..2 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.edge(id(r, c), id(r, c + 1), phom_graph::Label::UNLABELED);
                }
                if r + 1 < 2 {
                    b.edge(id(r, c), id(r + 1, c), phom_graph::Label::UNLABELED);
                }
            }
        }
        let h = half_probs(b.build());
        let td = heuristic_decomposition(h.graph());
        assert!(td.width() <= 3);
        let nice = nice_of(&h);
        for m in 1..=4usize {
            let dp: Rational = long_walk_probability(&h, m, &nice);
            let bf = bruteforce::probability(&Graph::directed_path(m), &h);
            assert_eq!(dp, bf, "m = {m}");
        }
    }

    #[test]
    fn self_loops_pump_walks() {
        // The paper allows E ⊆ V², so a → a is a legal edge; a world
        // containing it has walks of every length.
        let mut b = GraphBuilder::with_vertices(2);
        b.edge(0, 0, phom_graph::Label::UNLABELED);
        b.edge(0, 1, phom_graph::Label::UNLABELED);
        let h = half_probs(b.build());
        let nice = nice_of(&h);
        // Walk ≥ 3: needs the self-loop (the straight edge alone is
        // length 1): worlds {loop}, {loop, edge} → 1/2.
        let p3: Rational = long_walk_probability(&h, 3, &nice);
        assert_eq!(p3, Rational::from_ratio(1, 2));
        // Walk ≥ 1: any non-empty world → 3/4.
        let p1: Rational = long_walk_probability(&h, 1, &nice);
        assert_eq!(p1, Rational::from_ratio(3, 4));
        // Cross-check vs brute force.
        for m in 1..=4usize {
            let dp: Rational = long_walk_probability(&h, m, &nice);
            assert_eq!(dp, bruteforce::probability(&Graph::directed_path(m), &h));
        }
    }

    #[test]
    fn certain_and_impossible_edges_are_respected() {
        // π = 1 and π = 0 edges: no state splitting, exact handling.
        let mut b = GraphBuilder::with_vertices(4);
        b.edge(0, 1, phom_graph::Label::UNLABELED);
        b.edge(1, 2, phom_graph::Label::UNLABELED);
        b.edge(2, 3, phom_graph::Label::UNLABELED);
        let h = ProbGraph::new(
            b.build(),
            vec![
                Rational::one(),
                Rational::from_ratio(1, 3),
                Rational::zero(),
            ],
        );
        let nice = nice_of(&h);
        let p2: Rational = long_walk_probability(&h, 2, &nice);
        assert_eq!(p2, Rational::from_ratio(1, 3));
        let p3: Rational = long_walk_probability(&h, 3, &nice);
        assert_eq!(p3, Rational::zero());
    }

    #[test]
    fn oracle_matches_definition_on_dags_and_cycles() {
        let path = Graph::directed_path(5);
        assert_eq!(max_walk_length_capped(&path, &[true; 5], 100), 5);
        assert_eq!(max_walk_length_capped(&path, &[true; 5], 3), 3);
        let mut b = GraphBuilder::with_vertices(2);
        b.edge(0, 1, phom_graph::Label::UNLABELED);
        b.edge(1, 0, phom_graph::Label::UNLABELED);
        let cyc = b.build();
        assert_eq!(max_walk_length_capped(&cyc, &[true, true], 17), 17);
        assert_eq!(max_walk_length_capped(&cyc, &[true, false], 17), 1);
    }
}
