//! Proposition 4.11: `PHomL(Connected, 2WP)` is PTIME.
//!
//! On a two-way-path instance `a₁ − a₂ − … − a_n`, the image of a
//! homomorphism from a *connected* query is a connected subgraph, i.e. a
//! contiguous subpath `a_i − … − a_j`. Testing `G ⇝ subpath` is tractable
//! because subpaths have the **X-property** w.r.t. the path order
//! (Theorem 4.13, implemented in `phom_graph::xprop`). Homomorphism
//! existence is monotone in the subpath, so minimal witnesses form an
//! antichain of intervals computable with a two-pointer sweep — `O(n)`
//! X-property tests instead of `O(n²)`.
//!
//! Two evaluation strategies, cross-checked:
//!
//! * **Lineage + β-acyclicity** (the paper's proof): one clause per minimal
//!   interval; eliminating edges left-to-right along the path is a
//!   β-elimination order.
//! * **Interval-automaton DP** (ablation ABL-1): scan edges left to right
//!   tracking the first interval not yet broken by an absent edge; `O(n·k)`.

use phom_graph::classes::{as_two_way_path, TwoWayPathView};
use phom_graph::xprop::x_property_hom;
use phom_graph::{Dir, Graph, GraphBuilder, ProbGraph};
use phom_lineage::beta::beta_dnf_probability_with_order;
use phom_lineage::Dnf;
use phom_num::Weight;

/// A minimal match interval: the query maps into the subpath spanning edge
/// positions `start ..= end` (positions index the path's steps), and into
/// no proper sub-subpath.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// First edge position of the subpath.
    pub start: usize,
    /// Last edge position of the subpath.
    pub end: usize,
}

/// Computes the minimal match intervals of a connected query on a 2WP
/// instance. Returns `None` if the query is disconnected, the instance is
/// not a 2WP, or (fast path) the query trivially cannot match.
///
/// The `bool` is true when the query has no edges (matches everywhere).
pub fn minimal_intervals(query: &Graph, instance: &Graph) -> Option<(Vec<Interval>, bool)> {
    if !phom_graph::classify(query).is_connected() {
        return None;
    }
    let view = as_two_way_path(instance)?;
    if query.n_edges() == 0 {
        return Some((Vec::new(), true));
    }
    let n_steps = view.steps.len();
    if n_steps == 0 {
        return Some((Vec::new(), false));
    }
    let mut intervals: Vec<Interval> = Vec::new();
    // Two-pointer: hom(i..j) is monotone in j, and the minimal j is
    // nondecreasing in i.
    let mut j = 0usize;
    for i in 0..n_steps {
        if j < i {
            j = i;
        }
        // Find minimal j ≥ max(i, previous j) with a homomorphism.
        let found = loop {
            let sub = subpath_graph(&view, i, j);
            if x_property_hom(query, &sub).is_some() {
                break true;
            }
            if j + 1 >= n_steps {
                break false;
            }
            j += 1;
        };
        // Monotonicity in i: once no interval fits from i, none fits later
        // with the same or larger start... only when j hit the end.
        if !found {
            // Check whether enlarging from a later start could still work:
            // it cannot, since subpaths from later starts are subsets.
            break;
        }
        // Interval [i..j] is a candidate; it is minimal iff the next start
        // needs a strictly larger end (the antichain filter below).
        intervals.push(Interval { start: i, end: j });
    }
    // Keep only inclusion-minimal intervals: for equal ends keep the
    // largest start (ends are nondecreasing in start by construction).
    let mut minimal: Vec<Interval> = Vec::new();
    for w in intervals.windows(2) {
        if w[1].end > w[0].end {
            minimal.push(w[0]);
        }
    }
    if let Some(last) = intervals.last() {
        minimal.push(*last);
    }
    Some((minimal, false))
}

/// Builds the subpath `a_i − … − a_{j+1}` (edge positions `i ..= j`) as a
/// standalone graph whose vertices are renumbered in path order — so it has
/// the X-property w.r.t. the identity order, as `x_property_hom` requires.
fn subpath_graph(view: &TwoWayPathView, i: usize, j: usize) -> Graph {
    let mut b = GraphBuilder::with_vertices(j - i + 2);
    for (pos, &(_, label, dir)) in view.steps[i..=j].iter().enumerate() {
        match dir {
            Dir::Forward => b.edge(pos, pos + 1, label),
            Dir::Backward => b.edge(pos + 1, pos, label),
        };
    }
    b.build()
}

/// The lineage DNF (over the instance's edge ids) plus the left-to-right
/// β-elimination order.
pub fn lineage(query: &Graph, instance: &Graph) -> Option<(Dnf, Vec<usize>)> {
    let view = as_two_way_path(instance)?;
    let (intervals, trivially_true) = minimal_intervals(query, instance)?;
    let mut dnf = Dnf::falsum(instance.n_edges());
    if trivially_true {
        dnf.push_clause(Vec::new());
    }
    for iv in intervals {
        let clause: Vec<usize> = view.steps[iv.start..=iv.end]
            .iter()
            .map(|&(e, _, _)| e)
            .collect();
        dnf.push_clause(clause);
    }
    let order: Vec<usize> = view.steps.iter().map(|&(e, _, _)| e).collect();
    Some((dnf, order))
}

/// `Pr(G ⇝ H)` via β-acyclic lineage (the paper's algorithm). Requires a
/// connected query and a connected 2WP instance.
pub fn probability_lineage<W: Weight>(query: &Graph, instance: &ProbGraph) -> Option<W> {
    let (dnf, order) = lineage(query, instance.graph())?;
    if dnf.is_valid() {
        return Some(W::one());
    }
    let probs: Vec<W> = instance.probs().iter().map(W::from_rational).collect();
    Some(
        beta_dnf_probability_with_order(&dnf, &probs, &order)
            .expect("left-to-right is a valid β-elimination order for interval lineages"),
    )
}

/// `Pr(G ⇝ H)` via the interval-automaton DP (ablation). Scans edge
/// positions left to right; the state is the index of the first interval
/// not yet broken by an absent edge (`SAT` is absorbing).
pub fn probability_dp<W: Weight>(query: &Graph, instance: &ProbGraph) -> Option<W> {
    let view = as_two_way_path(instance.graph())?;
    let (intervals, trivially_true) = minimal_intervals(query, instance.graph())?;
    if trivially_true {
        return Some(W::one());
    }
    if intervals.is_empty() {
        return Some(W::zero());
    }
    let k = intervals.len();
    // state[t] = Pr[first unbroken interval is t]; sat = absorbed mass.
    let mut state = vec![W::zero(); k + 1]; // k = "all broken"
    state[0] = W::one();
    let mut sat = W::zero();
    for (pos, &(e, _, _)) in view.steps.iter().enumerate() {
        let p = W::from_rational(instance.prob(e));
        let q = p.complement();
        let mut next = vec![W::zero(); k + 1];
        for (t, w) in state.iter().enumerate() {
            if w.is_zero() {
                continue;
            }
            if t < k && intervals[t].start > pos {
                // The edge precedes the open interval: irrelevant.
                next[t] = next[t].add(w);
                continue;
            }
            if t == k {
                // All intervals already broken.
                next[k] = next[k].add(w);
                continue;
            }
            // Present: interval t survives; completed iff pos = end_t.
            if !p.is_zero() {
                let wp = w.mul(&p);
                if intervals[t].end == pos {
                    sat = sat.add(&wp);
                } else {
                    next[t] = next[t].add(&wp);
                }
            }
            // Absent: all intervals containing pos break — advance t to the
            // first interval starting after pos.
            if !q.is_zero() {
                let wq = w.mul(&q);
                let t2 = intervals[t..]
                    .iter()
                    .position(|iv| iv.start > pos)
                    .map_or(k, |off| t + off);
                next[t2] = next[t2].add(&wq);
            }
        }
        state = next;
    }
    Some(sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use phom_graph::generate;
    use phom_graph::Label;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const R: Label = Label(0);
    const S: Label = Label(1);

    fn rat(n: u64, d: u64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn single_edge_on_path() {
        // Instance: a -R→ b ←S- c with probs 1/2, 1/3; query: -R→.
        let h = ProbGraph::new(
            Graph::two_way_path(&[(Dir::Forward, R), (Dir::Backward, S)]),
            vec![rat(1, 2), rat(1, 3)],
        );
        let q = Graph::one_way_path(&[R]);
        assert_eq!(probability_lineage(&q, &h), Some(rat(1, 2)));
        assert_eq!(probability_dp::<Rational>(&q, &h), Some(rat(1, 2)));
    }

    #[test]
    fn two_disjoint_minimal_intervals() {
        // Instance R S R; query R: minimal intervals at positions 0 and 2.
        let h_graph = Graph::one_way_path(&[R, S, R]);
        let (ivs, _) = minimal_intervals(&Graph::one_way_path(&[R]), &h_graph).unwrap();
        assert_eq!(
            ivs,
            vec![Interval { start: 0, end: 0 }, Interval { start: 2, end: 2 }]
        );
        let h = ProbGraph::new(h_graph, vec![rat(1, 2), rat(1, 2), rat(1, 2)]);
        let q = Graph::one_way_path(&[R]);
        // 1 − (1/2)² = 3/4.
        assert_eq!(probability_lineage(&q, &h), Some(rat(3, 4)));
        assert_eq!(probability_dp::<Rational>(&q, &h), Some(rat(3, 4)));
    }

    #[test]
    fn no_match_gives_zero() {
        let h = ProbGraph::certain(Graph::one_way_path(&[R, R]));
        let q = Graph::one_way_path(&[S]);
        assert_eq!(probability_lineage(&q, &h), Some(Rational::zero()));
        assert_eq!(probability_dp::<Rational>(&q, &h), Some(Rational::zero()));
    }

    #[test]
    fn edgeless_query_is_certain() {
        let h = ProbGraph::certain(Graph::one_way_path(&[R]));
        let q = Graph::directed_path(0);
        assert_eq!(probability_lineage(&q, &h), Some(Rational::one()));
        assert_eq!(probability_dp::<Rational>(&q, &h), Some(Rational::one()));
    }

    #[test]
    fn branching_query_on_path() {
        // Query: v ←R u -R→ w (a DWT that folds onto a single R edge).
        let mut b = GraphBuilder::with_vertices(3);
        b.edge(0, 1, R);
        b.edge(0, 2, R);
        let q = b.build();
        let h = ProbGraph::new(Graph::one_way_path(&[R, S]), vec![rat(1, 2), rat(1, 3)]);
        let expect = bruteforce::probability(&q, &h);
        assert_eq!(probability_lineage(&q, &h), Some(expect.clone()));
        assert_eq!(probability_dp::<Rational>(&q, &h), Some(expect));
    }

    #[test]
    fn cyclic_query_never_matches_a_path() {
        let mut b = GraphBuilder::with_vertices(2);
        b.edge(0, 1, R);
        b.edge(1, 0, R);
        let q = b.build();
        let h = ProbGraph::certain(Graph::one_way_path(&[R, R, R]));
        assert_eq!(probability_lineage(&q, &h), Some(Rational::zero()));
    }

    #[test]
    fn random_connected_queries_on_random_2wps_match_brute_force() {
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..150 {
            let h_graph = generate::two_way_path(rng.gen_range(1..8), 2, &mut rng);
            let h = generate::with_probabilities(
                h_graph,
                generate::ProbProfile {
                    certain_ratio: 0.25,
                    denominator: 4,
                },
                &mut rng,
            );
            let q = generate::connected(rng.gen_range(1..5), rng.gen_range(0..2), 2, &mut rng);
            if !phom_graph::classify(&q).is_connected() {
                continue;
            }
            let expect = bruteforce::probability(&q, &h);
            let lin: Rational = probability_lineage(&q, &h).unwrap();
            let dp: Rational = probability_dp(&q, &h).unwrap();
            assert_eq!(lin, expect, "q={q:?} h={:?}", h.graph());
            assert_eq!(dp, expect, "q={q:?} h={:?}", h.graph());
        }
    }

    #[test]
    fn lineage_is_beta_acyclic() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..40 {
            let h = generate::two_way_path(rng.gen_range(1..12), 2, &mut rng);
            let q = generate::two_way_path(rng.gen_range(1..4), 2, &mut rng);
            let (dnf, _) = lineage(&q, &h).unwrap();
            assert!(dnf.hypergraph().is_beta_acyclic());
        }
    }

    #[test]
    fn minimal_intervals_form_an_antichain() {
        let mut rng = SmallRng::seed_from_u64(43);
        for _ in 0..60 {
            let h = generate::two_way_path(rng.gen_range(1..10), 2, &mut rng);
            let q = generate::two_way_path(rng.gen_range(1..4), 2, &mut rng);
            let (ivs, _) = minimal_intervals(&q, &h).unwrap();
            for w in ivs.windows(2) {
                assert!(w[0].start < w[1].start && w[0].end < w[1].end, "{ivs:?}");
            }
        }
    }

    use phom_graph::{GraphBuilder, ProbGraph};
    use phom_num::Rational;
}
