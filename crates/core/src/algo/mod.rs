//! The per-proposition polynomial-time algorithms.
//!
//! Each module implements one tractability result of the paper and exposes
//! a function taking a query and a (suitably restricted) instance; the
//! [`crate::solver`] dispatcher is responsible for routing and for the
//! Lemma 3.7 component decomposition ([`components`]).

pub mod absorb;
pub mod collapse;
pub mod components;
pub mod connected_on_2wp;
pub mod dwt_instance;
pub mod lineage_circuits;
pub mod obdd_route;
pub mod path_on_dwt;
pub mod path_on_pt;
pub mod walk_on_tw;
