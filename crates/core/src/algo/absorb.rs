//! Query preprocessing: *component absorption* for disconnected queries.
//!
//! `H ⊨ G₁ ⊔ G₂` iff both components map; if `G₁ ⇝ G₂` then any
//! homomorphism `G₂ → H` composes into one for `G₁`, so `G₁ ⊔ G₂ ≡ G₂` as
//! queries. Absorbing components can turn a disconnected query into a
//! connected one — e.g. a labeled `⊔1WP` query with hom-comparable
//! components becomes a single 1WP, moving the input from the Prop 3.3
//! hard cell into the tractable Prop 4.10/4.11 cells. (This does not
//! contradict Table 1/the §3.1 hardness, which are worst-case statements;
//! it is an opportunistic, always-sound simplification.)
//!
//! Component-to-component homomorphism testing is NP-hard in general, so
//! absorption is only attempted between components below a size cap;
//! skipping it is always sound.

use phom_graph::classes::connected_components;
use phom_graph::hom::exists_hom;
use phom_graph::{Graph, GraphBuilder};

/// Size cap (edges) above which component pairs are not tested.
const MAX_COMPONENT_EDGES: usize = 16;

/// Removes query components that map into another remaining component
/// (and trivial edgeless components). Returns the simplified query — the
/// same graph when nothing absorbs.
pub fn absorb_query_components(query: &Graph) -> Graph {
    let components = connected_components(query);
    if components.len() <= 1 {
        return query.clone();
    }
    // Extract each component as a standalone graph.
    let comp_graphs: Vec<Graph> = components
        .iter()
        .map(|verts| {
            let mut renumber = vec![usize::MAX; query.n_vertices()];
            for (i, &v) in verts.iter().enumerate() {
                renumber[v] = i;
            }
            let mut b = GraphBuilder::with_vertices(verts.len());
            for e in query.edges() {
                if renumber[e.src] != usize::MAX && renumber[e.dst] != usize::MAX {
                    b.edge(renumber[e.src], renumber[e.dst], e.label);
                }
            }
            b.build()
        })
        .collect();

    // keep[i]: component i survives. Absorb greedily: i is dropped when it
    // maps into some surviving j ≠ i (ties by index to avoid dropping
    // both of a hom-equivalent pair).
    let n = comp_graphs.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if comp_graphs[i].n_edges() == 0 {
            keep[i] = false; // edgeless components always map
            continue;
        }
        if comp_graphs[i].n_edges() > MAX_COMPONENT_EDGES {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[j] || comp_graphs[j].n_edges() > MAX_COMPONENT_EDGES {
                continue;
            }
            // Drop i if it maps into j — for hom-equivalent pairs keep the
            // smaller index (j < i wins; for j > i require strictness by
            // checking the reverse direction does not also hold).
            if exists_hom(&comp_graphs[i], &comp_graphs[j])
                && (j < i || !exists_hom(&comp_graphs[j], &comp_graphs[i]))
            {
                keep[i] = false;
                break;
            }
        }
    }
    if keep.iter().all(|&k| k) {
        return query.clone();
    }
    let survivors: Vec<&Graph> = comp_graphs
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(g, _)| g)
        .collect();
    if survivors.is_empty() {
        // All components were edgeless: the query is trivially true;
        // return a single vertex.
        return GraphBuilder::with_vertices(1).build();
    }
    Graph::disjoint_union(&survivors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::classes::classify;
    use phom_graph::fixtures::{R, S};
    use phom_graph::generate;
    use phom_graph::hom::exists_hom_into_world;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn duplicate_components_collapse() {
        let comp = Graph::one_way_path(&[R, S]);
        let q = Graph::disjoint_union(&[&comp, &comp, &comp]);
        let simplified = absorb_query_components(&q);
        assert!(classify(&simplified).is_connected());
        assert_eq!(simplified.n_edges(), 2);
    }

    #[test]
    fn shorter_paths_absorb_into_longer() {
        let short = Graph::one_way_path(&[R]);
        let long = Graph::one_way_path(&[R, R, R]);
        let q = Graph::disjoint_union(&[&short, &long]);
        let simplified = absorb_query_components(&q);
        assert!(classify(&simplified).is_connected());
        assert_eq!(simplified.n_edges(), 3);
    }

    #[test]
    fn incomparable_components_stay() {
        let a = Graph::one_way_path(&[R, S]);
        let b = Graph::one_way_path(&[S, R]);
        let q = Graph::disjoint_union(&[&a, &b]);
        let simplified = absorb_query_components(&q);
        assert_eq!(classify(&simplified).components.len(), 2);
    }

    #[test]
    fn edgeless_components_are_dropped() {
        let a = Graph::one_way_path(&[R]);
        let lonely = GraphBuilder::with_vertices(2).build();
        let q = Graph::disjoint_union(&[&a, &lonely]);
        let simplified = absorb_query_components(&q);
        assert!(classify(&simplified).is_connected());
        // An all-edgeless query collapses to a single vertex.
        let q = Graph::disjoint_union(&[&lonely, &lonely]);
        let simplified = absorb_query_components(&q);
        assert_eq!(simplified.n_edges(), 0);
        assert_eq!(simplified.n_vertices(), 1);
    }

    /// Absorption preserves the Boolean query on arbitrary instances.
    #[test]
    fn absorption_preserves_semantics() {
        let mut rng = SmallRng::seed_from_u64(91);
        for _ in 0..120 {
            let q = generate::union_of(rng.gen_range(2..4), &mut rng, |r| {
                generate::two_way_path(r.gen_range(1..4), 2, r)
            });
            let simplified = absorb_query_components(&q);
            let h = generate::arbitrary(rng.gen_range(1..6), 0.4, 2, &mut rng);
            let full = vec![true; h.n_edges()];
            assert_eq!(
                exists_hom_into_world(&q, &h, &full),
                exists_hom_into_world(&simplified, &h, &full),
                "q={q:?} simplified={simplified:?} h={h:?}"
            );
        }
    }
}
