//! d-DNNF lineage circuits for the *labeled* tractable routes.
//!
//! The paper compiles d-DNNF lineages only in the unlabeled polytree case
//! (Prop 5.4); its conclusion asks for "extensions of the β-acyclicity
//! approach". This module provides the circuit-shaped counterparts of the
//! Prop 4.10/4.11 dynamic programs — useful to downstream consumers that
//! want a reusable lineage artifact (for conditioning, sampling, or
//! repeated evaluation under changing probabilities) rather than a single
//! probability:
//!
//! * [`match_circuit_2wp`] — Prop 4.11: the interval automaton over the
//!   path is a DFA over the edge word, and a DFA run determinizes into a
//!   d-DNNF directly: `g(pos, state) = (x_pos ∧ g(pos+1, δ(state, 1))) ∨
//!   (¬x_pos ∧ g(pos+1, δ(state, 0)))` — decomposable (distinct
//!   positions) and deterministic (the disjuncts differ on the `x_pos`
//!   literal). Computes the **match** event.
//! * [`fail_circuit_dwt`] — Prop 4.10: the run-length DP on the tree
//!   yields `Fail(v, r) = ⋀_c [(¬x_e ∧ Fail(c, 0)) ∨ (x_e ∧ Fail(c,
//!   r+1))]`, again a d-DNNF; it computes the **non-match** event (d-DNNFs
//!   are not closed under negation, so the complement happens on the
//!   probability: `Pr(match) = 1 − Pr(fail)`), mirroring how Theorem 4.9
//!   computes `1 − Pr(¬φ)`.

use super::connected_on_2wp::minimal_intervals;
use phom_graph::classes::{as_downward_tree, as_one_way_path, as_two_way_path};
use phom_graph::{Graph, VertexId};
use phom_lineage::fxhash::FxHashMap;
use phom_lineage::{Circuit, GateId};

/// Compiles the lineage of "the connected query matches the 2WP instance"
/// into a d-DNNF over the instance's edge ids. Returns `None` when the
/// inputs do not have the Prop 4.11 shapes.
pub fn match_circuit_2wp(query: &Graph, instance: &Graph) -> Option<(Circuit, GateId)> {
    let mut c = Circuit::new(instance.n_edges());
    let root = match_into_2wp(&mut c, query, instance)?;
    Some((c, root))
}

/// As [`match_circuit_2wp`], but compiling into a caller-provided arena —
/// the batched solver compiles *many* queries against one instance into a
/// single shared arena this way, so common sub-lineages intern once and
/// one multi-root engine pass answers the whole batch. `c` must have been
/// created over `instance.n_edges()` variables. Shape checks run before
/// any gate is created, so a `None` return leaves `c` untouched.
pub fn match_into_2wp(c: &mut Circuit, query: &Graph, instance: &Graph) -> Option<GateId> {
    assert_eq!(c.num_vars(), instance.n_edges());
    let view = as_two_way_path(instance)?;
    let (intervals, trivially_true) = minimal_intervals(query, instance)?;
    if trivially_true {
        return Some(c.constant(true));
    }
    if intervals.is_empty() {
        return Some(c.constant(false));
    }
    let k = intervals.len();
    // DFA states: 0..k = first unbroken interval; k = all broken (dead,
    // since completing any interval is absorbed into acceptance).
    // Process positions right to left; `future[s]` = "the suffix after
    // `pos` accepts from state `s`". Only states whose interval is *open*
    // at `pos` need gates: minimal intervals form an antichain (starts
    // and ends both strictly increase — see
    // `connected_on_2wp::minimal_intervals`), so they are the contiguous
    // band `lo..hi`. States left of the band are dead (never read again:
    // their interval completed or broke strictly earlier), states right
    // of it transition identically on both literals, so their gate
    // carries over untouched. The carried-over branches skip the
    // position's variable, leaving the circuit *unsmoothed*; probability
    // is unaffected (`p + (1 − p) = 1`) and the engine's
    // support-tracking pass keeps model counting exact (see
    // `phom_lineage::engine` on smoothing). Compared to unrolling every
    // (position, state) pair this drops the gate count from `O(n·k)` to
    // the sum of the interval lengths.
    let n_steps = view.steps.len();
    let constant_false = c.constant(false);
    let mut future: Vec<GateId> = vec![constant_false; k + 1];
    for pos in (0..n_steps).rev() {
        let lo = intervals.partition_point(|iv| iv.end < pos);
        let hi = intervals.partition_point(|iv| iv.start <= pos);
        if lo >= hi {
            continue; // no interval open at pos: identity on every state
        }
        let var = view.steps[pos].0;
        let x = c.var(var);
        let nx = c.neg_var(var);
        // Absent: every open interval breaks; the run advances to the
        // first interval starting after pos (`hi`; the dead state's entry
        // stays constant false).
        let absent = c.and_gate(vec![nx, future[hi]]);
        for state in lo..hi {
            // Present: completes interval `state` iff pos == end.
            let present = if intervals[state].end == pos {
                // Acceptance: the rest of the word is unconstrained.
                x
            } else {
                c.and_gate(vec![x, future[state]])
            };
            future[state] = c.or_gate(vec![present, absent]);
        }
    }
    Some(future[0])
}

/// Compiles the lineage of "the 1WP query has **no** match in the DWT
/// instance" into a d-DNNF over the instance's edge ids (complement on the
/// probability side). Returns `None` when the inputs do not have the
/// Prop 4.10 shapes.
pub fn fail_circuit_dwt(query: &Graph, instance: &Graph) -> Option<(Circuit, GateId)> {
    let mut c = Circuit::new(instance.n_edges());
    let root = fail_into_dwt(&mut c, query, instance)?;
    Some((c, root))
}

/// As [`fail_circuit_dwt`], compiling into a caller-provided arena (see
/// [`match_into_2wp`] for why). Shape checks run before any gate is
/// created, so a `None` return leaves `c` untouched.
pub fn fail_into_dwt(c: &mut Circuit, query: &Graph, instance: &Graph) -> Option<GateId> {
    assert_eq!(c.num_vars(), instance.n_edges());
    let qpath = as_one_way_path(query)?;
    let view = as_downward_tree(instance)?;
    let m = qpath.labels.len();
    if m == 0 {
        return Some(c.constant(false)); // the empty query always matches
    }
    // matches[v]: the m edges above v exist and spell the query labels.
    let mut matches = vec![false; instance.n_vertices()];
    for &v in &view.order {
        if view.depth[v] < m {
            continue;
        }
        let mut cur = v;
        let mut ok = true;
        for i in 0..m {
            let (parent, e) = view.parent[cur].unwrap();
            if instance.edge(e).label != qpath.labels[m - 1 - i] {
                ok = false;
                break;
            }
            cur = parent;
        }
        matches[v] = ok;
    }
    // Fail(v, r): gates built bottom-up; r capped at m.
    let mut gates: FxHashMap<(VertexId, usize), GateId> = FxHashMap::default();
    for &v in view.order.iter().rev() {
        for r in 0..=m {
            let gate = if matches[v] && r >= m {
                c.constant(false)
            } else {
                let mut parts = Vec::new();
                for &e in instance.out_edges(v) {
                    let child = instance.edge(e).dst;
                    let x = c.var(e);
                    let nx = c.neg_var(e);
                    let absent = c.and_gate(vec![nx, gates[&(child, 0)]]);
                    let present = c.and_gate(vec![x, gates[&(child, (r + 1).min(m))]]);
                    parts.push(c.or_gate(vec![absent, present]));
                }
                if parts.is_empty() {
                    c.constant(true)
                } else if parts.len() == 1 {
                    parts[0]
                } else {
                    c.and_gate(parts)
                }
            };
            gates.insert((v, r), gate);
        }
    }
    Some(gates[&(view.root, 0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{connected_on_2wp, path_on_dwt};
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::hom::exists_hom_into_world;
    use phom_num::{Rational, Weight};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn twp_circuit_matches_dp_and_worlds() {
        let mut rng = SmallRng::seed_from_u64(101);
        for _ in 0..60 {
            let h_graph = generate::two_way_path(rng.gen_range(1..7), 2, &mut rng);
            let h = generate::with_probabilities(
                h_graph,
                ProbProfile {
                    certain_ratio: 0.2,
                    denominator: 4,
                },
                &mut rng,
            );
            let q = generate::connected(rng.gen_range(1..5), 1, 2, &mut rng);
            let (circuit, root) = match_circuit_2wp(&q, h.graph()).unwrap();
            assert!(circuit.check_decomposable());
            // Probability agreement.
            let probs: Vec<Rational> = h.probs().to_vec();
            let via_circuit: Rational = circuit.probability(root, &probs);
            let via_dp: Rational = connected_on_2wp::probability_dp(&q, &h).unwrap();
            assert_eq!(via_circuit, via_dp, "q={q:?} h={:?}", h.graph());
            // Per-world agreement + determinism.
            for (mask, _) in h.worlds() {
                assert_eq!(
                    circuit.eval_world(root, &mask),
                    exists_hom_into_world(&q, h.graph(), &mask)
                );
                assert!(circuit.check_deterministic_under(&mask));
            }
        }
    }

    #[test]
    fn dwt_fail_circuit_complements_the_match() {
        let mut rng = SmallRng::seed_from_u64(102);
        for _ in 0..60 {
            let tree = generate::downward_tree(rng.gen_range(1..8), 2, &mut rng);
            let h = generate::with_probabilities(
                tree,
                ProbProfile {
                    certain_ratio: 0.2,
                    denominator: 4,
                },
                &mut rng,
            );
            let q = generate::planted_path_query(h.graph(), rng.gen_range(1..4), &mut rng)
                .unwrap_or_else(|| generate::one_way_path(2, 2, &mut rng));
            let (circuit, root) = fail_circuit_dwt(&q, h.graph()).unwrap();
            assert!(circuit.check_decomposable());
            let probs: Vec<Rational> = h.probs().to_vec();
            let p_fail: Rational = circuit.probability(root, &probs);
            let p_match: Rational = path_on_dwt::probability_lineage(&q, &h).unwrap();
            assert_eq!(p_fail.complement(), p_match, "q={q:?} h={:?}", h.graph());
            for (mask, _) in h.worlds() {
                assert_eq!(
                    circuit.eval_world(root, &mask),
                    !exists_hom_into_world(&q, h.graph(), &mask)
                );
                assert!(circuit.check_deterministic_under(&mask));
            }
        }
    }

    #[test]
    fn circuits_are_reusable_under_changed_probabilities() {
        // The point of a lineage artifact: evaluate once-built circuits
        // under many probability vectors.
        let mut rng = SmallRng::seed_from_u64(103);
        let h_graph = generate::two_way_path(6, 2, &mut rng);
        let q = generate::connected(3, 1, 2, &mut rng);
        let (circuit, root) = match_circuit_2wp(&q, &h_graph).unwrap();
        for _ in 0..10 {
            let h = generate::with_probabilities(
                h_graph.clone(),
                ProbProfile {
                    certain_ratio: 0.2,
                    denominator: 8,
                },
                &mut rng,
            );
            let via_circuit: Rational = circuit.probability(root, h.probs());
            let via_dp: Rational = connected_on_2wp::probability_dp(&q, &h).unwrap();
            assert_eq!(via_circuit, via_dp);
        }
    }

    #[test]
    fn trivial_cases() {
        let h = Graph::one_way_path(&[phom_graph::Label(0)]);
        // Edgeless query: constant-true match circuit.
        let q = Graph::directed_path(0);
        let (c, root) = match_circuit_2wp(&q, &h).unwrap();
        assert!(c.eval_world(root, &[false]));
        let (c, root) = fail_circuit_dwt(&q, &h).unwrap();
        assert!(!c.eval_world(root, &[false])); // never fails
                                                // Unmatchable query: constant-false match circuit.
        let q = Graph::one_way_path(&[phom_graph::Label(5)]);
        let (c, root) = match_circuit_2wp(&q, &h).unwrap();
        assert!(!c.eval_world(root, &[true]));
    }

    use phom_graph::Graph;
}
