//! Lemma 3.7: disconnected instances reduce to their connected components.
//!
//! For a *connected* query `G` and an instance `H = H₁ ⊔ … ⊔ Hₙ`, any match
//! lies inside one component, and components are independent, so
//!
//! ```text
//! Pr(G ⇝ H) = 1 − Π_i (1 − Pr(G ⇝ Hᵢ)).
//! ```

use phom_graph::classes::connected_components;
use phom_graph::ProbGraph;
use phom_num::Rational;

/// Splits a probabilistic instance into its connected components.
pub fn split_components(instance: &ProbGraph) -> Vec<ProbGraph> {
    let comps = connected_components(instance.graph());
    if comps.len() == 1 {
        return vec![instance.clone()];
    }
    comps
        .into_iter()
        .map(|verts| {
            let mut keep = vec![false; instance.graph().n_vertices()];
            for v in verts {
                keep[v] = true;
            }
            instance.vertex_restriction(&keep).0
        })
        .collect()
}

/// Combines per-component probabilities for a connected query:
/// `1 − Π (1 − pᵢ)`.
pub fn combine_connected_query(per_component: &[Rational]) -> Rational {
    per_component
        .iter()
        .fold(Rational::one(), |acc, p| acc.mul(&p.one_minus()))
        .one_minus()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use phom_graph::{Graph, GraphBuilder, Label};

    #[test]
    fn combine_matches_brute_force() {
        // Instance: two disjoint single-edge components with probs 1/2, 1/3;
        // query: a single edge. Pr = 1 − (1/2)(2/3) = 2/3.
        let mut b = GraphBuilder::with_vertices(4);
        b.edge(0, 1, Label(0));
        b.edge(2, 3, Label(0));
        let h = ProbGraph::new(
            b.build(),
            vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 3)],
        );
        let g = Graph::one_way_path(&[Label(0)]);
        let parts = split_components(&h);
        assert_eq!(parts.len(), 2);
        let per: Vec<Rational> = parts
            .iter()
            .map(|hi| bruteforce::probability(&g, hi))
            .collect();
        let combined = combine_connected_query(&per);
        assert_eq!(combined, bruteforce::probability(&g, &h));
        assert_eq!(combined, Rational::from_ratio(2, 3));
    }

    #[test]
    fn isolated_vertices_form_components() {
        let mut b = GraphBuilder::with_vertices(3);
        b.edge(0, 1, Label(0));
        let h = ProbGraph::new(b.build(), vec![Rational::from_ratio(1, 2)]);
        let parts = split_components(&h);
        assert_eq!(parts.len(), 2);
        // The edgeless component contributes probability 0 for any query
        // with an edge.
        let g = Graph::one_way_path(&[Label(0)]);
        let per: Vec<Rational> = parts
            .iter()
            .map(|hi| bruteforce::probability(&g, hi))
            .collect();
        assert_eq!(combine_connected_query(&per), Rational::from_ratio(1, 2));
    }

    #[test]
    fn empty_product_is_zero_probability() {
        assert!(combine_connected_query(&[]).is_zero());
    }
}
