//! The `PHom` dispatcher: classifies the input into the paper's
//! classification and routes it to the unique applicable polynomial-time
//! algorithm — or reports the matching hardness result.
//!
//! The dispatcher is *opportunistic*: class-level hardness (Tables 1–3)
//! speaks about worst cases, so individually easy inputs inside hard cells
//! (e.g. a query using a label absent from the instance, a cyclic query
//! on a polytree instance, or a disconnected query whose components
//! absorb into one — see [`crate::algo::absorb`]) are still answered in
//! polynomial time through the fast paths below.

use crate::algo::path_on_pt::PtStrategy;
use crate::algo::{
    collapse, components, connected_on_2wp, dwt_instance, lineage_circuits, path_on_dwt, path_on_pt,
};
use crate::{bruteforce, montecarlo};
use phom_graph::classes::{classify, Classification};
use phom_graph::graded::level_mapping;
use phom_graph::{ConnClass, Graph, ProbGraph};
use phom_lineage::engine::Arena;
use phom_lineage::{MeterStop, Provenance, WorkMeter};
use phom_num::{Natural, Rational};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

/// What to do when the input falls in a #P-hard cell.
#[derive(Clone, Copy, Debug, Default)]
pub enum Fallback {
    /// Report hardness (default).
    #[default]
    None,
    /// Enumerate possible worlds if at most `max_uncertain` edges are
    /// uncertain (exponential!).
    BruteForce {
        /// Bound on the number of uncertain edges (worlds = 2^this).
        max_uncertain: usize,
    },
    /// Monte-Carlo estimation (approximate, with the returned probability
    /// rounded to a dyadic rational).
    MonteCarlo {
        /// Number of sampled worlds.
        samples: u64,
        /// RNG seed, for reproducibility.
        seed: u64,
    },
}

/// Which evaluation tier answers a probability request.
///
/// The circuit routes (Props 4.10/4.11 on connected instances) can
/// evaluate their lineage either exactly over [`Rational`] or over a
/// flat `f64` slab with a running error bound
/// ([`ErrF64`](phom_num::ErrF64)). The float tiers answer with
/// [`Response::Approximate`](crate::Response::Approximate); the exact
/// tier stays bit-identical across shard widths and scheduling.
///
/// Non-circuit work — counting, sensitivity, UCQs, fallbacks, and the
/// general probability routes — is always computed exactly; under
/// `Float` the exact answer is *reported* as an `Approximate` response
/// (half-ulp bound), under `Auto` it is reported exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Precision {
    /// Exact rational arithmetic end to end (default; paper-faithful).
    #[default]
    Exact,
    /// Float-first: circuit routes evaluate over `f64` with a running
    /// error bound and always answer approximately. `max_rel_err` is
    /// recorded in the cache key (callers with different tolerances
    /// never share answers) and reported alongside the value.
    Float {
        /// The caller's relative-error tolerance.
        max_rel_err: f64,
    },
    /// Float-first with exact escalation: circuit routes evaluate over
    /// `f64` first and fall back to the exact rational pass whenever
    /// the certified relative-error bound exceeds `max_rel_err` — so
    /// every answer is either certified-approximate within tolerance or
    /// bit-identical to [`Precision::Exact`].
    Auto {
        /// Escalate to exact when the bound exceeds this.
        max_rel_err: f64,
    },
}

impl Precision {
    /// The relative-error tolerance of the float tiers (`None` for
    /// `Exact`).
    pub fn max_rel_err(&self) -> Option<f64> {
        match *self {
            Precision::Exact => None,
            Precision::Float { max_rel_err } | Precision::Auto { max_rel_err } => Some(max_rel_err),
        }
    }

    /// True iff this is the exact tier.
    pub fn is_exact(&self) -> bool {
        matches!(self, Precision::Exact)
    }
}

/// A per-request work budget: hard caps on the resources a single
/// request may consume inside evaluation. All caps default to
/// unlimited; each set cap is enforced cooperatively by the
/// [`WorkMeter`] checkpoints threaded through the circuit evaluators
/// and the Monte-Carlo sampler, and a tripped cap surfaces as
/// [`SolveError::BudgetExceeded`] (or, for the estimate path with at
/// least one sample drawn, a truncated — still certified —
/// [`Response::Estimate`](crate::Response::Estimate)).
///
/// Unlike a [deadline](crate::Request::deadline) (which is relative to
/// wall-clock arrival and therefore never part of the answer cache
/// key), a budget changes *what is computed*, so it is folded into the
/// options fingerprint: requests with different budgets never share
/// cached answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Cap on Monte-Carlo samples drawn.
    pub samples: Option<u64>,
    /// Cap on circuit gates evaluated.
    pub gates: Option<u64>,
    /// Cap on wall-clock time spent inside evaluation, anchored when
    /// the work starts (distinct from a deadline, which is anchored at
    /// request arrival and may expire in a queue).
    pub time: Option<Duration>,
}

impl Budget {
    /// The default: no caps.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// True iff no cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.samples.is_none() && self.gates.is_none() && self.time.is_none()
    }

    /// Caps Monte-Carlo samples.
    pub fn with_samples(mut self, samples: u64) -> Budget {
        self.samples = Some(samples);
        self
    }

    /// Caps circuit gates evaluated.
    pub fn with_gates(mut self, gates: u64) -> Budget {
        self.gates = Some(gates);
        self
    }

    /// Caps wall-clock evaluation time.
    pub fn with_time(mut self, time: Duration) -> Budget {
        self.time = Some(time);
        self
    }

    /// Folds the set caps into a [`WorkMeter`].
    pub(crate) fn arm(&self, mut meter: WorkMeter) -> WorkMeter {
        if let Some(gates) = self.gates {
            meter = meter.with_gate_budget(gates);
        }
        if let Some(samples) = self.samples {
            meter = meter.with_sample_budget(samples);
        }
        if let Some(time) = self.time {
            meter = meter.with_time_budget(time);
        }
        meter
    }
}

/// What to answer when a probability request lands in a #P-hard cell
/// (and any configured [`Fallback`] did not apply): the top rung of
/// the degradation ladder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnHard {
    /// Report [`SolveError::Hard`] (default; paper-faithful).
    #[default]
    Error,
    /// Degrade to a budgeted Monte-Carlo estimate with a 95%
    /// confidence interval, answered as a typed
    /// [`Response::Estimate`](crate::Response::Estimate). Sampling
    /// honors the request's [`Budget`] and deadline; if time runs out
    /// after at least one sample, the truncated (wider) interval is
    /// returned instead of an error.
    Estimate,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverOptions {
    /// Fallback on hard cells.
    pub fallback: Fallback,
    /// Pipeline for the polytree automaton cases (Prop 5.4).
    pub pt_strategy: PtStrategy,
    /// Use the direct dynamic programs instead of the paper's β-acyclic
    /// lineages for Props 4.10/4.11 (ablation; same answers).
    pub prefer_dp: bool,
    /// Attach a [`Provenance`] handle (a d-DNNF circuit over the
    /// instance's edge ids) to the solution on the routes that can
    /// compile one — see [`Solution::provenance`]. Provenance is an
    /// exact artifact: requests that set this always answer exactly,
    /// whatever [`precision`](SolverOptions::precision) says.
    pub want_provenance: bool,
    /// Which evaluation tier answers probability requests.
    pub precision: Precision,
    /// Per-request work caps (samples / gates / time), enforced by
    /// cooperative [`WorkMeter`] checkpoints inside evaluation.
    pub budget: Budget,
    /// Degradation policy for #P-hard cells: typed error (default) or
    /// a budgeted Monte-Carlo [`Response::Estimate`](crate::Response::Estimate).
    pub on_hard: OnHard,
}

/// How a solution was obtained.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Route {
    /// The query has no edges: probability 1.
    TrivialNoEdges,
    /// The query uses an edge label the instance lacks: probability 0.
    MissingLabel,
    /// Cyclic or non-graded query on a `⊔PT` instance: probability 0.
    ZeroOnPolytrees,
    /// Prop 3.6: graded collapse on a `⊔DWT` instance.
    Prop36,
    /// Prop 4.10: 1WP query on `⊔DWT` instance via β-acyclic lineage
    /// (through Lemma 3.7 for disconnected instances).
    Prop410,
    /// Prop 4.11: connected query on `⊔2WP` instance via X-property +
    /// β-acyclic lineage (through Lemma 3.7).
    Prop411,
    /// Prop 5.4 (possibly after the Prop 5.5 collapse): path automaton on
    /// `⊔PT` instances (through Lemma 3.7).
    Prop54 {
        /// Whether the query was first collapsed from a `⊔DWT` (Prop 5.5).
        via_collapse: bool,
    },
    /// Exponential brute force (fallback).
    BruteForce,
    /// Monte-Carlo estimate (fallback; approximate).
    MonteCarlo {
        /// Samples used.
        samples: u64,
        /// 95% confidence half-width.
        ci95_times_1e9: u64,
    },
}

/// An answer to a `PHom` instance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// `Pr(G ⇝ H)` (exact except on the Monte-Carlo route).
    pub probability: Rational,
    /// The algorithm that produced it.
    pub route: Route,
    /// The uniform provenance handle: a lineage circuit over the
    /// instance's edge ids, when
    /// [`want_provenance`](SolverOptions::want_provenance) was set and
    /// the route can compile one (the trivial routes, and Props
    /// 4.10/4.11 on connected instances). Downstream consumers evaluate
    /// it through the semiring engine: re-weighted probabilities, model
    /// counts, influences, Monte-Carlo world checks.
    pub provenance: Option<Box<Provenance>>,
}

impl Solution {
    fn new(probability: Rational, route: Route) -> Self {
        Solution {
            probability,
            route,
            provenance: None,
        }
    }
}

/// The input falls in a #P-hard cell and no fallback applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hardness {
    /// The hardness result covering this cell.
    pub prop: &'static str,
    /// Human-readable cell description.
    pub cell: String,
}

/// Why a request failed: the typed error of the [`crate::engine`] serving
/// surface. Hardness is one *variant* rather than the whole error type
/// (the historical `Err(Hardness)` conflation), leaving room for request
/// validation and resource-limit failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The input falls in a #P-hard cell and no fallback applied.
    Hard(Hardness),
    /// The request is malformed for its kind (e.g. a counting request on
    /// an instance with non-½ uncertain probabilities).
    InvalidQuery(String),
    /// A configured [`Budget`] cap was exhausted before an answer was
    /// reached: the request's own work limit tripped a cooperative
    /// [`WorkMeter`] checkpoint inside evaluation.
    BudgetExceeded {
        /// What was bounded (`"gates"`, `"samples"`, or `"time_ms"`).
        resource: &'static str,
        /// The configured limit that was hit.
        limit: u64,
    },
    /// The request's deadline passed before an answer was reached —
    /// either while queued (shed at flush by the serving runtime) or
    /// mid-evaluation (a cooperative [`WorkMeter`] checkpoint tripped).
    DeadlineExceeded,
    /// The serving runtime's bounded ingress queue was full — admission
    /// control rejected the request instead of growing memory without
    /// bound. Retry after backing off; already-admitted requests are
    /// unaffected.
    Overloaded {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The request's ticket was cancelled before an answer was produced
    /// (explicitly, or because the runtime shut down before admitting
    /// it).
    Cancelled,
    /// A worker panicked while solving this request. The panic was
    /// contained: other requests in the batch, the engine, and its cache
    /// all stay serviceable.
    Internal(String),
}

impl SolveError {
    /// The stable, machine-readable error code spoken by the network
    /// front end (`phom_net` error frames). One code per variant;
    /// existing codes never change — remote clients match on them.
    pub fn wire_code(&self) -> &'static str {
        match self {
            SolveError::Hard(_) => "hard",
            SolveError::InvalidQuery(_) => "invalid_query",
            SolveError::BudgetExceeded { .. } => "budget_exceeded",
            SolveError::DeadlineExceeded => "deadline_exceeded",
            SolveError::Overloaded { .. } => "overloaded",
            SolveError::Cancelled => "cancelled",
            SolveError::Internal(_) => "internal",
        }
    }

    /// Maps a tripped [`WorkMeter`] checkpoint onto the serving error
    /// it surfaces as.
    pub(crate) fn from_meter(stop: MeterStop) -> SolveError {
        match stop {
            MeterStop::Deadline => SolveError::DeadlineExceeded,
            MeterStop::Gates { limit } => SolveError::BudgetExceeded {
                resource: "gates",
                limit,
            },
            MeterStop::Samples { limit } => SolveError::BudgetExceeded {
                resource: "samples",
                limit,
            },
            MeterStop::Time { limit_millis } => SolveError::BudgetExceeded {
                resource: "time_ms",
                limit: limit_millis,
            },
        }
    }
}

impl From<Hardness> for SolveError {
    fn from(h: Hardness) -> Self {
        SolveError::Hard(h)
    }
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Hard(h) => write!(f, "#P-hard cell: {} [{}]", h.cell, h.prop),
            SolveError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            SolveError::BudgetExceeded { resource, limit } => {
                write!(f, "budget exceeded: {resource} limit {limit}")
            }
            SolveError::DeadlineExceeded => write!(f, "deadline exceeded before completion"),
            SolveError::Overloaded { capacity } => {
                write!(f, "overloaded: ingress queue full ({capacity} requests)")
            }
            SolveError::Cancelled => write!(f, "cancelled before completion"),
            SolveError::Internal(msg) => write!(f, "internal worker failure: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves with default options (no fallback).
#[deprecated(note = "build a long-lived `phom_core::Engine` and use \
                     `Engine::solve` / `Engine::submit` instead")]
pub fn solve(query: &Graph, instance: &ProbGraph) -> Result<Solution, Hardness> {
    solve_with_impl(query, instance, SolverOptions::default())
}

/// Owned instance-side state shared across many queries: classification,
/// the instance's label set, and the Lemma 3.7 component split (computed
/// lazily — trivial and hard routes never pay for it). One `solve` call
/// builds it once; a long-lived [`crate::Engine`] builds it once for its
/// *whole lifetime*, which is the instance-side half of the amortization.
/// `Sync`: the engine's sharded submit path reads it from many threads.
pub(crate) struct InstanceState {
    pub(crate) ic: Classification,
    h_labels: Vec<phom_graph::Label>,
    components: std::sync::OnceLock<Vec<ProbGraph>>,
}

impl InstanceState {
    pub(crate) fn new(instance: &ProbGraph) -> Self {
        let ic = classify(instance.graph());
        let mut h_labels = instance.graph().labels_used();
        h_labels.sort_unstable();
        h_labels.dedup();
        InstanceState {
            ic,
            h_labels,
            components: std::sync::OnceLock::new(),
        }
    }
}

/// A borrowed view pairing an instance with its [`InstanceState`] — what
/// the planning/execution internals pass around. `solve_with` builds the
/// state fresh per call; [`crate::Engine`] owns one and reuses it.
#[derive(Clone, Copy)]
pub(crate) struct SharedInstance<'a> {
    pub(crate) instance: &'a ProbGraph,
    state: &'a InstanceState,
}

impl<'a> SharedInstance<'a> {
    pub(crate) fn new(instance: &'a ProbGraph, state: &'a InstanceState) -> Self {
        SharedInstance { instance, state }
    }

    pub(crate) fn ic(&self) -> &Classification {
        &self.state.ic
    }

    fn h_labels(&self) -> &[phom_graph::Label] {
        &self.state.h_labels
    }

    pub(crate) fn components(&self) -> &[ProbGraph] {
        self.state
            .components
            .get_or_init(|| components::split_components(self.instance))
    }

    /// Lemma 3.7: run a per-component algorithm and combine with
    /// `1 − Π(1 − pᵢ)`. The query must be connected. On connected
    /// instances the algorithm runs on the instance directly (no clone);
    /// `1 − (1 − p) = p` exactly, so the value is unchanged.
    fn per_component(
        &self,
        query: &Graph,
        algo: impl Fn(&Graph, &ProbGraph) -> Option<Rational>,
    ) -> Option<Rational> {
        if self.ic().is_connected() {
            return algo(query, self.instance);
        }
        let per: Option<Vec<Rational>> = self.components().iter().map(|h| algo(query, h)).collect();
        Some(components::combine_connected_query(&per?))
    }
}

/// A per-query routing decision against a [`SharedInstance`] — what
/// `solve` will execute. Splitting *planning* from *execution* lets the
/// batched solver compile every circuit-backed plan into one shared arena
/// and answer them in a single engine pass, while all other plans execute
/// exactly as the per-query path does.
pub(crate) struct Planned {
    /// The query after component absorption (what the route runs on).
    pub(crate) absorbed: Graph,
    pub(crate) qc: Classification,
    pub(crate) unlabeled: bool,
    pub(crate) plan: Plan,
}

pub(crate) enum Plan {
    /// Answered during planning (the trivial and zero routes).
    Done(Solution),
    /// Prop 3.6: graded query on a `⊔DWT` instance (direct DP).
    Prop36,
    /// Prop 5.4: `→^m` on a `⊔PT` instance via the path automaton.
    Prop54 { m: usize, via_collapse: bool },
    /// Prop 4.11: connected `effective` query on a `⊔2WP` instance
    /// (circuit-compilable when the instance is connected).
    Prop411 { effective: Graph },
    /// Prop 4.10: 1WP query on a `⊔DWT` instance (circuit-compilable when
    /// the instance is connected).
    Prop410,
    /// No tractable route: hardness attribution or fallback.
    Hard,
}

// The plan handoff types cross thread boundaries in the serving tick
// path (engine shards, `phom_serve` worker pools). They are all owned
// data, but enforce `Send` at compile time so a non-Send field can never
// sneak in and silently break the pool handoff.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Planned>();
    assert_send::<Plan>();
    assert_send::<Solution>();
    assert_send::<SolveError>();
    assert_send::<SolverOptions>();
};

/// Classifies one query against the shared instance state, mirroring the
/// historical `solve_inner` decision order exactly.
pub(crate) fn plan_query(query: &Graph, shared: &SharedInstance) -> Planned {
    let trivially = |absorbed: Graph, solution: Solution| {
        let qc = classify(&absorbed);
        Planned {
            absorbed,
            qc,
            unlabeled: false,
            plan: Plan::Done(solution),
        }
    };
    // Trivial: an edgeless query maps anywhere (vertex sets are non-empty
    // and worlds keep all vertices).
    if query.n_edges() == 0 {
        return trivially(
            query.clone(),
            Solution::new(Rational::one(), Route::TrivialNoEdges),
        );
    }
    // A query edge label absent from the instance can never be matched.
    if query
        .labels_used()
        .iter()
        .any(|l| shared.h_labels().binary_search(l).is_err())
    {
        return trivially(
            query.clone(),
            Solution::new(Rational::zero(), Route::MissingLabel),
        );
    }
    // Component absorption (algo::absorb): hom-comparable components of a
    // disconnected query are redundant; this can move the input into a
    // tractable cell (e.g. duplicated ⊔1WP components become one 1WP).
    let absorbed = crate::algo::absorb::absorb_query_components(query);
    if absorbed.n_edges() == 0 {
        return trivially(
            absorbed,
            Solution::new(Rational::one(), Route::TrivialNoEdges),
        );
    }
    let qc = classify(&absorbed);
    let unlabeled = {
        let mut labels = absorbed.labels_used();
        labels.extend(shared.h_labels().iter().copied());
        labels.sort_unstable();
        labels.dedup();
        labels.len() <= 1
    };
    // On ⊔PT instances every world is a polytree forest: queries with a
    // directed cycle or a jumping edge have probability 0 (App. A).
    let plan = if test_support::plans_forced_hard() {
        // Fault injection (chaos suites): every classified plan degrades
        // to the hard cell, exercising the fallback / `OnHard` ladder.
        Plan::Hard
    } else if shared.ic().in_union_class(ConnClass::Polytree) && level_mapping(&absorbed).is_none()
    {
        Plan::Done(Solution::new(Rational::zero(), Route::ZeroOnPolytrees))
    } else if unlabeled {
        plan_unlabeled(&absorbed, &qc, shared.ic())
    } else {
        plan_labeled(&absorbed, &qc, shared.ic())
    };
    Planned {
        absorbed,
        qc,
        unlabeled,
        plan,
    }
}

fn plan_unlabeled(absorbed: &Graph, qc: &Classification, ic: &Classification) -> Plan {
    // Prop 3.6: any query on ⊔DWT instances.
    if ic.in_union_class(ConnClass::DownwardTree) {
        return Plan::Prop36;
    }
    // Prop 5.5: a ⊔DWT query collapses to →^m on every instance.
    if let Some(path_query) = collapse::collapse_union_dwt_query(absorbed) {
        if path_query.n_edges() == 0 {
            return Plan::Done(Solution::new(Rational::one(), Route::TrivialNoEdges));
        }
        if ic.in_union_class(ConnClass::TwoWayPath) {
            return Plan::Prop411 {
                effective: path_query,
            };
        }
        if ic.in_union_class(ConnClass::Polytree) {
            return Plan::Prop54 {
                m: path_query.n_edges(),
                via_collapse: !qc.flags.owp || !qc.is_connected(),
            };
        }
        return Plan::Hard;
    }
    // Connected queries on ⊔2WP instances (Prop 4.11, unlabeled flavor).
    if qc.is_connected() && ic.in_union_class(ConnClass::TwoWayPath) {
        return Plan::Prop411 {
            effective: absorbed.clone(),
        };
    }
    Plan::Hard
}

fn plan_labeled(absorbed: &Graph, qc: &Classification, ic: &Classification) -> Plan {
    if !qc.is_connected() {
        return Plan::Hard; // Prop 3.3 territory
    }
    // Prop 4.11: connected queries on ⊔2WP instances.
    if ic.in_union_class(ConnClass::TwoWayPath) {
        return Plan::Prop411 {
            effective: absorbed.clone(),
        };
    }
    // Prop 4.10: 1WP queries on ⊔DWT instances.
    if qc.flags.owp && ic.in_union_class(ConnClass::DownwardTree) {
        return Plan::Prop410;
    }
    Plan::Hard
}

/// Executes a plan exactly as the historical per-query path did; routes
/// whose polynomial algorithm declines (`None`) fall through to the
/// configured fallback / hardness attribution.
pub(crate) fn execute_plan(
    planned: Planned,
    shared: &SharedInstance,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    let Planned {
        absorbed,
        qc,
        unlabeled,
        plan,
    } = planned;
    let attempt: Option<Solution> = match plan {
        Plan::Done(solution) => return Ok(solution),
        Plan::Prop36 => dwt_instance::probability(&absorbed, shared.instance)
            .map(|p| Solution::new(p, Route::Prop36)),
        Plan::Prop54 { m, via_collapse } => shared
            .per_component(&absorbed, |_q, h| {
                path_on_pt::long_path_probability::<Rational>(h, m, opts.pt_strategy)
            })
            .map(|p| Solution::new(p, Route::Prop54 { via_collapse })),
        Plan::Prop411 { effective } => shared
            .per_component(&effective, |q, h| prop_411(q, h, opts))
            .map(|p| Solution::new(p, Route::Prop411)),
        Plan::Prop410 => shared
            .per_component(&absorbed, |q, h| {
                if opts.prefer_dp {
                    path_on_dwt::probability_dp::<Rational>(q, h)
                } else {
                    path_on_dwt::probability_lineage(q, h)
                }
            })
            .map(|p| Solution::new(p, Route::Prop410)),
        Plan::Hard => None,
    };
    match attempt {
        Some(solution) => Ok(solution),
        None => fallback(
            &absorbed,
            shared.instance,
            &qc,
            shared.ic(),
            unlabeled,
            opts,
        ),
    }
}

/// Solves with explicit options.
#[deprecated(note = "build a long-lived `phom_core::Engine` (with \
                     `EngineBuilder::default_options`) and use \
                     `Engine::solve` / `Engine::submit` instead")]
pub fn solve_with(
    query: &Graph,
    instance: &ProbGraph,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    solve_with_impl(query, instance, opts)
}

/// The non-deprecated internal single-query path: builds the instance
/// state fresh and solves. The `solve`/`solve_with` shims and in-crate
/// callers (counting, the engine's conditioning fallback) route through
/// here.
pub(crate) fn solve_with_impl(
    query: &Graph,
    instance: &ProbGraph,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    let state = InstanceState::new(instance);
    let shared = SharedInstance::new(instance, &state);
    solve_shared(query, &shared, opts)
}

/// The shared-state entry point: one [`SharedInstance`], many calls
/// (`solve_with` builds it fresh; the batched solver reuses it).
pub(crate) fn solve_shared(
    query: &Graph,
    shared: &SharedInstance,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    finish_plan(query, plan_query(query, shared), shared, opts)
}

/// Executes an already-computed plan and attaches the provenance handle —
/// the tail of `solve_shared`, split out so the batched solver can finish
/// a plan it already holds without planning the query a second time.
pub(crate) fn finish_plan(
    query: &Graph,
    planned: Planned,
    shared: &SharedInstance,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    let instance = shared.instance;
    let mut sol = execute_plan(planned, shared, opts)?;
    if opts.want_provenance && sol.provenance.is_none() {
        sol.provenance = compile_provenance(query, instance, &sol.route);
        // compile_provenance mirrors solve_inner's routing (absorb +
        // Prop 5.5 collapse); this guard catches any future drift between
        // the two before a wrong handle reaches downstream consumers.
        debug_assert!(
            sol.provenance
                .as_ref()
                .is_none_or(|p| p.probability::<Rational>(instance.probs()) == sol.probability),
            "provenance handle disagrees with the solved probability"
        );
    }
    Ok(sol)
}

/// Compiles the uniform provenance handle for the route taken, when the
/// route admits a circuit over the instance's edge ids: the trivial
/// routes yield constant circuits, Prop 4.10 the DWT fail circuit
/// (complemented polarity, mirroring `1 − Pr(¬φ)`), and Prop 4.11 the 2WP
/// match circuit. Routes whose lineage lives in a different variable
/// space (Prop 5.4's tree encoding) or that never build one (Prop 3.6's
/// direct DP, the fallbacks) return `None`; extending Lemma 3.7 routes on
/// disconnected instances needs edge-id remapping and is tracked in
/// `ROADMAP.md`.
fn compile_provenance(
    query: &Graph,
    instance: &ProbGraph,
    route: &Route,
) -> Option<Box<Provenance>> {
    let constant = |value: bool| {
        let mut arena = Arena::new(instance.graph().n_edges());
        let root = arena.constant(value);
        Some(Box::new(Provenance::positive(arena, root)))
    };
    match route {
        Route::TrivialNoEdges => constant(true),
        Route::MissingLabel | Route::ZeroOnPolytrees => constant(false),
        Route::Prop410 => {
            let absorbed = crate::algo::absorb::absorb_query_components(query);
            let (circuit, root) = lineage_circuits::fail_circuit_dwt(&absorbed, instance.graph())?;
            Some(Box::new(Provenance::complemented(circuit, root)))
        }
        Route::Prop411 => {
            let absorbed = crate::algo::absorb::absorb_query_components(query);
            // The unlabeled route may have gone through the Prop 5.5
            // collapse first; mirror it so the circuit matches the query
            // the solver actually ran. (Both lineages denote the same
            // event on 2WP instances — Prop 5.5's equivalence — so either
            // compilation is a correct provenance.)
            let unlabeled = {
                let mut labels = absorbed.labels_used();
                labels.extend(instance.graph().labels_used());
                labels.sort_unstable();
                labels.dedup();
                labels.len() <= 1
            };
            let effective = collapse::collapse_union_dwt_query(&absorbed)
                .filter(|_| unlabeled)
                .unwrap_or(absorbed);
            let (circuit, root) =
                lineage_circuits::match_circuit_2wp(&effective, instance.graph())?;
            Some(Box::new(Provenance::positive(circuit, root)))
        }
        _ => None,
    }
}

fn prop_411(query: &Graph, instance: &ProbGraph, opts: SolverOptions) -> Option<Rational> {
    if opts.prefer_dp {
        connected_on_2wp::probability_dp::<Rational>(query, instance)
    } else {
        connected_on_2wp::probability_lineage(query, instance)
    }
}

fn fallback(
    query: &Graph,
    instance: &ProbGraph,
    qc: &Classification,
    ic: &Classification,
    unlabeled: bool,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    match opts.fallback {
        Fallback::BruteForce { max_uncertain }
            if instance.uncertain_edges().len() <= max_uncertain =>
        {
            Ok(Solution::new(
                bruteforce::probability(query, instance),
                Route::BruteForce,
            ))
        }
        Fallback::MonteCarlo { samples, seed } => {
            // A sample budget caps the fallback's draw count; a zero
            // allowance means the estimate cannot run at all, and the
            // cell's hardness is reported instead.
            let samples = match opts.budget.samples {
                Some(limit) => samples.min(limit),
                None => samples,
            };
            if samples == 0 {
                return Err(hardness(qc, ic, unlabeled));
            }
            let mut rng = SmallRng::seed_from_u64(seed);
            let est = montecarlo::estimate(query, instance, samples, &mut rng);
            Ok(Solution::new(
                dyadic_from_f64(est.mean),
                Route::MonteCarlo {
                    samples,
                    ci95_times_1e9: (est.ci95 * 1e9) as u64,
                },
            ))
        }
        _ => Err(hardness(qc, ic, unlabeled)),
    }
}

/// Best-effort attribution of the hardness result covering the input's
/// cell.
fn hardness(qc: &Classification, ic: &Classification, unlabeled: bool) -> Hardness {
    let q_union = !qc.is_connected();
    let q_class = qc.flags.most_specific();
    let i_class = ic.flags.most_specific();
    let i_in_pt = ic.in_union_class(ConnClass::Polytree);
    let i_in_dwt = ic.in_union_class(ConnClass::DownwardTree);
    let prop: &'static str = if !i_in_pt {
        "Prop 5.1" // instance beyond ⊔PT: hard already for 1WP queries
    } else if !unlabeled {
        if q_union {
            "Prop 3.3"
        } else if i_in_dwt {
            match q_class {
                ConnClass::TwoWayPath => "Prop 4.5",
                _ => "Prop 4.4",
            }
        } else {
            "Prop 4.1"
        }
    } else if q_union {
        "Prop 3.4"
    } else {
        "Prop 5.6"
    };
    Hardness {
        prop,
        cell: format!(
            "{} query ({}) on {} instance ({})",
            if unlabeled { "unlabeled" } else { "labeled" },
            crate::tables::class_name(q_class, q_union),
            if ic.is_connected() {
                "connected"
            } else {
                "disconnected"
            },
            crate::tables::class_name(i_class, !ic.is_connected()),
        ),
    }
}

/// Fault injection for the chaos and degradation suites — not part of
/// the public API.
#[doc(hidden)]
pub mod test_support {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FORCE_HARD: AtomicBool = AtomicBool::new(false);

    /// While set, [`plan_query`](super::plan_query) classifies every
    /// non-trivial query as [`Plan::Hard`](super::Plan::Hard), so all
    /// probability traffic exercises the fallback / `OnHard`
    /// degradation ladder. Global and process-wide: serialize tests
    /// that flip it, and remember that hardness answers are cached —
    /// use fresh engines (or distinct queries) per test.
    pub fn force_hard_plans(on: bool) {
        FORCE_HARD.store(on, Ordering::SeqCst);
    }

    pub(crate) fn plans_forced_hard() -> bool {
        FORCE_HARD.load(Ordering::SeqCst)
    }
}

/// Rounds an `f64` in `[0,1]` to a dyadic rational with denominator 2³².
pub(crate) fn dyadic_from_f64(x: f64) -> Rational {
    let denom: u64 = 1 << 32;
    let num = (x.clamp(0.0, 1.0) * denom as f64).round() as u64;
    Rational::new(false, Natural::from_u64(num), Natural::from_u64(denom))
}

#[cfg(test)]
#[allow(deprecated)] // the suite exercises the legacy shims on purpose
mod tests {
    use super::*;
    use phom_graph::fixtures;
    use phom_graph::generate;
    use phom_graph::Label;

    #[test]
    fn example_2_2_is_hard_cell_but_brute_forcible() {
        // Figure 1's H is a connected graph with an undirected cycle, so
        // the solver reports hardness without a fallback...
        let h = fixtures::figure_1();
        let g = fixtures::example_2_2_query();
        let err = solve(&g, &h).unwrap_err();
        assert_eq!(err.prop, "Prop 5.1");
        // ...and solves exactly with the brute-force fallback.
        let opts = SolverOptions {
            fallback: Fallback::BruteForce { max_uncertain: 10 },
            ..Default::default()
        };
        let sol = solve_with(&g, &h, opts).unwrap();
        assert_eq!(sol.probability, fixtures::example_2_2_answer());
        assert_eq!(sol.route, Route::BruteForce);
    }

    #[test]
    fn trivial_routes() {
        let h = fixtures::figure_1();
        let sol = solve(&Graph::directed_path(0), &h).unwrap();
        assert_eq!(sol.route, Route::TrivialNoEdges);
        assert!(sol.probability.is_one());

        let sol = solve(&Graph::one_way_path(&[Label(9)]), &h).unwrap();
        assert_eq!(sol.route, Route::MissingLabel);
        assert!(sol.probability.is_zero());
    }

    #[test]
    fn limit_errors_have_stable_codes_and_messages() {
        // The wire codes are protocol constants — net clients dispatch
        // on them, so they must never drift.
        let budget = SolveError::BudgetExceeded {
            resource: "gates",
            limit: 4096,
        };
        assert_eq!(budget.wire_code(), "budget_exceeded");
        assert_eq!(budget.to_string(), "budget exceeded: gates limit 4096");
        assert_eq!(
            SolveError::DeadlineExceeded.wire_code(),
            "deadline_exceeded"
        );
        assert_eq!(
            SolveError::DeadlineExceeded.to_string(),
            "deadline exceeded before completion"
        );
        // Every MeterStop maps onto exactly the right serving error.
        assert_eq!(
            SolveError::from_meter(MeterStop::Deadline),
            SolveError::DeadlineExceeded
        );
        assert_eq!(
            SolveError::from_meter(MeterStop::Gates { limit: 7 }),
            SolveError::BudgetExceeded {
                resource: "gates",
                limit: 7
            }
        );
        assert_eq!(
            SolveError::from_meter(MeterStop::Samples { limit: 9 }),
            SolveError::BudgetExceeded {
                resource: "samples",
                limit: 9
            }
        );
        assert_eq!(
            SolveError::from_meter(MeterStop::Time { limit_millis: 25 }),
            SolveError::BudgetExceeded {
                resource: "time_ms",
                limit: 25
            }
        );
    }

    #[test]
    fn cyclic_query_on_polytree_is_zero() {
        let mut b = phom_graph::GraphBuilder::with_vertices(2);
        b.edge(0, 1, Label::UNLABELED);
        b.edge(1, 0, Label::UNLABELED);
        let q = b.build();
        let mut rng = SmallRng::seed_from_u64(1);
        let h_graph = generate::polytree(10, 1, &mut rng);
        let h = generate::with_probabilities(h_graph, generate::ProbProfile::default(), &mut rng);
        let sol = solve(&q, &h).unwrap();
        assert_eq!(sol.route, Route::ZeroOnPolytrees);
        assert!(sol.probability.is_zero());
    }

    #[test]
    fn routes_match_expected_propositions() {
        let mut rng = SmallRng::seed_from_u64(2);
        // Prop 3.6: branching unlabeled query on a DWT instance.
        let q = generate::graded_query(5, 2, 2, &mut rng);
        let h = generate::with_probabilities(
            generate::downward_tree(12, 1, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        assert_eq!(solve(&q, &h).unwrap().route, Route::Prop36);

        // Prop 4.10: labeled path query on a labeled DWT.
        let tree = generate::downward_tree(12, 3, &mut rng);
        let h = generate::with_probabilities(tree, generate::ProbProfile::default(), &mut rng);
        let q = generate::one_way_path(2, 3, &mut rng);
        assert_eq!(solve(&q, &h).unwrap().route, Route::Prop410);

        // Prop 4.11: labeled connected query on a 2WP.
        let h = generate::with_probabilities(
            generate::two_way_path(8, 3, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        let q = generate::connected(3, 1, 3, &mut rng);
        assert_eq!(solve(&q, &h).unwrap().route, Route::Prop411);

        // Prop 5.4: unlabeled path query on a polytree.
        let h = generate::with_probabilities(
            generate::polytree(12, 1, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        let q = Graph::directed_path(3);
        assert!(matches!(solve(&q, &h).unwrap().route, Route::Prop54 { .. }));
    }

    #[test]
    fn hard_cells_reported_with_propositions() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Labeled 1WP on PT: Prop 4.1.
        let h = generate::with_probabilities(
            generate::polytree(10, 2, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        // Make sure the query's labels occur and it is genuinely labeled.
        let q = match generate::planted_path_query(h.graph(), 2, &mut rng) {
            Some(q) if !q.is_effectively_unlabeled() => q,
            _ => {
                let labels = [h.graph().edge(0).label, h.graph().edge(1).label];
                Graph::one_way_path(&labels)
            }
        };
        if let Err(e) = solve(&q, &h) {
            assert!(e.prop.contains("4.1") || e.prop.contains("4.4"), "{e:?}");
        }

        // Unlabeled 2WP query on PT: Prop 5.6.
        let q = Graph::two_way_path(&[
            (phom_graph::Dir::Forward, Label::UNLABELED),
            (phom_graph::Dir::Backward, Label::UNLABELED),
            (phom_graph::Dir::Forward, Label::UNLABELED),
        ]);
        let h = generate::with_probabilities(
            generate::polytree(10, 1, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        let e = solve(&q, &h).unwrap_err();
        assert_eq!(e.prop, "Prop 5.6");
    }

    #[test]
    fn provenance_handles_agree_with_solutions() {
        use phom_graph::hom::exists_hom_into_world;
        let mut rng = SmallRng::seed_from_u64(0x9A0E);
        let opts = SolverOptions {
            want_provenance: true,
            ..Default::default()
        };
        for trial in 0..40 {
            let h_graph = if trial % 2 == 0 {
                generate::two_way_path(rng.gen_range(1..7), 2, &mut rng)
            } else {
                generate::downward_tree(rng.gen_range(2..8), 2, &mut rng)
            };
            let h = generate::with_probabilities(
                h_graph,
                generate::ProbProfile {
                    certain_ratio: 0.25,
                    denominator: 4,
                },
                &mut rng,
            );
            let q = generate::planted_path_query(h.graph(), rng.gen_range(1..4), &mut rng)
                .unwrap_or_else(|| generate::one_way_path(2, 2, &mut rng));
            let sol = solve_with(&q, &h, opts).expect("tractable cell");
            let Some(prov) = &sol.provenance else {
                // Routes without an edge-space circuit (Prop 3.6's direct
                // DP, Prop 5.4's tree encoding) legitimately skip the
                // handle.
                assert!(
                    matches!(sol.route, Route::Prop36 | Route::Prop54 { .. }),
                    "trial {trial}: route {:?} should attach provenance",
                    sol.route
                );
                continue;
            };
            // The handle re-derives the solution probability through the
            // engine, and agrees with the homomorphism test per world.
            assert_eq!(prov.probability::<Rational>(h.probs()), sol.probability);
            for (mask, _) in h.worlds() {
                assert_eq!(
                    prov.holds_in(&mask),
                    exists_hom_into_world(&q, h.graph(), &mask),
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn trivial_routes_attach_constant_provenance() {
        let h = fixtures::figure_1();
        let opts = SolverOptions {
            want_provenance: true,
            ..Default::default()
        };
        let sol = solve_with(&Graph::directed_path(0), &h, opts).unwrap();
        let prov = sol.provenance.expect("trivial route");
        assert!(prov.probability::<Rational>(h.probs()).is_one());
        let sol = solve_with(&Graph::one_way_path(&[Label(9)]), &h, opts).unwrap();
        let prov = sol.provenance.expect("missing-label route");
        assert!(prov.probability::<Rational>(h.probs()).is_zero());
    }

    #[test]
    fn single_nonzero_label_collapse_regression() {
        // Regression (found by the provenance cross-check): query and
        // instance sharing the single label S ≠ Label(0) route through the
        // Prop 5.5 collapse; the collapsed path must keep S or the Prop
        // 4.11 matcher silently reports probability 0.
        let s = Label(1);
        let mut b = phom_graph::GraphBuilder::with_vertices(3);
        b.edge(0, 1, s);
        b.edge(2, 1, s);
        let h = ProbGraph::new(
            b.build(),
            vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)],
        );
        let q = Graph::one_way_path(&[s]);
        let sol = solve(&q, &h).unwrap();
        assert_eq!(sol.probability, crate::bruteforce::probability(&q, &h));
        assert_eq!(sol.probability, Rational::from_ratio(3, 4));
    }

    #[test]
    fn provenance_is_opt_in() {
        let h = fixtures::figure_1();
        let sol = solve(&Graph::directed_path(0), &h).unwrap();
        assert!(
            sol.provenance.is_none(),
            "no handle without want_provenance"
        );
    }

    #[test]
    fn monte_carlo_fallback_close_to_brute_force() {
        let h = fixtures::figure_1();
        let g = fixtures::example_2_2_query();
        let opts = SolverOptions {
            fallback: Fallback::MonteCarlo {
                samples: 20_000,
                seed: 7,
            },
            ..Default::default()
        };
        let sol = solve_with(&g, &h, opts).unwrap();
        let exact = fixtures::example_2_2_answer().to_f64();
        assert!((sol.probability.to_f64() - exact).abs() < 0.02);
        assert!(matches!(sol.route, Route::MonteCarlo { .. }));
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
}
