//! The `PHom` dispatcher: classifies the input into the paper's
//! classification and routes it to the unique applicable polynomial-time
//! algorithm — or reports the matching hardness result.
//!
//! The dispatcher is *opportunistic*: class-level hardness (Tables 1–3)
//! speaks about worst cases, so individually easy inputs inside hard cells
//! (e.g. a query using a label absent from the instance, a cyclic query
//! on a polytree instance, or a disconnected query whose components
//! absorb into one — see [`crate::algo::absorb`]) are still answered in
//! polynomial time through the fast paths below.

use crate::algo::{collapse, components, connected_on_2wp, dwt_instance, path_on_dwt, path_on_pt};
use crate::algo::path_on_pt::PtStrategy;
use crate::{bruteforce, montecarlo};
use phom_graph::classes::{classify, Classification};
use phom_graph::graded::level_mapping;
use phom_graph::{ConnClass, Graph, ProbGraph};
use phom_num::{Natural, Rational};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// What to do when the input falls in a #P-hard cell.
#[derive(Clone, Copy, Debug, Default)]
pub enum Fallback {
    /// Report hardness (default).
    #[default]
    None,
    /// Enumerate possible worlds if at most `max_uncertain` edges are
    /// uncertain (exponential!).
    BruteForce {
        /// Bound on the number of uncertain edges (worlds = 2^this).
        max_uncertain: usize,
    },
    /// Monte-Carlo estimation (approximate, with the returned probability
    /// rounded to a dyadic rational).
    MonteCarlo {
        /// Number of sampled worlds.
        samples: u64,
        /// RNG seed, for reproducibility.
        seed: u64,
    },
}

/// Solver configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverOptions {
    /// Fallback on hard cells.
    pub fallback: Fallback,
    /// Pipeline for the polytree automaton cases (Prop 5.4).
    pub pt_strategy: PtStrategy,
    /// Use the direct dynamic programs instead of the paper's β-acyclic
    /// lineages for Props 4.10/4.11 (ablation; same answers).
    pub prefer_dp: bool,
}

/// How a solution was obtained.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Route {
    /// The query has no edges: probability 1.
    TrivialNoEdges,
    /// The query uses an edge label the instance lacks: probability 0.
    MissingLabel,
    /// Cyclic or non-graded query on a `⊔PT` instance: probability 0.
    ZeroOnPolytrees,
    /// Prop 3.6: graded collapse on a `⊔DWT` instance.
    Prop36,
    /// Prop 4.10: 1WP query on `⊔DWT` instance via β-acyclic lineage
    /// (through Lemma 3.7 for disconnected instances).
    Prop410,
    /// Prop 4.11: connected query on `⊔2WP` instance via X-property +
    /// β-acyclic lineage (through Lemma 3.7).
    Prop411,
    /// Prop 5.4 (possibly after the Prop 5.5 collapse): path automaton on
    /// `⊔PT` instances (through Lemma 3.7).
    Prop54 {
        /// Whether the query was first collapsed from a `⊔DWT` (Prop 5.5).
        via_collapse: bool,
    },
    /// Exponential brute force (fallback).
    BruteForce,
    /// Monte-Carlo estimate (fallback; approximate).
    MonteCarlo {
        /// Samples used.
        samples: u64,
        /// 95% confidence half-width.
        ci95_times_1e9: u64,
    },
}

/// An answer to a `PHom` instance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// `Pr(G ⇝ H)` (exact except on the Monte-Carlo route).
    pub probability: Rational,
    /// The algorithm that produced it.
    pub route: Route,
}

/// The input falls in a #P-hard cell and no fallback applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hardness {
    /// The hardness result covering this cell.
    pub prop: &'static str,
    /// Human-readable cell description.
    pub cell: String,
}

/// Solves with default options (no fallback).
pub fn solve(query: &Graph, instance: &ProbGraph) -> Result<Solution, Hardness> {
    solve_with(query, instance, SolverOptions::default())
}

/// Solves with explicit options.
pub fn solve_with(
    query: &Graph,
    instance: &ProbGraph,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    // Trivial: an edgeless query maps anywhere (vertex sets are non-empty
    // and worlds keep all vertices).
    if query.n_edges() == 0 {
        return Ok(Solution { probability: Rational::one(), route: Route::TrivialNoEdges });
    }
    // A query edge label absent from the instance can never be matched.
    {
        let h_labels = instance.graph().labels_used();
        if query.labels_used().iter().any(|l| !h_labels.contains(l)) {
            return Ok(Solution { probability: Rational::zero(), route: Route::MissingLabel });
        }
    }
    // Component absorption (algo::absorb): hom-comparable components of a
    // disconnected query are redundant; this can move the input into a
    // tractable cell (e.g. duplicated ⊔1WP components become one 1WP).
    let simplified;
    let query = {
        let s = crate::algo::absorb::absorb_query_components(query);
        simplified = s;
        &simplified
    };
    if query.n_edges() == 0 {
        return Ok(Solution { probability: Rational::one(), route: Route::TrivialNoEdges });
    }
    let qc = classify(query);
    let ic = classify(instance.graph());
    let unlabeled = {
        let mut labels = query.labels_used();
        labels.extend(instance.graph().labels_used());
        labels.sort_unstable();
        labels.dedup();
        labels.len() <= 1
    };

    // On ⊔PT instances every world is a polytree forest: queries with a
    // directed cycle or a jumping edge have probability 0 (App. A).
    if ic.in_union_class(ConnClass::Polytree) && level_mapping(query).is_none() {
        return Ok(Solution { probability: Rational::zero(), route: Route::ZeroOnPolytrees });
    }

    let attempt = if unlabeled {
        solve_unlabeled(query, instance, &qc, &ic, opts)
    } else {
        solve_labeled(query, instance, &qc, &ic, opts)
    };
    match attempt {
        Some(solution) => Ok(solution),
        None => fallback(query, instance, &qc, &ic, unlabeled, opts),
    }
}

fn solve_unlabeled(
    query: &Graph,
    instance: &ProbGraph,
    qc: &Classification,
    ic: &Classification,
    opts: SolverOptions,
) -> Option<Solution> {
    // Prop 3.6: any query on ⊔DWT instances.
    if ic.in_union_class(ConnClass::DownwardTree) {
        let probability = dwt_instance::probability(query, instance)?;
        return Some(Solution { probability, route: Route::Prop36 });
    }
    // Prop 5.5: a ⊔DWT query collapses to →^m on every instance.
    if let Some(path_query) = collapse::collapse_union_dwt_query(query) {
        if path_query.n_edges() == 0 {
            return Some(Solution {
                probability: Rational::one(),
                route: Route::TrivialNoEdges,
            });
        }
        if ic.in_union_class(ConnClass::TwoWayPath) {
            let p = per_component(&path_query, instance, |q, h| {
                prop_411(q, h, opts)
            })?;
            return Some(Solution { probability: p, route: Route::Prop411 });
        }
        if ic.in_union_class(ConnClass::Polytree) {
            let m = path_query.n_edges();
            let p = per_component(&path_query, instance, |_q, h| {
                path_on_pt::long_path_probability::<Rational>(h, m, opts.pt_strategy)
            })?;
            return Some(Solution {
                probability: p,
                route: Route::Prop54 { via_collapse: !qc.flags.owp || !qc.is_connected() },
            });
        }
        return None;
    }
    // Connected queries on ⊔2WP instances (Prop 4.11, unlabeled flavor).
    if qc.is_connected() && ic.in_union_class(ConnClass::TwoWayPath) {
        let p = per_component(query, instance, |q, h| prop_411(q, h, opts))?;
        return Some(Solution { probability: p, route: Route::Prop411 });
    }
    None
}

fn solve_labeled(
    query: &Graph,
    instance: &ProbGraph,
    qc: &Classification,
    ic: &Classification,
    opts: SolverOptions,
) -> Option<Solution> {
    if !qc.is_connected() {
        return None; // Prop 3.3 territory
    }
    // Prop 4.11: connected queries on ⊔2WP instances.
    if ic.in_union_class(ConnClass::TwoWayPath) {
        let p = per_component(query, instance, |q, h| prop_411(q, h, opts))?;
        return Some(Solution { probability: p, route: Route::Prop411 });
    }
    // Prop 4.10: 1WP queries on ⊔DWT instances.
    if qc.flags.owp && ic.in_union_class(ConnClass::DownwardTree) {
        let p = per_component(query, instance, |q, h| {
            if opts.prefer_dp {
                path_on_dwt::probability_dp::<Rational>(q, h)
            } else {
                path_on_dwt::probability_lineage(q, h)
            }
        })?;
        return Some(Solution { probability: p, route: Route::Prop410 });
    }
    None
}

fn prop_411(query: &Graph, instance: &ProbGraph, opts: SolverOptions) -> Option<Rational> {
    if opts.prefer_dp {
        connected_on_2wp::probability_dp::<Rational>(query, instance)
    } else {
        connected_on_2wp::probability_lineage(query, instance)
    }
}

/// Lemma 3.7: run a per-component algorithm and combine with
/// `1 − Π(1 − pᵢ)`. The query must be connected.
fn per_component(
    query: &Graph,
    instance: &ProbGraph,
    algo: impl Fn(&Graph, &ProbGraph) -> Option<Rational>,
) -> Option<Rational> {
    let parts = components::split_components(instance);
    let per: Option<Vec<Rational>> = parts.iter().map(|h| algo(query, h)).collect();
    Some(components::combine_connected_query(&per?))
}

fn fallback(
    query: &Graph,
    instance: &ProbGraph,
    qc: &Classification,
    ic: &Classification,
    unlabeled: bool,
    opts: SolverOptions,
) -> Result<Solution, Hardness> {
    match opts.fallback {
        Fallback::BruteForce { max_uncertain }
            if instance.uncertain_edges().len() <= max_uncertain =>
        {
            Ok(Solution {
                probability: bruteforce::probability(query, instance),
                route: Route::BruteForce,
            })
        }
        Fallback::MonteCarlo { samples, seed } => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let est = montecarlo::estimate(query, instance, samples, &mut rng);
            Ok(Solution {
                probability: dyadic_from_f64(est.mean),
                route: Route::MonteCarlo {
                    samples,
                    ci95_times_1e9: (est.ci95 * 1e9) as u64,
                },
            })
        }
        _ => Err(hardness(qc, ic, unlabeled)),
    }
}

/// Best-effort attribution of the hardness result covering the input's
/// cell.
fn hardness(qc: &Classification, ic: &Classification, unlabeled: bool) -> Hardness {
    let q_union = !qc.is_connected();
    let q_class = qc.flags.most_specific();
    let i_class = ic.flags.most_specific();
    let i_in_pt = ic.in_union_class(ConnClass::Polytree);
    let i_in_dwt = ic.in_union_class(ConnClass::DownwardTree);
    let prop: &'static str = if !i_in_pt {
        "Prop 5.1" // instance beyond ⊔PT: hard already for 1WP queries
    } else if !unlabeled {
        if q_union {
            "Prop 3.3"
        } else if i_in_dwt {
            match q_class {
                ConnClass::TwoWayPath => "Prop 4.5",
                _ => "Prop 4.4",
            }
        } else {
            "Prop 4.1"
        }
    } else if q_union {
        "Prop 3.4"
    } else {
        "Prop 5.6"
    };
    Hardness {
        prop,
        cell: format!(
            "{} query ({}) on {} instance ({})",
            if unlabeled { "unlabeled" } else { "labeled" },
            crate::tables::class_name(q_class, q_union),
            if ic.is_connected() { "connected" } else { "disconnected" },
            crate::tables::class_name(i_class, !ic.is_connected()),
        ),
    }
}

/// Rounds an `f64` in `[0,1]` to a dyadic rational with denominator 2³².
fn dyadic_from_f64(x: f64) -> Rational {
    let denom: u64 = 1 << 32;
    let num = (x.clamp(0.0, 1.0) * denom as f64).round() as u64;
    Rational::new(false, Natural::from_u64(num), Natural::from_u64(denom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::fixtures;
    use phom_graph::generate;
    use phom_graph::Label;
    

    #[test]
    fn example_2_2_is_hard_cell_but_brute_forcible() {
        // Figure 1's H is a connected graph with an undirected cycle, so
        // the solver reports hardness without a fallback...
        let h = fixtures::figure_1();
        let g = fixtures::example_2_2_query();
        let err = solve(&g, &h).unwrap_err();
        assert_eq!(err.prop, "Prop 5.1");
        // ...and solves exactly with the brute-force fallback.
        let opts = SolverOptions {
            fallback: Fallback::BruteForce { max_uncertain: 10 },
            ..Default::default()
        };
        let sol = solve_with(&g, &h, opts).unwrap();
        assert_eq!(sol.probability, fixtures::example_2_2_answer());
        assert_eq!(sol.route, Route::BruteForce);
    }

    #[test]
    fn trivial_routes() {
        let h = fixtures::figure_1();
        let sol = solve(&Graph::directed_path(0), &h).unwrap();
        assert_eq!(sol.route, Route::TrivialNoEdges);
        assert!(sol.probability.is_one());

        let sol = solve(&Graph::one_way_path(&[Label(9)]), &h).unwrap();
        assert_eq!(sol.route, Route::MissingLabel);
        assert!(sol.probability.is_zero());
    }

    #[test]
    fn cyclic_query_on_polytree_is_zero() {
        let mut b = phom_graph::GraphBuilder::with_vertices(2);
        b.edge(0, 1, Label::UNLABELED);
        b.edge(1, 0, Label::UNLABELED);
        let q = b.build();
        let mut rng = SmallRng::seed_from_u64(1);
        let h_graph = generate::polytree(10, 1, &mut rng);
        let h = generate::with_probabilities(h_graph, generate::ProbProfile::default(), &mut rng);
        let sol = solve(&q, &h).unwrap();
        assert_eq!(sol.route, Route::ZeroOnPolytrees);
        assert!(sol.probability.is_zero());
    }

    #[test]
    fn routes_match_expected_propositions() {
        let mut rng = SmallRng::seed_from_u64(2);
        // Prop 3.6: branching unlabeled query on a DWT instance.
        let q = generate::graded_query(5, 2, 2, &mut rng);
        let h = generate::with_probabilities(
            generate::downward_tree(12, 1, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        assert_eq!(solve(&q, &h).unwrap().route, Route::Prop36);

        // Prop 4.10: labeled path query on a labeled DWT.
        let tree = generate::downward_tree(12, 3, &mut rng);
        let h = generate::with_probabilities(tree, generate::ProbProfile::default(), &mut rng);
        let q = generate::one_way_path(2, 3, &mut rng);
        assert_eq!(solve(&q, &h).unwrap().route, Route::Prop410);

        // Prop 4.11: labeled connected query on a 2WP.
        let h = generate::with_probabilities(
            generate::two_way_path(8, 3, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        let q = generate::connected(3, 1, 3, &mut rng);
        assert_eq!(solve(&q, &h).unwrap().route, Route::Prop411);

        // Prop 5.4: unlabeled path query on a polytree.
        let h = generate::with_probabilities(
            generate::polytree(12, 1, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        let q = Graph::directed_path(3);
        assert!(matches!(solve(&q, &h).unwrap().route, Route::Prop54 { .. }));
    }

    #[test]
    fn hard_cells_reported_with_propositions() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Labeled 1WP on PT: Prop 4.1.
        let h = generate::with_probabilities(
            generate::polytree(10, 2, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        // Make sure the query's labels occur and it is genuinely labeled.
        let q = match generate::planted_path_query(h.graph(), 2, &mut rng) {
            Some(q) if !q.is_effectively_unlabeled() => q,
            _ => {
                let labels = [h.graph().edge(0).label, h.graph().edge(1).label];
                Graph::one_way_path(&labels)
            }
        };
        if let Err(e) = solve(&q, &h) {
            assert!(e.prop.contains("4.1") || e.prop.contains("4.4"), "{e:?}");
        }

        // Unlabeled 2WP query on PT: Prop 5.6.
        let q = Graph::two_way_path(&[
            (phom_graph::Dir::Forward, Label::UNLABELED),
            (phom_graph::Dir::Backward, Label::UNLABELED),
            (phom_graph::Dir::Forward, Label::UNLABELED),
        ]);
        let h = generate::with_probabilities(
            generate::polytree(10, 1, &mut rng),
            generate::ProbProfile::default(),
            &mut rng,
        );
        let e = solve(&q, &h).unwrap_err();
        assert_eq!(e.prop, "Prop 5.6");
    }

    #[test]
    fn monte_carlo_fallback_close_to_brute_force() {
        let h = fixtures::figure_1();
        let g = fixtures::example_2_2_query();
        let opts = SolverOptions {
            fallback: Fallback::MonteCarlo { samples: 20_000, seed: 7 },
            ..Default::default()
        };
        let sol = solve_with(&g, &h, opts).unwrap();
        let exact = fixtures::example_2_2_answer().to_f64();
        assert!((sol.probability.to_f64() - exact).abs() < 0.02);
        assert!(matches!(sol.route, Route::MonteCarlo { .. }));
    }

    use rand::rngs::SmallRng;
    use rand::SeedableRng;
}
