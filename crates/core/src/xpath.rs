//! **Extension (paper §6, future work):** path queries with a *descendant
//! axis* "in the spirit of XML query languages", evaluated on probabilistic
//! downward trees — the probabilistic-XML-flavored setting of Prop 4.10.
//!
//! A [`PathPattern`] is a sequence of steps; a match in a possible world is
//! a chain `v₀, v₁, …, v_k` where step `i` connects `v_{i−1}` to `v_i`:
//!
//! * `Child(l)` — one present edge labeled `l`;
//! * `Descendant(l)` — a downward path of ≥ 1 present edges whose **last**
//!   edge is labeled `l` (intermediate labels are arbitrary) — the XPath
//!   `descendant::l` axis.
//!
//! Patterns without `Descendant` are exactly the 1WP queries of Prop 4.10.
//!
//! ### Algorithm
//!
//! Along any root-to-leaf path, matching is a word problem: compile the
//! pattern to an NFA whose state `i` means "steps `1..i` matched by a
//! contiguous present suffix ending here"; state 0 is re-seeded everywhere
//! (matches may start anywhere) and an absent edge resets the active set
//! (matches cannot cross missing edges). The active set at a vertex is a
//! deterministic function of the presence of its ancestor edges, so the
//! probability follows from a memoized top-down DP over `(vertex, active
//! set)` pairs. Worst-case the number of reachable sets is exponential in
//! the pattern length (as for wildcard-pattern determinization); on real
//! patterns it is tiny, and the test oracle bounds stay small.

use phom_graph::classes::as_downward_tree;
use phom_graph::{Graph, Label, ProbGraph, VertexId};
use phom_num::Weight;
use std::collections::HashMap;

/// One step of a path pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// One present edge with this label (`/l` in XPath terms).
    Child(Label),
    /// A present downward path of ≥ 1 edges whose last edge has this label
    /// (`//l`).
    Descendant(Label),
}

/// A root-free path pattern (matches may start at any vertex).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathPattern {
    steps: Vec<Step>,
}

impl PathPattern {
    /// Builds a pattern.
    pub fn new(steps: Vec<Step>) -> Self {
        assert!(steps.len() < 63, "pattern too long for bitmask states");
        PathPattern { steps }
    }

    /// The pattern `R₁/R₂/…` of plain child steps — a Prop 4.10 query.
    pub fn children(labels: &[Label]) -> Self {
        PathPattern::new(labels.iter().map(|&l| Step::Child(l)).collect())
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the pattern has no steps (matches trivially).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// NFA transition on reading a *present* edge labeled `label`:
    /// state 0 is always re-seeded.
    fn advance(&self, active: u64, label: Label) -> u64 {
        let mut out = 1u64; // state 0: a match can start below this edge
        for (i, step) in self.steps.iter().enumerate() {
            if active >> i & 1 == 0 {
                continue;
            }
            match *step {
                Step::Child(l) => {
                    if l == label {
                        out |= 1 << (i + 1);
                    }
                }
                Step::Descendant(l) => {
                    out |= 1 << i; // the descendant axis keeps scanning
                    if l == label {
                        out |= 1 << (i + 1);
                    }
                }
            }
        }
        out
    }

    fn accepting(&self, active: u64) -> bool {
        active >> self.steps.len() & 1 == 1
    }

    /// Decides whether the pattern has a match in a *fixed world* of a DWT
    /// instance (present edges per the mask). Implemented as a literal
    /// recursive search over match chains — deliberately independent of the
    /// NFA, as the test oracle.
    pub fn matches_world(&self, h: &Graph, present: &[bool]) -> bool {
        let view = match as_downward_tree(h) {
            Some(v) => v,
            None => return false,
        };
        if self.is_empty() {
            return true;
        }
        // try to match steps[i..] starting at vertex v.
        fn rec(pat: &PathPattern, h: &Graph, present: &[bool], v: VertexId, i: usize) -> bool {
            if i == pat.steps.len() {
                return true;
            }
            match pat.steps[i] {
                Step::Child(l) => h.out_edges(v).iter().any(|&e| {
                    present[e] && h.edge(e).label == l && rec(pat, h, present, h.edge(e).dst, i + 1)
                }),
                Step::Descendant(l) => {
                    // Walk down any number of present edges; the edge that
                    // completes the step must be labeled l.
                    fn walk(
                        pat: &PathPattern,
                        h: &Graph,
                        present: &[bool],
                        v: VertexId,
                        i: usize,
                        l: Label,
                    ) -> bool {
                        h.out_edges(v).iter().any(|&e| {
                            if !present[e] {
                                return false;
                            }
                            let w = h.edge(e).dst;
                            (h.edge(e).label == l && rec(pat, h, present, w, i + 1))
                                || walk(pat, h, present, w, i, l)
                        })
                    }
                    walk(pat, h, present, v, i, l)
                }
            }
        }
        let _ = &view;
        (0..h.n_vertices()).any(|v| rec(self, h, present, v, 0))
    }
}

/// `Pr[the pattern has a match]` on a *connected DWT* probabilistic
/// instance. Returns `None` when the instance is not a connected DWT.
pub fn probability<W: Weight>(pattern: &PathPattern, instance: &ProbGraph) -> Option<W> {
    let view = as_downward_tree(instance.graph())?;
    if pattern.is_empty() {
        return Some(W::one());
    }
    let g = instance.graph();
    // fail[(v, active)] = Pr[no match completes inside subtree(v) | the
    // active set at v is `active`]; active sets never contain the accept
    // bit (acceptance is absorbed at transition time).
    let mut memo: HashMap<(VertexId, u64), W> = HashMap::new();
    // Iterative over reverse BFS is awkward because the reachable active
    // sets flow top-down; use explicit recursion with memoization instead
    // (depth = tree height).
    fn go<W: Weight>(
        pattern: &PathPattern,
        g: &Graph,
        instance: &ProbGraph,
        memo: &mut HashMap<(VertexId, u64), W>,
        v: VertexId,
        active: u64,
    ) -> W {
        if let Some(w) = memo.get(&(v, active)) {
            return w.clone();
        }
        let mut acc = W::one();
        for &e in g.out_edges(v) {
            let c = g.edge(e).dst;
            let p = W::from_rational(instance.prob(e));
            let q = p.complement();
            // Absent: the child's active set resets to {start}.
            let absent = if q.is_zero() {
                W::zero()
            } else {
                q.mul(&go(pattern, g, instance, memo, c, 1))
            };
            // Present: advance; a completed match kills this branch.
            let present = if p.is_zero() {
                W::zero()
            } else {
                let next = pattern.advance(active, g.edge(e).label);
                if pattern.accepting(next) {
                    W::zero()
                } else {
                    p.mul(&go(pattern, g, instance, memo, c, next))
                }
            };
            acc = acc.mul(&absent.add(&present));
        }
        memo.insert((v, active), acc.clone());
        acc
    }
    let fail = go(pattern, g, instance, &mut memo, view.root, 1);
    Some(fail.complement())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::generate::{self, ProbProfile};
    use phom_num::Rational;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const R: Label = Label(0);
    const S: Label = Label(1);

    fn brute(pattern: &PathPattern, h: &ProbGraph) -> Rational {
        let mut total = Rational::zero();
        for (mask, p) in h.worlds() {
            if pattern.matches_world(h.graph(), &mask) {
                total = total.add(&p);
            }
        }
        total
    }

    #[test]
    fn child_only_matches_prop_410() {
        // Child-only patterns are 1WP queries: compare with Prop 4.10.
        let mut rng = SmallRng::seed_from_u64(81);
        for _ in 0..40 {
            let tree = generate::downward_tree(rng.gen_range(1..9), 2, &mut rng);
            let h = generate::with_probabilities(
                tree,
                ProbProfile {
                    certain_ratio: 0.25,
                    denominator: 4,
                },
                &mut rng,
            );
            let labels: Vec<Label> = (0..rng.gen_range(1..4))
                .map(|_| Label(rng.gen_range(0..2)))
                .collect();
            let pattern = PathPattern::children(&labels);
            let q = Graph::one_way_path(&labels);
            let via_pattern: Rational = probability(&pattern, &h).unwrap();
            let via_410: Rational = crate::algo::path_on_dwt::probability_lineage(&q, &h).unwrap();
            assert_eq!(via_pattern, via_410, "labels={labels:?}");
        }
    }

    #[test]
    fn descendant_axis_on_a_chain() {
        // Chain R, S, R with probs ½ each. Pattern //R: any world with an
        // R edge: edges 0 and 2 are R → 1 − (½)² = ¾.
        let h = ProbGraph::new(
            Graph::one_way_path(&[R, S, R]),
            vec![
                Rational::from_ratio(1, 2),
                Rational::from_ratio(1, 2),
                Rational::from_ratio(1, 2),
            ],
        );
        let p: Rational = probability(&PathPattern::new(vec![Step::Descendant(R)]), &h).unwrap();
        assert_eq!(p, Rational::from_ratio(3, 4));
        // Pattern R//R: an R edge followed (at any depth) by another R.
        // Only match: edges 0,1,2 all present (R at 0, descendant path via
        // 1 ending with R at 2): 1/8.
        let p: Rational = probability(
            &PathPattern::new(vec![Step::Child(R), Step::Descendant(R)]),
            &h,
        )
        .unwrap();
        assert_eq!(p, Rational::from_ratio(1, 8));
    }

    #[test]
    fn empty_pattern_is_certain() {
        let h = ProbGraph::certain(Graph::one_way_path(&[R]));
        let p: Rational = probability(&PathPattern::new(vec![]), &h).unwrap();
        assert!(p.is_one());
    }

    #[test]
    fn non_dwt_rejected() {
        let mut b = phom_graph::GraphBuilder::with_vertices(3);
        b.edge(0, 1, R);
        b.edge(2, 1, R);
        let h = ProbGraph::certain(b.build());
        assert!(probability::<Rational>(&PathPattern::children(&[R]), &h).is_none());
    }

    #[test]
    fn random_patterns_match_brute_force() {
        let mut rng = SmallRng::seed_from_u64(82);
        for _ in 0..80 {
            let tree = generate::downward_tree(rng.gen_range(2..9), 2, &mut rng);
            let h = generate::with_probabilities(
                tree,
                ProbProfile {
                    certain_ratio: 0.3,
                    denominator: 4,
                },
                &mut rng,
            );
            let steps: Vec<Step> = (0..rng.gen_range(1..4))
                .map(|_| {
                    let l = Label(rng.gen_range(0..2));
                    if rng.gen_bool(0.5) {
                        Step::Child(l)
                    } else {
                        Step::Descendant(l)
                    }
                })
                .collect();
            let pattern = PathPattern::new(steps);
            let got: Rational = probability(&pattern, &h).unwrap();
            let expect = brute(&pattern, &h);
            assert_eq!(got, expect, "pattern={pattern:?} h={:?}", h.graph());
        }
    }

    #[test]
    fn f64_mode_agrees() {
        let mut rng = SmallRng::seed_from_u64(83);
        let tree = generate::downward_tree(30, 2, &mut rng);
        let h = generate::with_probabilities(tree, ProbProfile::default(), &mut rng);
        let pattern = PathPattern::new(vec![
            Step::Descendant(R),
            Step::Child(S),
            Step::Descendant(S),
        ]);
        let exact: Rational = probability(&pattern, &h).unwrap();
        let float: f64 = probability(&pattern, &h).unwrap();
        assert!((exact.to_f64() - float).abs() < 1e-9);
    }

    use phom_graph::Graph;
    use phom_graph::ProbGraph;
}
