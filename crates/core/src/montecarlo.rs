//! Monte-Carlo estimation of `Pr(G ⇝ H)`.
//!
//! The paper's hard cells are #P-hard to solve exactly, but the underlying
//! probability is trivially approximable by sampling possible worlds: each
//! sample needs one homomorphism test (NP-hard in combined complexity in
//! general, but cheap for the small queries where brute force already
//! explodes in the *instance*). This estimator is the "practical fallback"
//! discussed as future work in the paper's conclusion, and an ablation
//! (ABL-4) in the benchmark harness.

use phom_graph::hom::exists_hom_into_world;
use phom_graph::{Graph, ProbGraph};
use phom_lineage::{MeterStop, Provenance, WorkMeter};
use rand::Rng;

/// The result of a sampling run.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Point estimate of the probability.
    pub mean: f64,
    /// Number of samples.
    pub samples: u64,
    /// Half-width of an approximate 95% confidence interval
    /// (normal approximation).
    pub ci95: f64,
}

impl Estimate {
    /// True iff `value` lies within the 95% confidence interval (widened by
    /// a small absolute slack for degenerate cases).
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95 + 1e-9
    }
}

/// The one sampling loop behind every estimator: draws `samples` worlds
/// from the product distribution over `prob_true` and reports the hit
/// rate of `event` with its normal-approximation confidence interval.
fn estimate_event<R: Rng>(
    prob_true: &[f64],
    samples: u64,
    rng: &mut R,
    mut event: impl FnMut(&[bool]) -> bool,
) -> Estimate {
    assert!(samples > 0);
    let mut hits = 0u64;
    let mut mask = vec![false; prob_true.len()];
    for _ in 0..samples {
        for (e, p) in prob_true.iter().enumerate() {
            mask[e] = rng.gen_bool(*p);
        }
        if event(&mask) {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    let var = mean * (1.0 - mean) / samples as f64;
    Estimate {
        mean,
        samples,
        ci95: 1.96 * var.sqrt(),
    }
}

/// [`estimate_event`] under a cooperative [`WorkMeter`]: each sample is
/// charged before it is drawn, and the run stops at the first tripped
/// checkpoint (sample budget, time budget, or deadline). This is the
/// *anytime* loop behind `OnHard::Estimate`: when the meter trips after
/// at least one sample, the truncated run is still a valid (wider)
/// estimate, so it is returned as `Ok` alongside the stop reason; a
/// stop before the first sample is a hard `Err`.
fn estimate_event_metered<R: Rng>(
    prob_true: &[f64],
    samples: u64,
    rng: &mut R,
    meter: &mut WorkMeter,
    mut event: impl FnMut(&[bool]) -> bool,
) -> Result<(Estimate, Option<MeterStop>), MeterStop> {
    let mut hits = 0u64;
    let mut drawn = 0u64;
    let mut stopped = None;
    let mut mask = vec![false; prob_true.len()];
    while drawn < samples {
        if let Err(stop) = meter.charge_sample() {
            if drawn == 0 {
                return Err(stop);
            }
            stopped = Some(stop);
            break;
        }
        for (e, p) in prob_true.iter().enumerate() {
            mask[e] = rng.gen_bool(*p);
        }
        if event(&mask) {
            hits += 1;
        }
        drawn += 1;
    }
    if drawn == 0 {
        // `samples == 0`: nothing was asked for and nothing tripped.
        return Err(MeterStop::Samples { limit: 0 });
    }
    let mean = hits as f64 / drawn as f64;
    let var = mean * (1.0 - mean) / drawn as f64;
    Ok((
        Estimate {
            mean,
            samples: drawn,
            ci95: 1.96 * var.sqrt(),
        },
        stopped,
    ))
}

/// Metered [`estimate`]: draws up to `samples` worlds, stopping early
/// at the first tripped [`WorkMeter`] checkpoint. See
/// [`estimate_event_metered`] for the anytime contract.
pub fn estimate_metered<R: Rng>(
    query: &Graph,
    instance: &ProbGraph,
    samples: u64,
    rng: &mut R,
    meter: &mut WorkMeter,
) -> Result<(Estimate, Option<MeterStop>), MeterStop> {
    let probs: Vec<f64> = instance.probs().iter().map(|p| p.to_f64()).collect();
    estimate_event_metered(&probs, samples, rng, meter, |mask| {
        exists_hom_into_world(query, instance.graph(), mask)
    })
}

/// Metered [`estimate_ucq`]: the UCQ analogue of [`estimate_metered`].
pub fn estimate_ucq_metered<R: Rng>(
    ucq: &crate::ucq::Ucq,
    instance: &ProbGraph,
    samples: u64,
    rng: &mut R,
    meter: &mut WorkMeter,
) -> Result<(Estimate, Option<MeterStop>), MeterStop> {
    let probs: Vec<f64> = instance.probs().iter().map(|p| p.to_f64()).collect();
    estimate_event_metered(&probs, samples, rng, meter, |mask| {
        ucq.holds_in_world(instance.graph(), mask)
    })
}

/// Estimates `Pr(G ⇝ H)` from `samples` independent possible worlds.
pub fn estimate<R: Rng>(
    query: &Graph,
    instance: &ProbGraph,
    samples: u64,
    rng: &mut R,
) -> Estimate {
    let probs: Vec<f64> = instance.probs().iter().map(|p| p.to_f64()).collect();
    estimate_event(&probs, samples, rng, |mask| {
        exists_hom_into_world(query, instance.graph(), mask)
    })
}

/// Estimates `Pr(Q ⇝ H)` for a union of conjunctive queries from
/// `samples` independent possible worlds — the UCQ analogue of
/// [`estimate`], used by the engine's Monte-Carlo fallback on UCQ
/// requests beyond the tractable routes.
pub fn estimate_ucq<R: Rng>(
    ucq: &crate::ucq::Ucq,
    instance: &ProbGraph,
    samples: u64,
    rng: &mut R,
) -> Estimate {
    let probs: Vec<f64> = instance.probs().iter().map(|p| p.to_f64()).collect();
    estimate_event(&probs, samples, rng, |mask| {
        ucq.holds_in_world(instance.graph(), mask)
    })
}

/// Estimates `Pr[event]` from a compiled [`Provenance`] handle: worlds
/// are sampled from the product distribution and checked with the
/// engine's Boolean-semiring pass instead of a homomorphism search. On
/// routes that attach provenance this replaces the NP-hard per-sample
/// hom test with a linear circuit evaluation — and because the compiled
/// handle fixes only the query/instance pair (not the probabilities),
/// the same circuit serves any number of probability vectors over that
/// instance's edges.
pub fn estimate_from_provenance<R: Rng>(
    prov: &Provenance,
    prob_true: &[f64],
    samples: u64,
    rng: &mut R,
) -> Estimate {
    assert_eq!(prob_true.len(), prov.circuit.num_vars());
    estimate_event(prob_true, samples, rng, |mask| prov.holds_in(mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use phom_graph::fixtures;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn estimator_converges_on_example_2_2() {
        let h = fixtures::figure_1();
        let g = fixtures::example_2_2_query();
        let exact = bruteforce::probability(&g, &h).to_f64();
        let mut rng = SmallRng::seed_from_u64(11);
        let est = estimate(&g, &h, 20_000, &mut rng);
        assert!(est.covers(exact), "estimate {est:?} vs exact {exact}");
        assert!(est.ci95 < 0.01);
    }

    #[test]
    fn provenance_estimator_matches_exact_circuit_probability() {
        // A 2WP route compiles a provenance circuit; sampling through the
        // engine's Boolean pass must converge to its exact probability.
        let mut rng = SmallRng::seed_from_u64(12);
        let h_graph = phom_graph::generate::two_way_path(6, 2, &mut rng);
        let h = phom_graph::generate::with_probabilities(
            h_graph,
            phom_graph::generate::ProbProfile {
                certain_ratio: 0.2,
                denominator: 4,
            },
            &mut rng,
        );
        let q = phom_graph::generate::two_way_path(2, 2, &mut rng);
        let opts = crate::solver::SolverOptions {
            want_provenance: true,
            ..Default::default()
        };
        let sol = crate::solver::solve_with_impl(&q, &h, opts).unwrap();
        let prov = sol.provenance.expect("2WP route attaches provenance");
        let probs: Vec<f64> = h.probs().iter().map(|p| p.to_f64()).collect();
        let est = estimate_from_provenance(&prov, &probs, 20_000, &mut rng);
        assert!(
            est.covers(sol.probability.to_f64()),
            "{est:?} vs {}",
            sol.probability.to_f64()
        );
    }

    #[test]
    fn metered_estimator_is_deterministic_and_anytime() {
        let h = fixtures::figure_1();
        let g = fixtures::example_2_2_query();
        // A full unbudgeted run draws the same worlds as the unmetered
        // estimator, sample for sample.
        let mut rng_a = SmallRng::seed_from_u64(7);
        let plain = estimate(&g, &h, 500, &mut rng_a);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let mut meter = WorkMeter::unbounded();
        let (metered, stop) = estimate_metered(&g, &h, 500, &mut rng_b, &mut meter).unwrap();
        assert!(stop.is_none());
        assert_eq!(plain.mean, metered.mean);
        assert_eq!(metered.samples, 500);

        // A sample budget truncates the run — anytime: still an estimate.
        let mut rng_c = SmallRng::seed_from_u64(7);
        let mut tight = WorkMeter::unbounded().with_sample_budget(100);
        let (truncated, stop) = estimate_metered(&g, &h, 500, &mut rng_c, &mut tight).unwrap();
        assert_eq!(truncated.samples, 100);
        assert_eq!(stop, Some(MeterStop::Samples { limit: 100 }));
        assert!(truncated.ci95 >= metered.ci95);

        // A zero sample budget cannot start at all.
        let mut rng_d = SmallRng::seed_from_u64(7);
        let mut zero = WorkMeter::unbounded().with_sample_budget(0);
        let got = estimate_metered(&g, &h, 500, &mut rng_d, &mut zero);
        assert!(
            matches!(got, Err(MeterStop::Samples { limit: 0 })),
            "{got:?}"
        );
    }

    #[test]
    fn extreme_probabilities() {
        let h = ProbGraph::certain(fixtures::figure_3_owp());
        let g = fixtures::figure_3_owp();
        let mut rng = SmallRng::seed_from_u64(5);
        let est = estimate(&g, &h, 100, &mut rng);
        assert_eq!(est.mean, 1.0);
        let g2 = Graph::one_way_path(&[phom_graph::Label(9)]);
        let est2 = estimate(&g2, &h, 100, &mut rng);
        assert_eq!(est2.mean, 0.0);
    }

    use phom_graph::Graph;
}
