//! Unions of conjunctive queries (UCQs): the Section 6 future-work
//! extension "allow unions of conjunctive queries as in \[20]".
//!
//! A UCQ is a finite disjunction `Q = G₁ ∨ … ∨ G_r` of query graphs;
//! `Q ⇝ H'` holds when **some** disjunct has a homomorphism to the world
//! `H'`, and `Pr(Q ⇝ H)` sums the mass of those worlds. Three of the
//! paper's tractable cells extend to UCQs without giving up polynomial
//! combined complexity:
//!
//! * **Collapse route** — if every disjunct is an (effectively) unlabeled
//!   `⊔DWT` with one common label, disjunct `Gᵢ` is equivalent to
//!   `→^{mᵢ}` on every instance (Prop 5.5), so the union is equivalent to
//!   `→^{min mᵢ}`; the treewidth walk DP
//!   ([`crate::algo::walk_on_tw`]) then evaluates it on *any* instance of
//!   bounded treewidth (polytrees included).
//! * **DWT lineage route** — if every disjunct is a labeled 1WP and every
//!   instance component is a DWT, the union of the per-disjunct lineages
//!   of Prop 4.10 is still β-acyclic for the same bottom-up elimination
//!   order: when the parent edge of a current leaf `b` is eliminated, the
//!   surviving clauses through it are upward chains ending at `b`, nested
//!   by inclusion regardless of the disjuncts' differing lengths.
//! * **2WP lineage route** — likewise, if every disjunct is connected and
//!   every instance component is a 2WP, the union of the Prop 4.11
//!   interval lineages is β-acyclic for the path order (intervals pruned
//!   to a common left endpoint are nested).
//!
//! Disconnected instances are handled by the Lemma 3.7 argument, which
//! survives the union when all disjuncts are connected:
//! `Pr(Q ⇝ ⊔ Hⱼ) = 1 − Π_j (1 − Pr(Q ⇝ Hⱼ))`.

use crate::algo::{connected_on_2wp, path_on_dwt, walk_on_tw};
use phom_graph::classes::classify;
use phom_graph::hom::exists_hom_into_world;
use phom_graph::{ConnClass, Graph, Label, ProbGraph};
use phom_lineage::beta::beta_dnf_probability_with_order;
use phom_lineage::Dnf;
use phom_num::{Rational, Weight};

/// A union of conjunctive queries over graphs: `G₁ ∨ … ∨ G_r`.
///
/// The empty union is the constant-false query (probability 0).
#[derive(Clone, Debug)]
pub struct Ucq {
    disjuncts: Vec<Graph>,
}

impl Ucq {
    /// Wraps the disjuncts.
    pub fn new(disjuncts: Vec<Graph>) -> Self {
        Ucq { disjuncts }
    }

    /// A single-disjunct UCQ (plain conjunctive query).
    pub fn singleton(query: Graph) -> Self {
        Ucq {
            disjuncts: vec![query],
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Graph] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// True iff the union is empty (constant false).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Whether the UCQ holds in the world of `instance` selected by the
    /// `present` edge mask.
    pub fn holds_in_world(&self, instance: &Graph, present: &[bool]) -> bool {
        self.disjuncts
            .iter()
            .any(|g| exists_hom_into_world(g, instance, present))
    }

    /// True iff some disjunct is trivially satisfied (edgeless query:
    /// every non-empty world satisfies it).
    pub fn has_trivial_disjunct(&self) -> bool {
        self.disjuncts.iter().any(|g| g.n_edges() == 0)
    }
}

/// Which tractable route evaluated a UCQ (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UcqRoute {
    /// Some disjunct is edgeless, so the union is constant true.
    Trivial,
    /// All disjuncts collapsed to `→^m`; treewidth walk DP.
    CollapsedWalk {
        /// The length of the collapsed path (`min` over disjuncts).
        m: usize,
    },
    /// Union of Prop 4.10 lineages on `⊔DWT` instance components.
    UnionLineageDwt,
    /// Union of Prop 4.11 lineages on `⊔2WP` instance components.
    UnionLineage2wp,
    /// Exponential brute force (the engine's configured fallback on
    /// shapes beyond the tractable routes).
    BruteForce,
    /// Monte-Carlo estimate (engine fallback; approximate).
    MonteCarlo {
        /// Samples used.
        samples: u64,
    },
}

/// Exact `Pr(Q ⇝ H)` by world enumeration — the UCQ reference oracle
/// (exponential in the number of uncertain edges).
pub fn bruteforce_probability(ucq: &Ucq, instance: &ProbGraph) -> Rational {
    let mut total = Rational::zero();
    for (mask, p) in instance.worlds() {
        if p.is_zero() {
            continue;
        }
        if ucq.holds_in_world(instance.graph(), &mask) {
            total = total.add(&p);
        }
    }
    total
}

/// Tries the collapse route: every disjunct an effectively-unlabeled
/// `⊔DWT` over one common label. Returns the collapsed length and the
/// common label.
fn try_collapse(ucq: &Ucq) -> Option<(usize, Label)> {
    let mut min_m: Option<usize> = None;
    let mut label: Option<Label> = None;
    for g in ucq.disjuncts() {
        let collapsed = crate::algo::collapse::collapse_union_dwt_query(g)?;
        let m = collapsed.n_edges();
        if m > 0 {
            let l = g.labels_used()[0];
            match label {
                None => label = Some(l),
                Some(prev) if prev != l => return None,
                Some(_) => {}
            }
        }
        min_m = Some(min_m.map_or(m, |cur| cur.min(m)));
    }
    Some((min_m?, label.unwrap_or(Label::UNLABELED)))
}

/// The merged lineage of all disjuncts on one connected instance
/// component, by `lineage_of`, together with the shared elimination
/// order. Returns `None` when some disjunct is out of scope for the
/// route; `Ok(None)` inner when the merged DNF is a tautology.
fn union_lineage(
    ucq: &Ucq,
    component: &Graph,
    lineage_of: impl Fn(&Graph, &Graph) -> Option<(Dnf, Vec<usize>)>,
) -> Option<(Dnf, Vec<usize>)> {
    let mut merged = Dnf::falsum(component.n_edges());
    let mut order: Option<Vec<usize>> = None;
    for g in ucq.disjuncts() {
        let (dnf, ord) = lineage_of(g, component)?;
        for clause in dnf.clauses() {
            merged.push_clause(clause.clone());
        }
        // The elimination order is a property of the instance alone.
        if order.is_none() {
            order = Some(ord);
        }
    }
    Some((merged, order?))
}

/// Evaluates the UCQ on a connected component via a lineage route.
fn component_probability<W: Weight>(
    ucq: &Ucq,
    component: &ProbGraph,
    lineage_of: impl Fn(&Graph, &Graph) -> Option<(Dnf, Vec<usize>)>,
) -> Option<W> {
    let (dnf, order) = union_lineage(ucq, component.graph(), lineage_of)?;
    if dnf.is_valid() {
        return Some(W::one());
    }
    let probs: Vec<W> = component.probs().iter().map(W::from_rational).collect();
    beta_dnf_probability_with_order(&dnf, &probs, &order).ok()
}

/// `Pr(Q ⇝ H)` with the route taken, or `None` when no implemented
/// tractable route applies (the problem is #P-hard already for single
/// disjuncts beyond these cells; use [`bruteforce_probability`] then).
pub fn probability<W: Weight>(ucq: &Ucq, instance: &ProbGraph) -> Option<(W, UcqRoute)> {
    let state = crate::solver::InstanceState::new(instance);
    probability_shared(ucq, &crate::solver::SharedInstance::new(instance, &state))
}

/// The shared-state UCQ path: a long-lived [`crate::Engine`] passes its
/// cached classification and component split here instead of re-deriving
/// them per request.
pub(crate) fn probability_shared<W: Weight>(
    ucq: &Ucq,
    shared: &crate::solver::SharedInstance,
) -> Option<(W, UcqRoute)> {
    let instance = shared.instance;
    if ucq.is_empty() {
        return Some((W::zero(), UcqRoute::Trivial));
    }
    if ucq.has_trivial_disjunct() {
        return Some((W::one(), UcqRoute::Trivial));
    }
    // Route A: collapse + treewidth walk DP (any instance).
    if let Some((m, label)) = try_collapse(ucq) {
        let usable: Vec<bool> = instance
            .graph()
            .edges()
            .iter()
            .map(|e| e.label == label)
            .collect();
        let nice = phom_graph::treedecomp::NiceDecomposition::heuristic(instance.graph());
        let p = walk_on_tw::long_walk_probability_with(instance, m, &nice, &usable);
        return Some((p, UcqRoute::CollapsedWalk { m }));
    }
    // Lineage routes need connected disjuncts (for Lemma 3.7) and a
    // suitably-shaped instance; both are checked per component.
    let all_connected = ucq.disjuncts().iter().all(|g| classify(g).is_connected());
    if !all_connected {
        return None;
    }
    let cls = shared.ic();
    let parts = shared.components();
    // Route B: all disjuncts 1WP, all components DWT.
    if cls.in_union_class(ConnClass::DownwardTree)
        && ucq
            .disjuncts()
            .iter()
            .all(|g| classify(g).in_class(ConnClass::OneWayPath))
    {
        let mut failure = W::one();
        for part in parts {
            let p: W = component_probability(ucq, part, path_on_dwt::lineage)?;
            failure = failure.mul(&p.complement());
        }
        return Some((failure.complement(), UcqRoute::UnionLineageDwt));
    }
    // Route C: connected disjuncts, all components 2WP.
    if cls.in_union_class(ConnClass::TwoWayPath) {
        let mut failure = W::one();
        for part in parts {
            let p: W = component_probability(ucq, part, connected_on_2wp::lineage)?;
            failure = failure.mul(&p.complement());
        }
        return Some((failure.complement(), UcqRoute::UnionLineage2wp));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::{GraphBuilder, Label};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xDCA7)
    }

    #[test]
    fn empty_union_is_false() {
        let h = ProbGraph::certain(Graph::directed_path(2));
        let (p, route) = probability::<Rational>(&Ucq::new(vec![]), &h).unwrap();
        assert_eq!(p, Rational::zero());
        assert_eq!(route, UcqRoute::Trivial);
        assert_eq!(
            bruteforce_probability(&Ucq::new(vec![]), &h),
            Rational::zero()
        );
    }

    #[test]
    fn edgeless_disjunct_is_true() {
        let h = ProbGraph::certain(Graph::directed_path(2));
        let ucq = Ucq::new(vec![
            Graph::directed_path(5),
            GraphBuilder::with_vertices(1).build(),
        ]);
        let (p, route) = probability::<Rational>(&ucq, &h).unwrap();
        assert_eq!(p, Rational::one());
        assert_eq!(route, UcqRoute::Trivial);
    }

    #[test]
    fn collapse_route_takes_min_length() {
        // →³ ∨ →⁵ ≡ →³ on every instance.
        let ucq = Ucq::new(vec![Graph::directed_path(3), Graph::directed_path(5)]);
        let mut r = rng();
        let g = generate::arbitrary(6, 0.3, 1, &mut r);
        let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
        let (p, route) = probability::<Rational>(&ucq, &h).unwrap();
        assert_eq!(route, UcqRoute::CollapsedWalk { m: 3 });
        assert_eq!(p, bruteforce_probability(&ucq, &h));
    }

    #[test]
    fn collapse_route_with_dwt_disjuncts_random() {
        let mut r = rng();
        for trial in 0..25 {
            let disjuncts: Vec<Graph> = (0..r.gen_range(1..4))
                .map(|_| {
                    generate::union_of(r.gen_range(1..3), &mut r, |rr| {
                        generate::downward_tree(rr.gen_range(1..5), 1, rr)
                    })
                })
                .collect();
            let ucq = Ucq::new(disjuncts);
            let g = generate::arbitrary(r.gen_range(2..6), 0.35, 1, &mut r);
            if g.n_edges() > 9 {
                continue;
            }
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
            let (p, _route) = probability::<Rational>(&ucq, &h).expect("collapse applies");
            assert_eq!(p, bruteforce_probability(&ucq, &h), "trial {trial}");
        }
    }

    #[test]
    fn mixed_label_disjuncts_do_not_collapse() {
        // R-path ∨ S-path: no common label, and on a DWT instance the
        // lineage route must take over.
        let q_r = Graph::one_way_path(&[Label(0), Label(0)]);
        let q_s = Graph::one_way_path(&[Label(1)]);
        let ucq = Ucq::new(vec![q_r.clone(), q_s.clone()]);
        let mut r = rng();
        for _ in 0..20 {
            let g = generate::downward_tree(r.gen_range(2..8), 2, &mut r);
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
            let (p, route) = probability::<Rational>(&ucq, &h).expect("DWT lineage applies");
            assert_eq!(route, UcqRoute::UnionLineageDwt);
            assert_eq!(p, bruteforce_probability(&ucq, &h));
        }
    }

    #[test]
    fn dwt_route_on_disconnected_instances() {
        let q1 = Graph::one_way_path(&[Label(0), Label(1)]);
        let q2 = Graph::one_way_path(&[Label(1), Label(1)]);
        let ucq = Ucq::new(vec![q1, q2]);
        let mut r = rng();
        for _ in 0..15 {
            let g = generate::union_of(2, &mut r, |rr| {
                generate::downward_tree(rr.gen_range(2..6), 2, rr)
            });
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
            let (p, route) = probability::<Rational>(&ucq, &h).expect("⊔DWT instance");
            assert_eq!(route, UcqRoute::UnionLineageDwt);
            assert_eq!(p, bruteforce_probability(&ucq, &h));
        }
    }

    #[test]
    fn twp_route_with_connected_disjuncts() {
        let mut r = rng();
        for trial in 0..20 {
            // Disjuncts: labeled 2WPs and small connected queries.
            let disjuncts: Vec<Graph> = (0..r.gen_range(1..4))
                .map(|_| match r.gen_range(0..3) {
                    0 => generate::two_way_path(r.gen_range(1..4), 2, &mut r),
                    1 => generate::one_way_path(r.gen_range(1..4), 2, &mut r),
                    _ => generate::connected(r.gen_range(2..5), 1, 2, &mut r),
                })
                .collect();
            let ucq = Ucq::new(disjuncts);
            let g = generate::two_way_path(r.gen_range(1..8), 2, &mut r);
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
            match probability::<Rational>(&ucq, &h) {
                Some((p, route)) => {
                    // A forward-only path instance is also a DWT, so the
                    // DWT route may legitimately win the dispatch.
                    assert_ne!(route, UcqRoute::Trivial, "disjuncts all have edges");
                    assert_eq!(
                        p,
                        bruteforce_probability(&ucq, &h),
                        "trial {trial}, route {route:?}"
                    );
                }
                None => panic!("some route should apply on 2WP instances (trial {trial})"),
            }
        }
    }

    #[test]
    fn adding_disjuncts_is_monotone() {
        let mut r = rng();
        let g = generate::two_way_path(6, 2, &mut r);
        let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
        let q1 = generate::one_way_path(2, 2, &mut r);
        let q2 = generate::one_way_path(3, 2, &mut r);
        let (p1, _) = probability::<Rational>(&Ucq::new(vec![q1.clone()]), &h).unwrap();
        let (p12, _) = probability::<Rational>(&Ucq::new(vec![q1, q2]), &h).unwrap();
        assert!(p12 >= p1, "a union is at least as likely as a disjunct");
    }

    #[test]
    fn no_route_for_hard_shapes() {
        // A 2WP disjunct on a branching polytree instance: Prop 5.6 says
        // #P-hard; the dispatcher must decline.
        let q = phom_graph::fixtures::figure_4_polytree();
        let ucq = Ucq::new(vec![q]);
        let mut r = rng();
        let g = generate::polytree(8, 1, &mut r);
        let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
        // (The instance may happen to be a 2WP; retry shape guarantees a
        // branching one quickly, so just check consistency when declined.)
        if let Some((p, _)) = probability::<Rational>(&ucq, &h) {
            assert_eq!(p, bruteforce_probability(&ucq, &h));
        }
    }

    #[test]
    fn singleton_matches_plain_solver_on_dwt() {
        let mut r = rng();
        for _ in 0..10 {
            let g = generate::downward_tree(r.gen_range(2..8), 2, &mut r);
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut r);
            let q = generate::one_way_path(r.gen_range(1..4), 2, &mut r);
            let (p, _) = probability::<Rational>(&Ucq::singleton(q.clone()), &h).unwrap();
            assert_eq!(p, crate::bruteforce::probability(&q, &h));
        }
    }
}
