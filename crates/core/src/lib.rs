//! The `PHom` solver: probabilistic graph homomorphism with the combined
//! complexity classification of Amarilli, Monet & Senellart (PODS 2017).
//!
//! Given a query graph `G` and a probabilistic instance `(H, π)`, the
//! problem is to compute
//!
//! ```text
//! Pr(G ⇝ H) = Σ_{H' ⊆ H, G ⇝ H'} Pr(H')
//! ```
//!
//! The [`solver`] module classifies the input into a cell of the paper's
//! Tables 1–3 and either runs the unique applicable polynomial-time
//! algorithm or reports the matching hardness result (optionally falling
//! back to exponential [`bruteforce`] or to the [`montecarlo`] estimator).
//!
//! The per-proposition algorithms live in [`algo`]:
//!
//! * Prop 3.6 — arbitrary unlabeled queries on `⊔DWT` instances
//!   ([`algo::dwt_instance`]), via graded-DAG level mappings;
//! * Prop 4.10 — labeled one-way-path queries on DWT instances
//!   ([`algo::path_on_dwt`]), via β-acyclic lineage (plus a direct DP);
//! * Prop 4.11 — connected queries on two-way-path instances
//!   ([`algo::connected_on_2wp`]), via the X-property and β-acyclic
//!   lineage (plus a direct interval DP);
//! * Prop 5.4/5.5 — unlabeled `⊔DWT` queries on polytree instances
//!   ([`algo::path_on_pt`], [`algo::collapse`]), via tree automata and
//!   d-DNNF compilation;
//! * Lemma 3.7 — disconnected instances ([`algo::components`]).

pub mod algo;
pub mod batch;
pub mod bruteforce;
pub mod counting;
pub mod engine;
pub mod montecarlo;
pub mod sensitivity;
pub mod solver;
pub mod tables;
pub mod ucq;
pub mod xpath;

pub use batch::{instance_fingerprint, BatchStats, CacheHandle, CacheStats, EvalCache, QueryKey};
#[allow(deprecated)] // the shims stay exported so no caller breaks
pub use batch::{solve_many, solve_many_cached, solve_many_stats};
pub use engine::{
    Engine, EngineBuilder, Fleet, Lane, Request, Response, Tick, TickConfig, TickOutput, TickUnit,
    WorkerScratch,
};
#[allow(deprecated)] // the shims stay exported so no caller breaks
pub use solver::{solve, solve_with};
pub use solver::{
    Budget, Fallback, Hardness, OnHard, Precision, Route, Solution, SolveError, SolverOptions,
};
pub use tables::{CellStatus, Setting, TableId};
