//! The brute-force reference solver: enumerate the possible worlds.
//!
//! Exponential in the number of uncertain edges — this is the baseline the
//! paper's hardness results say you cannot in general avoid, the test
//! oracle for every polynomial-time algorithm in this crate, and the
//! workhorse behind the reduction-verification experiments.

use phom_graph::hom::exists_hom_into_world;
use phom_graph::{Graph, ProbGraph};
use phom_num::Rational;

/// Computes `Pr(G ⇝ H)` exactly by summing over all possible worlds.
///
/// Panics (via [`ProbGraph::worlds`]) when the instance has ≥ 63 uncertain
/// edges; intended for small instances only.
pub fn probability(query: &Graph, instance: &ProbGraph) -> Rational {
    let mut total = Rational::zero();
    for (mask, p) in instance.worlds() {
        if p.is_zero() {
            continue;
        }
        if exists_hom_into_world(query, instance.graph(), &mask) {
            total = total.add(&p);
        }
    }
    total
}

/// The number of worlds the enumeration will visit (2^#uncertain).
pub fn world_count(instance: &ProbGraph) -> u64 {
    instance.n_nonzero_worlds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::fixtures;
    use phom_graph::{GraphBuilder, Label};

    #[test]
    fn example_2_2_exact_value() {
        // The headline example: Pr(G ⇝ H) = 0.574 = 287/500.
        let h = fixtures::figure_1();
        let g = fixtures::example_2_2_query();
        assert_eq!(probability(&g, &h), fixtures::example_2_2_answer());
    }

    #[test]
    fn no_edge_query_has_probability_one() {
        let h = fixtures::figure_1();
        let g = Graph::directed_path(0);
        assert!(probability(&g, &h).is_one());
    }

    #[test]
    fn unsatisfiable_query_has_probability_zero() {
        let h = fixtures::figure_1();
        // A label not present in H.
        let g = Graph::one_way_path(&[Label(7)]);
        assert!(probability(&g, &h).is_zero());
    }

    #[test]
    fn single_uncertain_edge() {
        let mut b = GraphBuilder::with_vertices(2);
        b.edge(0, 1, Label(0));
        let h = ProbGraph::new(b.build(), vec![Rational::from_ratio(3, 7)]);
        let g = Graph::one_way_path(&[Label(0)]);
        assert_eq!(probability(&g, &h), Rational::from_ratio(3, 7));
        assert_eq!(world_count(&h), 2);
    }

    #[test]
    fn certain_match_is_probability_one() {
        let g = fixtures::figure_3_owp();
        let h = ProbGraph::certain(g.clone());
        assert!(probability(&g, &h).is_one());
    }
}
