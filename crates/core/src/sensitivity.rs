//! Sensitivity analysis for `PHom`: which probabilistic edge matters?
//!
//! For a query `G` and instance `(H, π)`, the **influence** of edge `e`
//! is `∂ Pr(G ⇝ H) / ∂ π(e) = Pr(G ⇝ H | e present) − Pr(G ⇝ H | e
//! absent)` — the Birnbaum importance of `e` for the query event. It is
//! the right quantity for "which uncertain fact should we verify first?"
//! decisions on probabilistic data: cleaning edge `e` moves the query
//! probability by `influence(e) · (1 − π(e))` (if confirmed) or
//! `−influence(e) · π(e)` (if refuted).
//!
//! Three evaluation strategies, cross-checked in the tests — all exact:
//!
//! * **Engine gradients** ([`influences`]) — on the routes that compile a
//!   provenance circuit (Prop 4.11's 2WP instances, Prop 4.10's DWT
//!   instances), all influences come from the engine's one forward + one
//!   backward sweep ([`Provenance::gradients`]).
//! * **Forward-mode dual numbers** ([`influence_forward`]) — the
//!   [`Dual`](phom_num::Dual) semifield flows through the *β-elimination*
//!   of Theorem 4.9 (divisions included), returning one edge's influence
//!   per pass without any circuit. The demonstration that the `Semiring`
//!   abstraction, not bespoke code, carries sensitivity.
//! * **Conditioning** ([`influences_by_conditioning`]) — for any exact
//!   solver (e.g. the treewidth walk DP, where no circuit is built),
//!   re-solve with `π(e)` pinned to 1 and to 0. Costs `2·|E|` solver
//!   calls but applies to every tractable route.
//!
//! The module also exposes [`most_probable_witness`]: the most probable
//! possible world in which the query holds (the MPE of the lineage),
//! which pairs a reliability number with a concrete explanation.

use crate::algo::{connected_on_2wp, lineage_circuits, path_on_dwt};
use phom_graph::hom::exists_hom_into_world;
use phom_graph::{EdgeId, Graph, ProbGraph};
use phom_lineage::beta::beta_dnf_probability_with_order;
use phom_lineage::{analysis, Provenance};
use phom_num::{Dual, Rational, Weight};

/// How [`influences`] (or a sensitivity [`Request`](crate::Request)
/// through the engine) obtained its answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SensitivityRoute {
    /// Prop 4.11 match circuit (connected query, 2WP instance).
    Circuit2wp,
    /// Prop 4.10 fail circuit, complemented (1WP query, DWT instance).
    CircuitDwt,
    /// Exact conditioning: `2·|E|` dispatcher solves (the engine's
    /// fallback when no circuit route matches the input shapes).
    Conditioning,
}

/// The provenance handle the circuit routes compile, with the route
/// taken. `None` when no circuit-compiling route matches the input
/// shapes.
pub fn lineage_provenance(
    query: &Graph,
    instance: &ProbGraph,
) -> Option<(Provenance, SensitivityRoute)> {
    if let Some((circuit, root)) = lineage_circuits::match_circuit_2wp(query, instance.graph()) {
        return Some((
            Provenance::positive(circuit, root),
            SensitivityRoute::Circuit2wp,
        ));
    }
    if let Some((circuit, root)) = lineage_circuits::fail_circuit_dwt(query, instance.graph()) {
        return Some((
            Provenance::complemented(circuit, root),
            SensitivityRoute::CircuitDwt,
        ));
    }
    None
}

/// All edge influences `∂ Pr / ∂ π(e)` via the engine's gradient sweep,
/// with the route taken. `None` when no circuit-compiling route matches
/// the input shapes (fall back to [`influences_by_conditioning`] with an
/// exact solver for the relevant cell).
pub fn influences<W: Weight>(
    query: &Graph,
    instance: &ProbGraph,
) -> Option<(Vec<W>, SensitivityRoute)> {
    let probs: Vec<W> = instance.probs().iter().map(W::from_rational).collect();
    let (prov, route) = lineage_provenance(query, instance)?;
    Some((prov.gradients(&probs), route))
}

/// One edge's influence by forward-mode automatic differentiation: the
/// β-acyclic lineage of Theorem 4.9 is evaluated over the
/// [`Dual`](phom_num::Dual) number semifield with edge `e` seeded, so the
/// derivative rides along through every product, sum, *and division* of
/// the elimination — no circuit, no backward pass.
///
/// Returns `None` when the inputs fit neither Prop 4.10 nor Prop 4.11,
/// or when some edge probability is 0 or 1 (the elimination's divisions
/// are then not dual-invertible; use [`influences`] or conditioning).
pub fn influence_forward(query: &Graph, instance: &ProbGraph, e: EdgeId) -> Option<Rational> {
    if instance.probs().iter().any(|p| p.is_zero() || p.is_one()) {
        return None;
    }
    let (dnf, order) = path_on_dwt::lineage(query, instance.graph())
        .or_else(|| connected_on_2wp::lineage(query, instance.graph()))?;
    if dnf.is_valid() {
        return Some(Rational::zero()); // constant-true lineage: no influence
    }
    let probs: Vec<Dual<Rational>> = instance
        .probs()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i == e {
                Dual::active(p.clone())
            } else {
                Dual::constant(p.clone())
            }
        })
        .collect();
    let out = beta_dnf_probability_with_order(&dnf, &probs, &order)
        .expect("the lineage routes supply valid β-elimination orders");
    Some(out.der)
}

/// All edge influences by conditioning: `solve(H[π(e) := 1]) −
/// solve(H[π(e) := 0])` for each edge, where `solve` is any exact
/// evaluator of `Pr(G ⇝ ·)` for the fixed query (e.g. a closure over
/// [`crate::algo::walk_on_tw::probability`]). `2·|E|` solver calls.
pub fn influences_by_conditioning<W: Weight>(
    instance: &ProbGraph,
    mut solve: impl FnMut(&ProbGraph) -> W,
) -> Vec<W> {
    match try_influences_by_conditioning::<W, std::convert::Infallible>(instance, |h| Ok(solve(h)))
    {
        Ok(influences) => influences,
        Err(infallible) => match infallible {},
    }
}

/// As [`influences_by_conditioning`], with a fallible solver: the first
/// error aborts the sweep and is returned. This is how a sensitivity
/// [`Request`](crate::Request) propagates hardness from a pinned solve
/// on shapes without a circuit route.
pub fn try_influences_by_conditioning<W: Weight, E>(
    instance: &ProbGraph,
    mut solve: impl FnMut(&ProbGraph) -> Result<W, E>,
) -> Result<Vec<W>, E> {
    let n_edges = instance.graph().n_edges();
    let mut out = Vec::with_capacity(n_edges);
    for e in 0..n_edges {
        let plus = solve(&pin(instance, e, true))?;
        let minus = solve(&pin(instance, e, false))?;
        out.push(plus.sub(&minus));
    }
    Ok(out)
}

/// The instance with `π(e)` pinned to 1 (present) or 0 (absent).
pub fn pin(instance: &ProbGraph, e: EdgeId, present: bool) -> ProbGraph {
    let mut probs = instance.probs().to_vec();
    probs[e] = if present {
        Rational::one()
    } else {
        Rational::zero()
    };
    ProbGraph::new(instance.graph().clone(), probs)
}

/// Ranks the edges by decreasing influence (ties broken by edge id).
/// Purely presentational: pairs each edge with its influence, sorted.
pub fn rank_edges<W: Weight + PartialOrd>(influences: Vec<W>) -> Vec<(EdgeId, W)> {
    let mut ranked: Vec<(EdgeId, W)> = influences.into_iter().enumerate().collect();
    ranked.sort_by(|(ea, a), (eb, b)| {
        b.partial_cmp(a)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ea.cmp(eb))
    });
    ranked
}

/// The most probable possible world satisfying the query (MPE of the
/// lineage), with its probability, via the circuit routes of
/// [`influences`]. Returns `Ok(None)` when the query holds in no world,
/// and `Err(())` when no circuit route applies.
#[allow(clippy::result_unit_err)]
pub fn most_probable_witness(
    query: &Graph,
    instance: &ProbGraph,
) -> Result<Option<(Rational, Vec<bool>)>, ()> {
    let probs: Vec<Rational> = instance.probs().to_vec();
    let (prov, _) = lineage_provenance(query, instance).ok_or(())?;
    if prov.negated {
        // MPE needs the positive event; the DWT route's circuit encodes
        // the complement, so compile the *match* DNF through the OBDD
        // pipeline (DFS order keeps it linear) and search that instead.
        let (dnf, _) = path_on_dwt::lineage(query, instance.graph()).ok_or(())?;
        let order = super::algo::obdd_route::dfs_edge_order(instance.graph()).ok_or(())?;
        let (manager, f, _) = super::algo::obdd_route::compile(&dnf, order);
        let (circuit, root) = manager.to_circuit(f);
        let witness = analysis::mpe(&circuit, root, &probs);
        return Ok(check_witness(query, instance, witness));
    }
    let witness = analysis::mpe(&prov.circuit, prov.root, &probs);
    Ok(check_witness(query, instance, witness))
}

fn check_witness(
    query: &Graph,
    instance: &ProbGraph,
    witness: Option<(Rational, Vec<bool>)>,
) -> Option<(Rational, Vec<bool>)> {
    if let Some((_, world)) = &witness {
        debug_assert!(
            exists_hom_into_world(query, instance.graph(), world),
            "the MPE world must satisfy the query"
        );
    }
    witness
}

/// `Pr(G ⇝ H | e = present)` on the 2WP/DWT circuit routes — exported for
/// symmetry with [`influences`]; equivalent to solving on [`pin`]ed input.
pub fn conditional_probability<W: Weight>(
    query: &Graph,
    instance: &ProbGraph,
    e: EdgeId,
    present: bool,
) -> Option<W> {
    let pinned = pin(instance, e, present);
    connected_on_2wp::probability_lineage(query, &pinned)
        .or_else(|| path_on_dwt::probability_lineage(query, &pinned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::walk_on_tw;
    use crate::bruteforce;
    use phom_graph::generate::{self, ProbProfile};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force influence: conditioning against world enumeration.
    fn bf_influences(query: &Graph, instance: &ProbGraph) -> Vec<Rational> {
        influences_by_conditioning(instance, |h| bruteforce::probability(query, h))
    }

    #[test]
    fn circuit_influences_match_bruteforce_on_2wp() {
        let mut rng = SmallRng::seed_from_u64(0x5E51);
        for trial in 0..20 {
            let g = generate::two_way_path(rng.gen_range(1..7), 2, &mut rng);
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let q = generate::two_way_path(rng.gen_range(1..4), 2, &mut rng);
            let (grads, route) = influences::<Rational>(&q, &h).expect("2WP circuit");
            assert_eq!(route, SensitivityRoute::Circuit2wp);
            assert_eq!(grads, bf_influences(&q, &h), "trial {trial}");
        }
    }

    #[test]
    fn circuit_influences_match_bruteforce_on_dwt() {
        let mut rng = SmallRng::seed_from_u64(0x5E52);
        for trial in 0..20 {
            let g = generate::downward_tree(rng.gen_range(2..9), 2, &mut rng);
            // Skip shapes the 2WP circuit route would grab first.
            if phom_graph::classes::as_two_way_path(&g).is_some() {
                continue;
            }
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let q = generate::planted_path_query(h.graph(), rng.gen_range(1..4), &mut rng)
                .unwrap_or_else(|| generate::one_way_path(2, 2, &mut rng));
            let (grads, route) = influences::<Rational>(&q, &h).expect("DWT circuit");
            assert_eq!(route, SensitivityRoute::CircuitDwt);
            assert_eq!(grads, bf_influences(&q, &h), "trial {trial}");
        }
    }

    #[test]
    fn forward_mode_duals_match_gradients() {
        let mut rng = SmallRng::seed_from_u64(0x5E56);
        for trial in 0..25 {
            // Strictly interior probabilities: the dual path requires
            // invertible primal values through the elimination.
            let h_graph = if trial % 2 == 0 {
                generate::two_way_path(rng.gen_range(1..6), 2, &mut rng)
            } else {
                generate::downward_tree(rng.gen_range(2..7), 2, &mut rng)
            };
            let probs: Vec<Rational> = (0..h_graph.n_edges())
                .map(|_| Rational::from_ratio(rng.gen_range(1..4), 4))
                .collect();
            let h = ProbGraph::new(h_graph, probs);
            let q = generate::planted_path_query(h.graph(), rng.gen_range(1..3), &mut rng)
                .unwrap_or_else(|| generate::one_way_path(1, 2, &mut rng));
            let Some((grads, _)) = influences::<Rational>(&q, &h) else {
                continue;
            };
            for (e, grad) in grads.iter().enumerate() {
                let Some(fwd) = influence_forward(&q, &h, e) else {
                    continue;
                };
                assert_eq!(&fwd, grad, "trial {trial}, edge {e}");
            }
        }
    }

    #[test]
    fn conditioning_influences_on_treewidth_route() {
        // The walk DP has no circuit; conditioning still yields exact
        // influences, checked against brute force.
        let mut rng = SmallRng::seed_from_u64(0x5E53);
        for trial in 0..12 {
            let g = generate::arbitrary(rng.gen_range(2..6), 0.35, 1, &mut rng);
            if g.n_edges() > 8 {
                continue;
            }
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let q = Graph::directed_path(rng.gen_range(1..4));
            let by_dp = influences_by_conditioning(&h, |inst| {
                walk_on_tw::probability::<Rational>(&q, inst).expect("1WP collapses")
            });
            assert_eq!(by_dp, bf_influences(&q, &h), "trial {trial}");
        }
    }

    #[test]
    fn influence_sign_and_pin_consistency() {
        // Influences of a monotone event are nonnegative, and pinning an
        // edge to its endpoint values brackets the unconditional answer.
        let mut rng = SmallRng::seed_from_u64(0x5E54);
        let g = generate::two_way_path(6, 2, &mut rng);
        let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
        let q = generate::two_way_path(2, 2, &mut rng);
        let (grads, _) = influences::<Rational>(&q, &h).unwrap();
        let p = bruteforce::probability(&q, &h);
        for (e, grad) in grads.iter().enumerate() {
            assert!(!grad.is_negative(), "monotone ⇒ influence ≥ 0");
            let plus = bruteforce::probability(&q, &pin(&h, e, true));
            let minus = bruteforce::probability(&q, &pin(&h, e, false));
            assert!(minus <= p && p <= plus, "conditioning brackets Pr");
            assert_eq!(grads[e], plus.sub(&minus));
        }
    }

    #[test]
    fn ranking_is_sorted() {
        let ranked = rank_edges(vec![
            Rational::from_ratio(1, 4),
            Rational::from_ratio(3, 4),
            Rational::zero(),
        ]);
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[1].0, 0);
        assert_eq!(ranked[2].0, 2);
    }

    #[test]
    fn witness_is_most_probable_world_satisfying_query() {
        let mut rng = SmallRng::seed_from_u64(0x5E55);
        for trial in 0..15 {
            let g = generate::two_way_path(rng.gen_range(1..6), 2, &mut rng);
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let q = generate::two_way_path(rng.gen_range(1..3), 2, &mut rng);
            let witness = most_probable_witness(&q, &h).expect("2WP circuit route");
            // Brute-force argmax over satisfying worlds.
            let mut best: Option<Rational> = None;
            for (mask, p) in h.worlds() {
                if exists_hom_into_world(&q, h.graph(), &mask)
                    && best.as_ref().is_none_or(|b| p > *b)
                {
                    best = Some(p);
                }
            }
            match (witness, best) {
                (None, None) => {}
                (Some((wp, world)), Some(bp)) => {
                    assert_eq!(wp, bp, "trial {trial}");
                    assert!(exists_hom_into_world(&q, h.graph(), &world));
                }
                (w, b) => panic!("trial {trial}: {:?} vs {b:?}", w.map(|x| x.0)),
            }
        }
    }

    #[test]
    fn witness_on_dwt_route() {
        let mut rng = SmallRng::seed_from_u64(0x5E57);
        for trial in 0..10 {
            let g = generate::downward_tree(rng.gen_range(2..7), 2, &mut rng);
            if phom_graph::classes::as_two_way_path(&g).is_some() {
                continue;
            }
            let h = generate::with_probabilities(g, ProbProfile::half(), &mut rng);
            let q = generate::planted_path_query(h.graph(), 1, &mut rng)
                .unwrap_or_else(|| generate::one_way_path(1, 2, &mut rng));
            let witness = most_probable_witness(&q, &h).expect("DWT route");
            let mut best: Option<Rational> = None;
            for (mask, p) in h.worlds() {
                if exists_hom_into_world(&q, h.graph(), &mask)
                    && best.as_ref().is_none_or(|b| p > *b)
                {
                    best = Some(p);
                }
            }
            match (witness, best) {
                (None, None) => {}
                (Some((wp, _)), Some(bp)) => assert_eq!(wp, bp, "trial {trial}"),
                (w, b) => panic!("trial {trial}: {:?} vs {b:?}", w.map(|x| x.0)),
            }
        }
    }
}
