//! Batched query-set solving: interned query keys, instance
//! fingerprints, the bounded answer cache, and the legacy `solve_many`
//! entry points (now thin shims over [`crate::engine`]).
//!
//! The serving path itself lives in [`crate::engine`]: a long-lived
//! [`Engine`](crate::Engine) owns the instance-side state, a bounded
//! [`EvalCache`], and a sharded submit loop. This module keeps the
//! serving *vocabulary* — [`QueryKey`] (structural query identity),
//! [`instance_fingerprint`] (content identity of a probabilistic
//! instance), [`CacheStats`]/[`BatchStats`] observability — plus the
//! pre-engine free functions `solve_many`/`solve_many_cached`/
//! `solve_many_stats`, which now delegate to the engine's single-threaded
//! batch core so no caller breaks.
//!
//! ## The answer cache
//!
//! [`EvalCache`] maps (instance fingerprint, solver-options fingerprint,
//! request kind, interned query key) to the completed answer — the
//! probability batch path caches `Result<Solution, Hardness>`, and the
//! counting / sensitivity / UCQ request paths cache their full typed
//! [`Response`](crate::Response)s under the same flat LRU order.
//! Mutating the instance (structure *or* probabilities) changes its
//! fingerprint and naturally invalidates every cached answer. Since one
//! cache can serve many instances (a [`Fleet`](crate::Fleet) shares a
//! single cache across every registered graph version), the cache is
//! **bounded**: construct with [`EvalCache::with_capacity`] and the
//! least-recently-used entry is evicted on overflow, counted in
//! [`CacheStats::evictions`]. [`EvalCache::new`] keeps the historical
//! unbounded behavior.

use crate::engine::Response;
use crate::solver::{Hardness, Solution, SolveError, SolverOptions};
use phom_graph::{Graph, ProbGraph};
use phom_lineage::fxhash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// An interned query key: structural identity of a query graph (vertex
/// count + exact edge list), pre-hashed so batch dedup and cache lookups
/// cost one u64 hash. Isomorphic-but-renumbered queries get distinct keys
/// — interning is exact, not up to isomorphism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryKey {
    hash: u64,
    n_vertices: u32,
    edges: Box<[(u32, u32, u32)]>,
}

impl QueryKey {
    /// The key of `query`.
    pub fn new(query: &Graph) -> Self {
        let edges: Box<[(u32, u32, u32)]> = query
            .edges()
            .iter()
            .map(|e| (e.src as u32, e.dst as u32, e.label.0))
            .collect();
        let mut h = FxHasher::default();
        h.write_u32(query.n_vertices() as u32);
        for &(s, d, l) in &*edges {
            h.write_u32(s);
            h.write_u32(d);
            h.write_u32(l);
        }
        QueryKey {
            hash: h.finish(),
            n_vertices: query.n_vertices() as u32,
            edges,
        }
    }

    /// The key of an ordered *sequence* of graphs (a UCQ's disjuncts):
    /// exact structural identity over the whole sequence. Each graph is
    /// preceded by a `(u32::MAX, u32::MAX, n_vertices)` separator —
    /// vertex ids never reach `u32::MAX`, so distinct sequences can
    /// never serialize to the same edge list.
    pub fn of_many(graphs: &[Graph]) -> Self {
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for g in graphs {
            edges.push((u32::MAX, u32::MAX, g.n_vertices() as u32));
            edges.extend(
                g.edges()
                    .iter()
                    .map(|e| (e.src as u32, e.dst as u32, e.label.0)),
            );
        }
        let mut h = FxHasher::default();
        h.write_u32(graphs.len() as u32);
        for &(s, d, l) in &edges {
            h.write_u32(s);
            h.write_u32(d);
            h.write_u32(l);
        }
        QueryKey {
            hash: h.finish(),
            n_vertices: graphs.len() as u32,
            edges: edges.into_boxed_slice(),
        }
    }
}

impl Hash for QueryKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// A content fingerprint of a probabilistic instance: graph structure
/// (vertices, edges, labels) and every edge probability. Two instances
/// with equal fingerprints serve interchangeable cached answers; any
/// mutation — adding an edge, nudging a probability — moves the
/// fingerprint and invalidates the cache for free. The same fingerprint
/// keys engines inside a [`Fleet`](crate::Fleet).
pub fn instance_fingerprint(instance: &ProbGraph) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(instance.graph().n_vertices() as u32);
    for e in instance.graph().edges() {
        h.write_u32(e.src as u32);
        h.write_u32(e.dst as u32);
        h.write_u32(e.label.0);
    }
    for p in instance.probs() {
        p.hash(&mut h);
    }
    h.finish()
}

/// Folds the option fields that change answers (or attached artifacts)
/// into the cache key, so e.g. a `want_provenance` answer is never served
/// to a caller that set a brute-force fallback.
pub(crate) fn opts_fingerprint(opts: &SolverOptions) -> u64 {
    use crate::solver::Fallback;
    let mut h = FxHasher::default();
    match opts.fallback {
        Fallback::None => h.write_u8(0),
        Fallback::BruteForce { max_uncertain } => {
            h.write_u8(1);
            h.write_usize(max_uncertain);
        }
        Fallback::MonteCarlo { samples, seed } => {
            h.write_u8(2);
            h.write_u64(samples);
            h.write_u64(seed);
        }
    }
    h.write_u8(opts.pt_strategy as u8);
    h.write_u8(opts.prefer_dp as u8);
    h.write_u8(opts.want_provenance as u8);
    // Precision isolates cache entries across evaluation tiers: a float
    // answer is never served to an exact request (or vice versa), and
    // float callers with different tolerances never share answers.
    match opts.precision {
        crate::solver::Precision::Exact => h.write_u8(0),
        crate::solver::Precision::Float { max_rel_err } => {
            h.write_u8(1);
            h.write_u64(max_rel_err.to_bits());
        }
        crate::solver::Precision::Auto { max_rel_err } => {
            h.write_u8(2);
            h.write_u64(max_rel_err.to_bits());
        }
    }
    // Budgets change what is computed (truncated estimates, tripped
    // caps), so budgeted callers never share cached answers with
    // unbudgeted ones. Deadlines are deliberately *not* hashed: they
    // are relative to arrival time and don't alter a completed answer.
    for cap in [
        opts.budget.samples,
        opts.budget.gates,
        opts.budget.time.map(|t| t.as_nanos() as u64),
    ] {
        match cap {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                h.write_u64(v);
            }
        }
    }
    match opts.on_hard {
        crate::solver::OnHard::Error => h.write_u8(0),
        crate::solver::OnHard::Estimate => h.write_u8(1),
    }
    h.finish()
}

/// What kind of answer a cache entry holds. Folded into [`CacheKey`] so
/// one flat cache serves every request kind without collisions: a
/// counting answer for query `G` never shadows the probability answer
/// for the same `G`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum CacheKind {
    Probability,
    Counting,
    Sensitivity,
    Ucq,
}

/// The full cache key: (instance fingerprint, options fingerprint,
/// request kind, interned query). Flat — one map, one LRU order — so a
/// bounded cache shares its capacity across every instance, option set,
/// and workload kind it serves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct CacheKey {
    pub(crate) instance: u64,
    pub(crate) opts: u64,
    pub(crate) kind: CacheKind,
    pub(crate) query: QueryKey,
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(
            self.instance
                ^ self.opts.rotate_left(32)
                ^ self.query.hash
                ^ (self.kind as u64).rotate_left(17),
        );
    }
}

/// A completed answer as stored in the cache: the probability batch path
/// keeps its historical `Result<Solution, Hardness>` shape (the legacy
/// shims still speak `Hardness`), while counting / sensitivity / UCQ
/// responses are cached as full typed `Response`s.
#[derive(Clone, Debug)]
pub(crate) enum CachedAnswer {
    Solution(Result<Solution, Hardness>),
    Response(Result<Response, SolveError>),
}

/// Counters and size of an [`EvalCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache (no planning, no compilation).
    pub hits: u64,
    /// Queries that had to be solved and were then inserted.
    pub misses: u64,
    /// Entries dropped by the LRU bound (0 on unbounded caches).
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A cross-batch answer cache for serving workloads; see the module docs
/// for the key structure and invalidation story.
///
/// Owned by the caller (or by an [`Engine`](crate::Engine) /
/// [`Fleet`](crate::Fleet)) so one cache can serve many batches and many
/// instances. Bound it with [`EvalCache::with_capacity`]: on overflow the
/// least-recently-*used* entry (reads refresh recency) is evicted.
/// Eviction is an `O(entries)` scan — caches are sized in the thousands,
/// and the scan only runs on inserts past capacity, never on hits.
pub struct EvalCache {
    map: FxHashMap<CacheKey, CacheEntry>,
    /// `usize::MAX` = unbounded (the historical behavior).
    capacity: usize,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct CacheEntry {
    last_used: u64,
    answer: CachedAnswer,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl EvalCache {
    /// An empty, **unbounded** cache.
    pub fn new() -> Self {
        EvalCache::with_capacity(usize::MAX)
    }

    /// An empty cache holding at most `capacity` answers; the
    /// least-recently-used entry is evicted on overflow. `capacity == 0`
    /// disables retention entirely (every insert is evicted immediately;
    /// miss/eviction counters still advance).
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCache {
            map: FxHashMap::default(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }

    /// Drops every entry. The cumulative hit/miss/eviction counters are
    /// **kept**: they describe the cache's lifetime, not its contents
    /// (clearing is not an eviction, so `evictions` does not advance
    /// either). [`CacheStats::entries`] drops to 0.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Looks up a completed answer, refreshing its recency and counting a
    /// hit when present.
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<&CachedAnswer> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits += 1;
                Some(&entry.answer)
            }
            None => None,
        }
    }

    /// Records a freshly solved answer (counted as a miss), evicting the
    /// least-recently-used entries if the bound is exceeded.
    pub(crate) fn insert(&mut self, key: CacheKey, answer: CachedAnswer) {
        if self.map.contains_key(&key) {
            return; // identical answer already present; keep its recency
        }
        self.misses += 1;
        self.tick += 1;
        self.map.insert(
            key,
            CacheEntry {
                last_used: self.tick,
                answer,
            },
        );
        while self.map.len() > self.capacity {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// A cloneable, thread-safe handle to a shared [`EvalCache`] — the unit
/// of cache *sharing* across serving surfaces. A [`Fleet`](crate::Fleet)
/// hands one handle to every registered engine, and an external runtime
/// (`phom_serve::Runtime`) does the same, so many instance versions
/// compete for one bounded LRU capacity. Build an engine on a shared
/// cache with [`EngineBuilder::shared_cache`](crate::EngineBuilder::shared_cache).
#[derive(Clone)]
pub struct CacheHandle {
    cache: Arc<Mutex<EvalCache>>,
}

impl CacheHandle {
    /// A handle to a fresh **unbounded** cache.
    pub fn unbounded() -> Self {
        CacheHandle::with_capacity(usize::MAX)
    }

    /// A handle to a fresh cache bounded to `capacity` answers (LRU).
    pub fn with_capacity(capacity: usize) -> Self {
        CacheHandle {
            cache: Arc::new(Mutex::new(EvalCache::with_capacity(capacity))),
        }
    }

    /// Counters and size of the shared cache.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// Drops every cached answer (lifetime counters are kept — see
    /// [`EvalCache::clear`]).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// The cache lock, recovering from poisoning: the cache's own
    /// operations never unwind mid-mutation, so a panic elsewhere while
    /// the lock was held cannot leave it inconsistent — a long-lived
    /// serving process must not die because one query panicked.
    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, EvalCache> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// What one batched solve did, for observability and the perf harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Structurally distinct (query, options) pairs after interning.
    pub unique_queries: usize,
    /// Unique queries answered from the [`EvalCache`].
    pub cache_hits: usize,
    /// Unique queries answered through a shard's single engine pass over
    /// its compiled lineage arena.
    pub circuit_batched: usize,
    /// Unique queries answered on the general per-query path (trivial
    /// routes, non-circuit algorithms, disconnected instances,
    /// fallbacks).
    pub general_solved: usize,
    /// Gates across all shard arenas (0 when nothing batched).
    pub shared_gates: usize,
    /// Worker shards the batch ran on (1 = the sequential path).
    pub shards: usize,
    /// Whether the batch compiled its circuit plans into **one**
    /// cross-shard shared arena (the large-tick path — see
    /// [`TickConfig::share_arena_at`](crate::TickConfig::share_arena_at))
    /// instead of one arena per shard.
    pub shared_arena: bool,
    /// Unique circuit queries answered by the float tier
    /// ([`Precision::Float`](crate::Precision::Float) /
    /// [`Auto`](crate::Precision::Auto) requests whose certified bound
    /// met the tolerance).
    pub float_evaluated: usize,
    /// `Auto` circuit queries whose float bound exceeded the tolerance
    /// and were re-evaluated exactly.
    pub escalations: usize,
    /// Requests answered with a Monte-Carlo
    /// [`Response::Estimate`](crate::Response::Estimate) (the
    /// `OnHard::Estimate` degradation).
    pub estimates: usize,
    /// Requests that failed with `SolveError::DeadlineExceeded` inside
    /// this batch (expired before or during evaluation; queue sheds are
    /// counted by the serving runtime, not here).
    pub deadline_exceeded: usize,
    /// Requests that failed with `SolveError::BudgetExceeded` inside
    /// this batch.
    pub budget_exceeded: usize,
}

/// Batched solving: answers every query in `queries` against `instance`,
/// preserving order. Results are identical to per-query `solve_with`
/// calls.
#[deprecated(note = "build a long-lived `phom_core::Engine` and call \
                     `Engine::submit` (sharded, cached) instead")]
pub fn solve_many(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
) -> Vec<Result<Solution, Hardness>> {
    crate::engine::legacy_batch(queries, instance, opts, None).0
}

/// As [`solve_many`], with a caller-owned [`EvalCache`]: repeated queries
/// across batches skip compilation entirely while the instance
/// fingerprint holds.
#[deprecated(note = "build a long-lived `phom_core::Engine` (it owns a \
                     bounded `EvalCache`) and call `Engine::submit` instead")]
pub fn solve_many_cached(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
    cache: &mut EvalCache,
) -> Vec<Result<Solution, Hardness>> {
    crate::engine::legacy_batch(queries, instance, opts, Some(cache)).0
}

/// The full-control legacy entry point: optional cache, and the batch
/// statistics alongside the results.
#[deprecated(note = "build a long-lived `phom_core::Engine` and call \
                     `Engine::submit_stats` instead")]
pub fn solve_many_stats(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
    cache: Option<&mut EvalCache>,
) -> (Vec<Result<Solution, Hardness>>, BatchStats) {
    crate::engine::legacy_batch(queries, instance, opts, cache)
}

#[cfg(test)]
#[allow(deprecated)] // the suite pins the legacy shims to the engine path
mod tests {
    use super::*;
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::{Graph, Label};
    use phom_num::Rational;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn twp_instance(seed: u64) -> ProbGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate::with_probabilities(
            generate::two_way_path(8, 2, &mut rng),
            ProbProfile::default(),
            &mut rng,
        )
    }

    #[test]
    fn batch_matches_per_query_solve() {
        let mut rng = SmallRng::seed_from_u64(0xBA7C);
        let h = twp_instance(0xBA7C);
        let queries: Vec<Graph> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    Graph::directed_path(i % 4)
                } else {
                    generate::connected(2 + i % 3, 1, 2, &mut rng)
                }
            })
            .collect();
        let opts = SolverOptions::default();
        let (batch, stats) = solve_many_stats(&queries, &h, opts, None);
        assert_eq!(batch.len(), queries.len());
        assert!(stats.unique_queries <= stats.queries);
        assert_eq!(stats.shards, 1, "legacy shims stay sequential");
        for (i, q) in queries.iter().enumerate() {
            match (&batch[i], crate::solve_with(q, &h, opts)) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.probability, s.probability, "query {i}");
                    assert_eq!(b.route, s.route, "query {i}");
                }
                (Err(b), Err(s)) => assert_eq!(b, &s, "query {i}"),
                (b, s) => panic!("query {i}: batch {b:?} vs solo {s:?}"),
            }
        }
    }

    #[test]
    fn interning_dedupes_identical_queries() {
        let h = twp_instance(7);
        let q = Graph::one_way_path(&[Label(0), Label(1)]);
        let queries = vec![q.clone(); 10];
        let (results, stats) = solve_many_stats(&queries, &h, SolverOptions::default(), None);
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.unique_queries, 1);
        let expect = crate::solve(&q, &h).unwrap();
        for r in &results {
            assert_eq!(r.as_ref().unwrap().probability, expect.probability);
        }
    }

    #[test]
    fn cache_hits_skip_compilation_and_mutation_invalidates() {
        let h = twp_instance(21);
        let mut rng = SmallRng::seed_from_u64(21);
        let queries: Vec<Graph> = (0..4)
            .map(|_| generate::connected(3, 1, 2, &mut rng))
            .collect();
        let opts = SolverOptions::default();
        let mut cache = EvalCache::new();
        let (first, s1) = solve_many_stats(&queries, &h, opts, Some(&mut cache));
        assert_eq!(s1.cache_hits, 0);
        let misses_after_first = cache.stats().misses;
        assert_eq!(misses_after_first as usize, s1.unique_queries);
        // Second batch: everything comes from the cache.
        let (second, s2) = solve_many_stats(&queries, &h, opts, Some(&mut cache));
        assert_eq!(s2.cache_hits, s2.unique_queries);
        assert_eq!(s2.circuit_batched + s2.general_solved, 0);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(
                a.as_ref().unwrap().probability,
                b.as_ref().unwrap().probability
            );
        }
        // Mutate one probability: the fingerprint moves, the cache misses,
        // and answers are re-derived (and still correct).
        let mut probs = h.probs().to_vec();
        probs[0] = Rational::from_ratio(1, 7);
        let h2 = ProbGraph::new(h.graph().clone(), probs);
        assert_ne!(instance_fingerprint(&h), instance_fingerprint(&h2));
        let (third, s3) = solve_many_stats(&queries, &h2, opts, Some(&mut cache));
        assert_eq!(s3.cache_hits, 0);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                third[i].as_ref().unwrap().probability,
                crate::solve(q, &h2).unwrap().probability
            );
        }
    }

    #[test]
    fn lru_bound_evicts_coldest_and_counts() {
        let h = twp_instance(33);
        let mut rng = SmallRng::seed_from_u64(33);
        let queries: Vec<Graph> = (0..5)
            .map(|_| generate::connected(3, 1, 2, &mut rng))
            .collect();
        let opts = SolverOptions::default();
        let mut cache = EvalCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let (_, s1) = solve_many_stats(&queries, &h, opts, Some(&mut cache));
        let stats = cache.stats();
        assert!(stats.entries <= 2, "{stats:?}");
        assert_eq!(
            stats.evictions,
            stats.misses - stats.entries as u64,
            "every overflow insert evicts exactly one entry: {stats:?}"
        );
        assert!(stats.evictions >= (s1.unique_queries as u64).saturating_sub(2));
        // The two most recent unique queries are hot; re-asking only them
        // stays within capacity and hits.
        let tail: Vec<Graph> = queries[queries.len() - 2..].to_vec();
        let before = cache.stats();
        let (answers, s2) = solve_many_stats(&tail, &h, opts, Some(&mut cache));
        // Correctness is unaffected by eviction either way.
        assert_eq!(s2.cache_hits + s2.circuit_batched + s2.general_solved, {
            s2.unique_queries
        });
        assert!(cache.stats().hits >= before.hits);
        for (q, a) in tail.iter().zip(&answers) {
            assert_eq!(
                a.as_ref().unwrap().probability,
                crate::solve(q, &h).unwrap().probability
            );
        }
    }

    #[test]
    fn lru_reads_refresh_recency() {
        let key = |tag: u64| CacheKey {
            instance: tag,
            opts: 0,
            kind: CacheKind::Probability,
            query: QueryKey::new(&Graph::directed_path(1)),
        };
        let answer = || {
            CachedAnswer::Solution(Err(Hardness {
                prop: "test",
                cell: String::new(),
            }))
        };
        let mut cache = EvalCache::with_capacity(2);
        cache.insert(key(1), answer());
        cache.insert(key(2), answer());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), answer());
        assert!(cache.get(&key(1)).is_some(), "recently read survives");
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let h = twp_instance(5);
        let q = Graph::one_way_path(&[Label(0)]);
        let mut cache = EvalCache::new();
        let opts = SolverOptions::default();
        let _ = solve_many_cached(std::slice::from_ref(&q), &h, opts, &mut cache);
        let _ = solve_many_cached(std::slice::from_ref(&q), &h, opts, &mut cache);
        let before = cache.stats();
        assert!(before.hits > 0 && before.misses > 0 && before.entries > 0);
        cache.clear();
        let after = cache.stats();
        assert_eq!(after.entries, 0, "entries cleared");
        assert_eq!(after.hits, before.hits, "lifetime counters kept");
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.evictions, before.evictions);
        // The next batch re-solves and re-fills.
        let (_, s) = solve_many_stats(&[q], &h, opts, Some(&mut cache));
        assert_eq!(s.cache_hits, 0);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let h = twp_instance(9);
        let q = Graph::one_way_path(&[Label(0)]);
        let mut cache = EvalCache::with_capacity(0);
        let _ = solve_many_cached(
            std::slice::from_ref(&q),
            &h,
            SolverOptions::default(),
            &mut cache,
        );
        let _ = solve_many_cached(&[q], &h, SolverOptions::default(), &mut cache);
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, s.evictions);
    }

    #[test]
    fn fingerprint_tracks_structure_and_probabilities() {
        let h = twp_instance(3);
        assert_eq!(instance_fingerprint(&h), instance_fingerprint(&h.clone()));
        let mut rng = SmallRng::seed_from_u64(99);
        let other = generate::with_probabilities(
            generate::two_way_path(8, 2, &mut rng),
            ProbProfile::default(),
            &mut rng,
        );
        assert_ne!(instance_fingerprint(&h), instance_fingerprint(&other));
    }

    #[test]
    fn query_keys_are_structural() {
        let a = Graph::one_way_path(&[Label(0), Label(1)]);
        let b = Graph::one_way_path(&[Label(0), Label(1)]);
        let c = Graph::one_way_path(&[Label(1), Label(0)]);
        assert_eq!(QueryKey::new(&a), QueryKey::new(&b));
        assert_ne!(QueryKey::new(&a), QueryKey::new(&c));
    }

    #[test]
    fn deferred_circuits_share_one_arena() {
        let h = twp_instance(5);
        let mut rng = SmallRng::seed_from_u64(5);
        let queries: Vec<Graph> = (0..6)
            .map(|_| generate::connected(rng.gen_range(2..4), 1, 2, &mut rng))
            .collect();
        let (_, stats) = solve_many_stats(&queries, &h, SolverOptions::default(), None);
        // On a connected 2WP instance every connected query batches.
        assert!(stats.circuit_batched > 0, "{stats:?}");
        assert!(stats.shared_gates > 2, "{stats:?}");
    }
}
