//! Batched query-set solving (`solve_many`): the serving path.
//!
//! `phom_core::solve` answers one query at a time, re-deriving the
//! instance-side state (classification, label set, Lemma 3.7 component
//! split) and compiling a fresh lineage for every call. A serving
//! workload — many queries against one probabilistic instance, with heavy
//! repetition — amortizes all of that:
//!
//! 1. **Instance preprocessing once.** One [`SharedInstance`] carries the
//!    classification, label set, and (lazily) the component split for the
//!    whole batch.
//! 2. **Interned queries.** Structurally identical queries in the batch
//!    collapse to one [`QueryKey`]; each unique query is planned, solved,
//!    and cached exactly once.
//! 3. **One shared arena, one engine pass.** Every circuit-compilable
//!    plan (Prop 4.10 fail circuits, Prop 4.11 match circuits, on
//!    connected instances) compiles into a *single* [`Arena`] — common
//!    sub-lineages intern once across queries — and a single multi-root
//!    [`Arena::probability_many_with`] pass answers them all.
//! 4. **Cross-batch caching.** An optional [`EvalCache`], keyed by
//!    (instance fingerprint, solver-options fingerprint, interned query
//!    key), lets repeated queries on a served instance skip planning and
//!    compilation entirely. Mutating the instance (structure *or*
//!    probabilities) changes its fingerprint and naturally invalidates
//!    every cached answer.
//!
//! Results are **identical** to the per-query path: plans that the shared
//! arena cannot take (trivial routes, Prop 3.6/5.4, disconnected
//! instances, fallbacks, provenance requests) execute through exactly the
//! same code `solve_with` runs, and the circuit-backed plans compute the
//! same exact rational probabilities the β-elimination path does (the
//! equivalence the test suite asserts per world and per probability).

use crate::solver::{
    finish_plan, plan_query, Hardness, Plan, SharedInstance, Solution, SolverOptions,
};
use crate::{algo::lineage_circuits, Route};
use phom_graph::{Graph, ProbGraph};
use phom_lineage::engine::{Arena, EvalScratch, GateId};
use phom_lineage::fxhash::{FxHashMap, FxHasher};
use phom_num::Rational;
use std::hash::{Hash, Hasher};

/// An interned query key: structural identity of a query graph (vertex
/// count + exact edge list), pre-hashed so batch dedup and cache lookups
/// cost one u64 hash. Isomorphic-but-renumbered queries get distinct keys
/// — interning is exact, not up to isomorphism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryKey {
    hash: u64,
    n_vertices: u32,
    edges: Box<[(u32, u32, u32)]>,
}

impl QueryKey {
    /// The key of `query`.
    pub fn new(query: &Graph) -> Self {
        let edges: Box<[(u32, u32, u32)]> = query
            .edges()
            .iter()
            .map(|e| (e.src as u32, e.dst as u32, e.label.0))
            .collect();
        let mut h = FxHasher::default();
        h.write_u32(query.n_vertices() as u32);
        for &(s, d, l) in &*edges {
            h.write_u32(s);
            h.write_u32(d);
            h.write_u32(l);
        }
        QueryKey {
            hash: h.finish(),
            n_vertices: query.n_vertices() as u32,
            edges,
        }
    }
}

impl Hash for QueryKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// A content fingerprint of a probabilistic instance: graph structure
/// (vertices, edges, labels) and every edge probability. Two instances
/// with equal fingerprints serve interchangeable cached answers; any
/// mutation — adding an edge, nudging a probability — moves the
/// fingerprint and invalidates the cache for free.
pub fn instance_fingerprint(instance: &ProbGraph) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(instance.graph().n_vertices() as u32);
    for e in instance.graph().edges() {
        h.write_u32(e.src as u32);
        h.write_u32(e.dst as u32);
        h.write_u32(e.label.0);
    }
    for p in instance.probs() {
        p.hash(&mut h);
    }
    h.finish()
}

/// Folds the option fields that change answers (or attached artifacts)
/// into the cache key, so e.g. a `want_provenance` answer is never served
/// to a caller that set a brute-force fallback.
fn opts_fingerprint(opts: &SolverOptions) -> u64 {
    use crate::solver::Fallback;
    let mut h = FxHasher::default();
    match opts.fallback {
        Fallback::None => h.write_u8(0),
        Fallback::BruteForce { max_uncertain } => {
            h.write_u8(1);
            h.write_usize(max_uncertain);
        }
        Fallback::MonteCarlo { samples, seed } => {
            h.write_u8(2);
            h.write_u64(samples);
            h.write_u64(seed);
        }
    }
    h.write_u8(opts.pt_strategy as u8);
    h.write_u8(opts.prefer_dp as u8);
    h.write_u8(opts.want_provenance as u8);
    h.finish()
}

/// Hit/miss counters of an [`EvalCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache (no planning, no compilation).
    pub hits: u64,
    /// Queries that had to be solved and were then inserted.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A cross-batch answer cache for serving workloads: maps (instance
/// fingerprint, options fingerprint, interned query key) to the completed
/// `Result<Solution, Hardness>`. Owned by the caller so one cache can
/// serve many `solve_many_cached` batches — and many instances; answers
/// for an old instance version simply stop being reachable once its
/// fingerprint changes.
#[derive(Default)]
pub struct EvalCache {
    /// Two-level map: (instance fingerprint, options fingerprint) →
    /// interned query key → answer. The outer lookup happens once per
    /// batch and the inner probes borrow the already-built [`QueryKey`],
    /// so the warm path clones nothing.
    map: FxHashMap<(u64, u64), FxHashMap<QueryKey, Result<Solution, Hardness>>>,
    hits: u64,
    misses: u64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Hit/miss counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.values().map(FxHashMap::len).sum(),
        }
    }

    /// Drops every entry (counters are kept; they describe the cache's
    /// lifetime, not its contents).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// What one `solve_many` call did, for observability and the perf
/// harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Structurally distinct queries after interning.
    pub unique_queries: usize,
    /// Unique queries answered from the [`EvalCache`].
    pub cache_hits: usize,
    /// Unique queries answered through the shared arena's single engine
    /// pass.
    pub circuit_batched: usize,
    /// Unique queries answered on the general per-query path (trivial
    /// routes, non-circuit algorithms, disconnected instances,
    /// fallbacks).
    pub general_solved: usize,
    /// Gates in the shared arena (0 when nothing batched).
    pub shared_gates: usize,
}

/// Batched solving: answers every query in `queries` against `instance`,
/// preserving order, with the amortizations described in the module docs.
/// Results are identical to calling [`crate::solve_with`] per query.
pub fn solve_many(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
) -> Vec<Result<Solution, Hardness>> {
    solve_many_stats(queries, instance, opts, None).0
}

/// As [`solve_many`], with a caller-owned [`EvalCache`]: repeated queries
/// across batches skip compilation entirely while the instance
/// fingerprint holds.
pub fn solve_many_cached(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
    cache: &mut EvalCache,
) -> Vec<Result<Solution, Hardness>> {
    solve_many_stats(queries, instance, opts, Some(cache)).0
}

/// How a unique query slot is answered before the engine pass runs.
enum SlotState {
    Ready(Result<Solution, Hardness>),
    /// Compiled into the shared arena: `deferred[idx]` holds the root;
    /// `negated` marks Prop 4.10 fail circuits (complement on read-out).
    Deferred {
        idx: usize,
        negated: bool,
        route: Route,
    },
}

/// The full-control entry point: optional cache, and the batch statistics
/// alongside the results.
pub fn solve_many_stats(
    queries: &[Graph],
    instance: &ProbGraph,
    opts: SolverOptions,
    mut cache: Option<&mut EvalCache>,
) -> (Vec<Result<Solution, Hardness>>, BatchStats) {
    let shared = SharedInstance::new(instance);
    let mut stats = BatchStats {
        queries: queries.len(),
        ..Default::default()
    };

    // 1. Intern the batch: one slot per structurally distinct query.
    let mut slot_of_key: FxHashMap<QueryKey, usize> = FxHashMap::default();
    let mut unique: Vec<(usize, QueryKey)> = Vec::new(); // (query index, key)
    let mut slot_of_query: Vec<usize> = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let key = QueryKey::new(q);
        let next = unique.len();
        let slot = *slot_of_key.entry(key.clone()).or_insert_with(|| {
            unique.push((i, key));
            next
        });
        slot_of_query.push(slot);
    }
    stats.unique_queries = unique.len();

    // 2. Resolve each unique query: cache hit, shared-arena compilation,
    //    or the general per-query path.
    let fingerprint = cache.as_ref().map(|_| instance_fingerprint(instance));
    let opts_fp = opts_fingerprint(&opts);
    let mut arena = Arena::new(instance.graph().n_edges());
    let mut deferred_roots: Vec<GateId> = Vec::new();
    let mut slots: Vec<SlotState> = Vec::with_capacity(unique.len());
    for (qi, key) in &unique {
        if let (Some(cache), Some(fp)) = (cache.as_deref_mut(), fingerprint) {
            if let Some(answer) = cache.map.get(&(fp, opts_fp)).and_then(|m| m.get(key)) {
                cache.hits += 1;
                stats.cache_hits += 1;
                slots.push(SlotState::Ready(answer.clone()));
                continue;
            }
        }
        let planned = plan_query(&queries[*qi], &shared);
        // The shared-arena fast path: circuit-compilable plans on a
        // connected instance, when no provenance handle was requested
        // (handles own their circuit, so they compile separately).
        if shared.ic.is_connected() && !opts.want_provenance {
            match &planned.plan {
                Plan::Prop411 { effective } => {
                    if let Some(root) =
                        lineage_circuits::match_into_2wp(&mut arena, effective, instance.graph())
                    {
                        slots.push(SlotState::Deferred {
                            idx: push_root(&mut deferred_roots, root),
                            negated: false,
                            route: Route::Prop411,
                        });
                        stats.circuit_batched += 1;
                        continue;
                    }
                }
                Plan::Prop410 => {
                    if let Some(root) = lineage_circuits::fail_into_dwt(
                        &mut arena,
                        &planned.absorbed,
                        instance.graph(),
                    ) {
                        slots.push(SlotState::Deferred {
                            idx: push_root(&mut deferred_roots, root),
                            negated: true,
                            route: Route::Prop410,
                        });
                        stats.circuit_batched += 1;
                        continue;
                    }
                }
                _ => {}
            }
        }
        // General path: finish the plan exactly as `solve_with` does,
        // reusing the shared instance-side state (provenance compilation
        // included).
        let answer = finish_plan(&queries[*qi], planned, &shared, opts);
        stats.general_solved += 1;
        slots.push(SlotState::Ready(answer));
    }
    stats.shared_gates = arena.n_gates();

    // 3. One multi-root engine pass answers every deferred query.
    let batched: Vec<Rational> = if deferred_roots.is_empty() {
        Vec::new()
    } else {
        arena.probability_many_with(&deferred_roots, instance.probs(), &mut EvalScratch::new())
    };

    // 4. Materialize, fill the cache, and fan back out to batch order.
    let slots: Vec<Result<Solution, Hardness>> = slots
        .into_iter()
        .map(|state| match state {
            SlotState::Ready(answer) => answer,
            SlotState::Deferred {
                idx,
                negated,
                route,
            } => {
                let p = if negated {
                    batched[idx].one_minus()
                } else {
                    batched[idx].clone()
                };
                Ok(Solution {
                    probability: p,
                    route,
                    provenance: None,
                })
            }
        })
        .collect();
    if let (Some(cache), Some(fp)) = (cache, fingerprint) {
        let per_instance = cache.map.entry((fp, opts_fp)).or_default();
        for ((_, key), answer) in unique.into_iter().zip(&slots) {
            if let std::collections::hash_map::Entry::Vacant(slot) = per_instance.entry(key) {
                cache.misses += 1;
                slot.insert(answer.clone());
            }
        }
    }
    let results = slot_of_query.iter().map(|&s| slots[s].clone()).collect();
    (results, stats)
}

fn push_root(roots: &mut Vec<GateId>, root: GateId) -> usize {
    roots.push(root);
    roots.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::generate::{self, ProbProfile};
    use phom_graph::{Graph, Label};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn twp_instance(seed: u64) -> ProbGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate::with_probabilities(
            generate::two_way_path(8, 2, &mut rng),
            ProbProfile::default(),
            &mut rng,
        )
    }

    #[test]
    fn batch_matches_per_query_solve() {
        let mut rng = SmallRng::seed_from_u64(0xBA7C);
        let h = twp_instance(0xBA7C);
        let queries: Vec<Graph> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    Graph::directed_path(i % 4)
                } else {
                    generate::connected(2 + i % 3, 1, 2, &mut rng)
                }
            })
            .collect();
        let opts = SolverOptions::default();
        let (batch, stats) = solve_many_stats(&queries, &h, opts, None);
        assert_eq!(batch.len(), queries.len());
        assert!(stats.unique_queries <= stats.queries);
        for (i, q) in queries.iter().enumerate() {
            match (&batch[i], crate::solve_with(q, &h, opts)) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.probability, s.probability, "query {i}");
                    assert_eq!(b.route, s.route, "query {i}");
                }
                (Err(b), Err(s)) => assert_eq!(b, &s, "query {i}"),
                (b, s) => panic!("query {i}: batch {b:?} vs solo {s:?}"),
            }
        }
    }

    #[test]
    fn interning_dedupes_identical_queries() {
        let h = twp_instance(7);
        let q = Graph::one_way_path(&[Label(0), Label(1)]);
        let queries = vec![q.clone(); 10];
        let (results, stats) = solve_many_stats(&queries, &h, SolverOptions::default(), None);
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.unique_queries, 1);
        let expect = crate::solve(&q, &h).unwrap();
        for r in &results {
            assert_eq!(r.as_ref().unwrap().probability, expect.probability);
        }
    }

    #[test]
    fn cache_hits_skip_compilation_and_mutation_invalidates() {
        let h = twp_instance(21);
        let mut rng = SmallRng::seed_from_u64(21);
        let queries: Vec<Graph> = (0..4)
            .map(|_| generate::connected(3, 1, 2, &mut rng))
            .collect();
        let opts = SolverOptions::default();
        let mut cache = EvalCache::new();
        let (first, s1) = solve_many_stats(&queries, &h, opts, Some(&mut cache));
        assert_eq!(s1.cache_hits, 0);
        let misses_after_first = cache.stats().misses;
        assert_eq!(misses_after_first as usize, s1.unique_queries);
        // Second batch: everything comes from the cache.
        let (second, s2) = solve_many_stats(&queries, &h, opts, Some(&mut cache));
        assert_eq!(s2.cache_hits, s2.unique_queries);
        assert_eq!(s2.circuit_batched + s2.general_solved, 0);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(
                a.as_ref().unwrap().probability,
                b.as_ref().unwrap().probability
            );
        }
        // Mutate one probability: the fingerprint moves, the cache misses,
        // and answers are re-derived (and still correct).
        let mut probs = h.probs().to_vec();
        probs[0] = Rational::from_ratio(1, 7);
        let h2 = ProbGraph::new(h.graph().clone(), probs);
        assert_ne!(instance_fingerprint(&h), instance_fingerprint(&h2));
        let (third, s3) = solve_many_stats(&queries, &h2, opts, Some(&mut cache));
        assert_eq!(s3.cache_hits, 0);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                third[i].as_ref().unwrap().probability,
                crate::solve(q, &h2).unwrap().probability
            );
        }
    }

    #[test]
    fn fingerprint_tracks_structure_and_probabilities() {
        let h = twp_instance(3);
        assert_eq!(instance_fingerprint(&h), instance_fingerprint(&h.clone()));
        let mut rng = SmallRng::seed_from_u64(99);
        let other = generate::with_probabilities(
            generate::two_way_path(8, 2, &mut rng),
            ProbProfile::default(),
            &mut rng,
        );
        assert_ne!(instance_fingerprint(&h), instance_fingerprint(&other));
    }

    #[test]
    fn query_keys_are_structural() {
        let a = Graph::one_way_path(&[Label(0), Label(1)]);
        let b = Graph::one_way_path(&[Label(0), Label(1)]);
        let c = Graph::one_way_path(&[Label(1), Label(0)]);
        assert_eq!(QueryKey::new(&a), QueryKey::new(&b));
        assert_ne!(QueryKey::new(&a), QueryKey::new(&c));
    }

    #[test]
    fn deferred_circuits_share_one_arena() {
        let h = twp_instance(5);
        let mut rng = SmallRng::seed_from_u64(5);
        let queries: Vec<Graph> = (0..6)
            .map(|_| generate::connected(rng.gen_range(2..4), 1, 2, &mut rng))
            .collect();
        let (_, stats) = solve_many_stats(&queries, &h, SolverOptions::default(), None);
        // On a connected 2WP instance every connected query batches.
        assert!(stats.circuit_batched > 0, "{stats:?}");
        assert!(stats.shared_gates > 2, "{stats:?}");
    }
}
