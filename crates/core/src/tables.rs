//! The paper's Tables 1–3 as data: the complete combined-complexity
//! classification of `PHom` for the query/instance classes of Figure 2.
//!
//! These tables drive the benchmark harness (`phom-bench`'s `tables`
//! binary regenerates them with measured evidence) and the consistency
//! tests: the dispatcher of [`crate::solver`] must solve every input drawn
//! from a PTIME cell, and may only report hardness for inputs in #P-hard
//! cells.

use phom_graph::ConnClass;

/// Labeled (|σ| > 1) vs unlabeled (|σ| = 1) setting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Setting {
    /// `PHomL`.
    Labeled,
    /// `PHom̸L`.
    Unlabeled,
}

/// Which of the paper's three tables a cell belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableId {
    /// Table 1: `PHom̸L` for disconnected queries (rows are `⊔C` classes).
    T1UnlabeledDisconnected,
    /// Table 2: `PHomL` for connected queries.
    T2LabeledConnected,
    /// Table 3: `PHom̸L` for connected queries.
    T3UnlabeledConnected,
}

/// The status of a table cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellStatus {
    /// Polynomial-time, with the proposition establishing it.
    PTime(&'static str),
    /// #P-hard, with the proposition establishing it.
    Hard(&'static str),
}

impl CellStatus {
    /// True iff the cell is tractable.
    pub fn is_ptime(self) -> bool {
        matches!(self, CellStatus::PTime(_))
    }

    /// The proposition string.
    pub fn prop(self) -> &'static str {
        match self {
            CellStatus::PTime(p) | CellStatus::Hard(p) => p,
        }
    }
}

/// The row/column headers of all three tables, in paper order.
pub const CLASSES: [ConnClass; 5] = [
    ConnClass::OneWayPath,
    ConnClass::TwoWayPath,
    ConnClass::DownwardTree,
    ConnClass::Polytree,
    ConnClass::General,
];

/// A short name for a class used as a row/column header.
pub fn class_name(c: ConnClass, union: bool) -> String {
    let base = match c {
        ConnClass::OneWayPath => "1WP",
        ConnClass::TwoWayPath => "2WP",
        ConnClass::DownwardTree => "DWT",
        ConnClass::Polytree => "PT",
        ConnClass::General => {
            return if union {
                "All".into()
            } else {
                "Connected".into()
            }
        }
    };
    if union {
        format!("⊔{base}")
    } else {
        base.into()
    }
}

/// Table 1 of the paper: `PHom̸L(⊔row, col)` — disconnected unlabeled
/// queries. `row` is the class whose disjoint union the query ranges over;
/// `col` the (connected) instance class. Results also hold for unions of
/// the instance classes (Section 3.3).
pub fn table1(row: ConnClass, col: ConnClass) -> CellStatus {
    use ConnClass::*;
    match col {
        // ⊔DWT instances are tractable for every query (graded collapse).
        OneWayPath | DownwardTree => CellStatus::PTime("Prop 3.6"),
        // Connected instances: hard already for ⊔1WP (indeed 1WP) queries.
        General => CellStatus::Hard("Prop 5.1"),
        TwoWayPath => match row {
            // ⊔1WP/⊔DWT queries collapse to a 1WP, then Prop 4.11 applies.
            OneWayPath | DownwardTree => CellStatus::PTime("Prop 5.5 + Prop 4.11"),
            _ => CellStatus::Hard("Prop 3.4"),
        },
        Polytree => match row {
            OneWayPath | DownwardTree => CellStatus::PTime("Prop 5.5 + Prop 5.4"),
            _ => CellStatus::Hard("Prop 3.4 (by inclusion)"),
        },
    }
}

/// Table 2 of the paper: `PHomL(row, col)` — labeled connected queries.
pub fn table2(row: ConnClass, col: ConnClass) -> CellStatus {
    use ConnClass::*;
    match col {
        OneWayPath | TwoWayPath => CellStatus::PTime("Prop 4.11"),
        DownwardTree => match row {
            OneWayPath => CellStatus::PTime("Prop 4.10"),
            TwoWayPath => CellStatus::Hard("Prop 4.5"),
            DownwardTree => CellStatus::Hard("Prop 4.4"),
            _ => CellStatus::Hard("Props 4.4/4.5 (by inclusion)"),
        },
        Polytree => match row {
            OneWayPath => CellStatus::Hard("Prop 4.1"),
            _ => CellStatus::Hard("Prop 4.1 (by inclusion)"),
        },
        General => CellStatus::Hard("Prop 5.1"),
    }
}

/// Table 3 of the paper: `PHom̸L(row, col)` — unlabeled connected queries.
pub fn table3(row: ConnClass, col: ConnClass) -> CellStatus {
    use ConnClass::*;
    match col {
        OneWayPath | TwoWayPath => CellStatus::PTime("Prop 4.11"),
        DownwardTree => CellStatus::PTime("Prop 3.6"),
        Polytree => match row {
            OneWayPath => CellStatus::PTime("Prop 5.4"),
            DownwardTree => CellStatus::PTime("Prop 5.5"),
            TwoWayPath => CellStatus::Hard("Prop 5.6"),
            _ => CellStatus::Hard("Prop 5.6 (by inclusion)"),
        },
        General => CellStatus::Hard("Prop 5.1"),
    }
}

/// Looks up the appropriate table.
pub fn lookup(table: TableId, row: ConnClass, col: ConnClass) -> CellStatus {
    match table {
        TableId::T1UnlabeledDisconnected => table1(row, col),
        TableId::T2LabeledConnected => table2(row, col),
        TableId::T3UnlabeledConnected => table3(row, col),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConnClass::*;

    #[test]
    fn table1_border_cells_match_paper() {
        // The numbered border cells of Table 1.
        assert_eq!(table1(OneWayPath, General), CellStatus::Hard("Prop 5.1"));
        assert_eq!(table1(TwoWayPath, TwoWayPath), CellStatus::Hard("Prop 3.4"));
        assert_eq!(
            table1(DownwardTree, Polytree),
            CellStatus::PTime("Prop 5.5 + Prop 5.4")
        );
        assert_eq!(table1(General, DownwardTree), CellStatus::PTime("Prop 3.6"));
    }

    #[test]
    fn table2_border_cells_match_paper() {
        assert_eq!(
            table2(OneWayPath, DownwardTree),
            CellStatus::PTime("Prop 4.10")
        );
        assert_eq!(table2(OneWayPath, Polytree), CellStatus::Hard("Prop 4.1"));
        assert_eq!(
            table2(TwoWayPath, DownwardTree),
            CellStatus::Hard("Prop 4.5")
        );
        assert_eq!(
            table2(DownwardTree, DownwardTree),
            CellStatus::Hard("Prop 4.4")
        );
        assert_eq!(table2(General, TwoWayPath), CellStatus::PTime("Prop 4.11"));
    }

    #[test]
    fn table3_border_cells_match_paper() {
        assert_eq!(table3(OneWayPath, General), CellStatus::Hard("Prop 5.1"));
        assert_eq!(table3(TwoWayPath, Polytree), CellStatus::Hard("Prop 5.6"));
        assert_eq!(
            table3(DownwardTree, Polytree),
            CellStatus::PTime("Prop 5.5")
        );
        assert_eq!(table3(OneWayPath, Polytree), CellStatus::PTime("Prop 5.4"));
        assert_eq!(table3(General, DownwardTree), CellStatus::PTime("Prop 3.6"));
        assert_eq!(table3(General, TwoWayPath), CellStatus::PTime("Prop 4.11"));
    }

    /// Monotonicity along the Figure 2 inclusions: growing the query or
    /// instance class can only lose tractability.
    #[test]
    fn tables_are_monotone_under_inclusion() {
        fn includes(a: ConnClass, b: ConnClass) -> bool {
            // a ⊆ b per Figure 2.
            use ConnClass::*;
            matches!(
                (a, b),
                (OneWayPath, _)
                    | (TwoWayPath, TwoWayPath | Polytree | General)
                    | (DownwardTree, DownwardTree | Polytree | General)
                    | (Polytree, Polytree | General)
                    | (General, General)
            )
        }
        for table in [table1 as fn(_, _) -> _, table2, table3] {
            for r1 in CLASSES {
                for c1 in CLASSES {
                    for r2 in CLASSES {
                        for c2 in CLASSES {
                            if includes(r1, r2) && includes(c1, c2) && table(r2, c2).is_ptime() {
                                assert!(
                                    table(r1, c1).is_ptime(),
                                    "({r1:?},{c1:?}) must be PTIME since ({r2:?},{c2:?}) is"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Table 3 is the unlabeled refinement of Table 2: every cell PTIME in
    /// Table 2 stays PTIME in Table 3 (labels only make things harder).
    #[test]
    fn unlabeled_is_no_harder_than_labeled() {
        for r in CLASSES {
            for c in CLASSES {
                if table2(r, c).is_ptime() {
                    assert!(table3(r, c).is_ptime(), "({r:?},{c:?})");
                }
            }
        }
    }

    #[test]
    fn class_names() {
        assert_eq!(class_name(OneWayPath, true), "⊔1WP");
        assert_eq!(class_name(General, true), "All");
        assert_eq!(class_name(General, false), "Connected");
        assert_eq!(class_name(Polytree, false), "PT");
    }
}
