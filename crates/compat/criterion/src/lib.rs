//! A minimal, dependency-free stand-in for the parts of `criterion` the
//! benchmark targets use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `sample_size`, and `measurement_time`.
//!
//! The build environment has no access to a crates registry, so instead of
//! statistical analysis this shim performs a simple warm-up plus a fixed
//! number of timed iterations and prints median / min / max per benchmark.
//! That keeps `cargo bench` runnable (and the bench targets compiling under
//! `cargo build --benches`) while the real measurement story for the perf
//! trajectory lives in `phom-bench`'s `tables --json` smoke mode.

use std::time::{Duration, Instant};

/// Benchmark identifier combining a function name and an input parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter (mirrors `criterion`'s API).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The per-iteration timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, recording `target_samples` samples after one warm-up.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 50);
        self
    }

    /// Accepted for API compatibility; the shim keys everything off
    /// `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        self.report(&id.into_benchmark_id().name, &mut b.samples);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.name, &mut b.samples);
        self
    }

    fn report(&mut self, bench: &str, samples: &mut [Duration]) {
        samples.sort();
        let (median, min, max) = match samples.len() {
            0 => (Duration::ZERO, Duration::ZERO, Duration::ZERO),
            n => (samples[n / 2], samples[0], samples[n - 1]),
        };
        let _ = &self.criterion;
        println!(
            "{}/{}: median {:?}  (min {:?}, max {:?}, {} samples)",
            self.name,
            bench,
            median,
            min,
            max,
            samples.len()
        );
    }

    /// Ends the group (printing happens eagerly; nothing left to do).
    pub fn finish(&mut self) {}
}

/// Conversions accepted where `criterion` takes a benchmark id.
pub trait IntoBenchmarkId {
    /// The normalized id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Reads CLI configuration (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_bencher_run() {
        benches();
    }
}
