//! A minimal, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses (`SmallRng`, `SeedableRng`, `Rng::gen_range`,
//! `Rng::gen_bool`). The build environment has no access to a crates
//! registry, so the workspace vendors exactly the API surface it needs.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets. It is
//! deterministic per seed, which is all the test suites and benchmark
//! workloads rely on; it is **not** cryptographically secure.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b`, `a..=b`, or `a..`).
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `next_u64` mapped to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// A uniform sample from `[low, high]` (inclusive on both ends).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample; panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                // Work in u128 so the span never overflows the target type.
                let span = (high as i128 - low as i128) as u128;
                if span == u128::MAX {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return wide as $t;
                }
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let offset = wide % (span + 1);
                (low as i128).wrapping_add(offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(low <= high);
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        let span = high - low;
        if span == u128::MAX {
            wide
        } else {
            low + wide % (span + 1)
        }
    }
}

impl SampleUniform for i128 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = u128::sample_inclusive(
            rng,
            (low as u128).wrapping_add(1 << 127),
            (high as u128).wrapping_add(1 << 127),
        );
        u.wrapping_sub(1 << 127) as i128
    }
}

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

impl<T: SampleUniform + PartialOrd + HasMinMax> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_inclusive(rng, self.start, T::prev(self.end))
    }
}

impl<T: SampleUniform + PartialOrd + HasMinMax> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range called with an empty range");
        T::sample_inclusive(rng, low, high)
    }
}

impl<T: SampleUniform + PartialOrd + HasMinMax> SampleRange<T> for RangeFrom<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, T::max_value())
    }
}

/// Helper giving half-open ranges an inclusive upper bound.
pub trait HasMinMax {
    /// The largest representable value.
    fn max_value() -> Self;
    /// The predecessor of `v` (only called on exclusive upper bounds).
    fn prev(v: Self) -> Self;
}

macro_rules! impl_minmax_int {
    ($($t:ty),*) => {$(
        impl HasMinMax for $t {
            fn max_value() -> Self { <$t>::MAX }
            fn prev(v: Self) -> Self { v - 1 }
        }
    )*};
}

impl_minmax_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl HasMinMax for f64 {
    fn max_value() -> Self {
        f64::MAX
    }
    // For floats `a..b` samples from [a, b): keep the bound as-is and rely
    // on `unit_f64` never reaching 1.
    fn prev(v: Self) -> Self {
        v
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_hit_their_bounds_and_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(7);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..2000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
        for _ in 0..200 {
            let v = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn take<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let r = &mut rng;
        assert!(take(r) < 10);
        assert!(r.gen_range(0..10u64) < 10);
    }
}
