//! A minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses: the `proptest!` macro with `name in strategy` and
//! `name: Type` bindings, range strategies over primitive numbers,
//! `ProptestConfig::with_cases`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Compared to the real crate there is **no shrinking**: a failing case
//! reports its case index and the seed-derived inputs via `Debug`
//! formatting in the assertion message. Each test function derives its
//! RNG seed from its own name, so runs are deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeFrom, RangeInclusive};

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure type carried by `prop_assert*` (a plain message here).
pub type TestCaseError = String;

/// The random source handed to strategies.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A deterministic runner seeded from the test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A value generator. Only sampling is supported (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f64);

impl<T: Clone> Strategy for fn(&mut TestRunner) -> T {
    type Value = T;
    fn sample(&self, runner: &mut TestRunner) -> T {
        self(runner)
    }
}

/// Whole-domain generation for the `name: Type` binding form.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen_range(-1.0e9f64..1.0e9)
    }
}

/// The test-defining macro. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn` items whose
/// parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner =
                $crate::TestRunner::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind!{ __runner, $($params)* }
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("proptest '{}' failed at case {}: {}", stringify!($name), __case, __msg);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($runner:ident $(,)?) => {};
    ($runner:ident, $($rest:tt)*) => { $crate::__proptest_bind!{ $runner $($rest)* } };
    ($runner:ident $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $runner);
        $crate::__proptest_bind!{ $runner, $($rest)* }
    };
    ($runner:ident $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $runner);
    };
    ($runner:ident $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $runner);
        $crate::__proptest_bind!{ $runner, $($rest)* }
    };
    ($runner:ident $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $runner);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed: {:?} != {:?}", __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed ({:?} != {:?}): {}", __a, __b, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne! failed: both sides are {:?}",
                __a
            ));
        }
    }};
}

/// Skips the current case (counted as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mixed binding forms and an assumption.
        #[test]
        fn mixed_bindings(a in 0u64..100, b: u8, c in 1usize..=4) {
            prop_assume!(b != 255);
            prop_assert!(a < 100);
            prop_assert!((1..=4).contains(&c));
            prop_assert_eq!(a, a);
            prop_assert_ne!(c, 0);
        }

        /// Early `return Ok(())` works as in real proptest.
        #[test]
        fn early_return(a in 0i64..10) {
            if a > 5 {
                return Ok(());
            }
            prop_assert!(a <= 5);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = crate::TestRunner::deterministic("x");
        let mut b = crate::TestRunner::deterministic("x");
        let mut c = crate::TestRunner::deterministic("y");
        let (va, vb, vc) = (
            crate::Strategy::sample(&(0u64..1 << 60), &mut a),
            crate::Strategy::sample(&(0u64..1 << 60), &mut b),
            crate::Strategy::sample(&(0u64..1 << 60), &mut c),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
