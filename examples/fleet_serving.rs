//! Fleet serving: many graph *versions* behind one registry, one shared
//! bounded cache, and typed mixed workloads.
//!
//! The scenario extends `examples/batched_serving.rs` to the ROADMAP's
//! cross-instance item: a server holds several versions of a
//! probabilistic graph at once — say, the live pipeline, a candidate
//! repair, and an all-½ "census" variant used for model counting — and
//! routes each request to the right version by fingerprint. A `Fleet`
//! gives every version an `Engine` on **one shared LRU cache**, so:
//!
//! * hot versions compete for the same bounded memory (no per-version
//!   unbounded growth);
//! * answers can never leak across versions — the cache key embeds the
//!   instance fingerprint;
//! * retiring a version is O(1) (`deregister`); its cached answers
//!   simply age out.
//!
//! Run with: `cargo run --release --example fleet_serving`

use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xF1EE7);

    // Version 1: the live pipeline (mixed probabilities).
    let live = phom::graph::generate::with_probabilities(
        phom::graph::generate::two_way_path(200, 2, &mut rng),
        phom::graph::generate::ProbProfile::default(),
        &mut rng,
    );
    // Version 2: a candidate repair — the first uncertain link made
    // certain.
    let repaired = {
        let mut probs = live.probs().to_vec();
        if let Some(e) = live.uncertain_edges().first() {
            probs[*e] = Rational::one();
        }
        ProbGraph::new(live.graph().clone(), probs)
    };
    // Version 3: the all-½ census variant (for world counting).
    let census = phom::graph::generate::with_probabilities(
        live.graph().clone(),
        phom::graph::generate::ProbProfile::half(),
        &mut rng,
    );

    let mut fleet = Fleet::with_cache_capacity(256).threads(2);
    let v_live = fleet.register(live.clone());
    let v_repaired = fleet.register(repaired);
    let v_census = fleet.register(census);
    println!(
        "fleet: {} versions registered ({:#x}, {:#x}, {:#x})",
        fleet.len(),
        v_live,
        v_repaired,
        v_census
    );

    // The hot patterns clients ask for.
    let catalogue: Vec<Graph> = (1..=3)
        .map(|m| {
            phom::graph::generate::planted_path_query(live.graph(), m, &mut rng)
                .unwrap_or_else(|| phom::graph::generate::one_way_path(m, 2, &mut rng))
        })
        .collect();

    // A mixed traffic trace: probability requests against live and
    // repaired, counting requests against the census version, and a UCQ
    // ("any of the hot patterns") against live.
    for tick in 0..3 {
        let mut answered = 0;
        for _ in 0..8 {
            let q = catalogue[rng.gen_range(0..catalogue.len())].clone();
            let (version, request) = match rng.gen_range(0..4) {
                0 => (v_live, Request::probability(q)),
                1 => (v_repaired, Request::probability(q)),
                2 => (v_census, Request::probability(q).counting()),
                _ => (v_live, Request::ucq(Ucq::new(catalogue.clone()))),
            };
            let answers = fleet.submit(version, &[request]).expect("registered");
            match &answers[0] {
                Ok(Response::Probability(sol)) => {
                    answered += 1;
                    let _ = sol;
                }
                Ok(Response::Count {
                    worlds,
                    uncertain_edges,
                }) => {
                    answered += 1;
                    let _ = (worlds, uncertain_edges);
                }
                Ok(Response::Ucq { probability, .. }) => {
                    answered += 1;
                    let _ = probability;
                }
                Ok(Response::Approximate { .. })
                | Ok(Response::Sensitivity { .. })
                | Ok(Response::Estimate { .. }) => answered += 1,
                Err(e) => println!("  request failed: {e}"),
            }
        }
        let s = fleet.cache_stats();
        println!(
            "tick {tick}: {answered}/8 answered; shared cache {} entries, \
             {} hits / {} misses / {} evictions",
            s.entries, s.hits, s.misses, s.evictions
        );
    }

    // Answers are version-correct: the repaired pipeline is at least as
    // reliable as the live one for every hot pattern.
    for (i, q) in catalogue.iter().enumerate() {
        let p_live = fleet
            .submit(v_live, &[Request::probability(q.clone())])
            .unwrap()[0]
            .as_ref()
            .unwrap()
            .probability()
            .unwrap()
            .clone();
        let p_rep = fleet
            .submit(v_repaired, &[Request::probability(q.clone())])
            .unwrap()[0]
            .as_ref()
            .unwrap()
            .probability()
            .unwrap()
            .clone();
        assert!(p_rep >= p_live, "repair can only help a monotone event");
        println!(
            "catalogue[{i}]: live {:.6} → repaired {:.6}",
            p_live.to_f64(),
            p_rep.to_f64()
        );
    }

    // Retire the candidate once it ships.
    assert!(fleet.deregister(v_repaired));
    assert!(fleet.submit(v_repaired, &[]).is_none());
    println!("repaired version retired; {} versions remain", fleet.len());
}
