//! The persistent serving runtime end to end: producers on many
//! threads, micro-batching ticks over a worker pool spawned once,
//! backpressure under a tiny queue, cancellation, and the stats
//! snapshot a dashboard would scrape.
//!
//! This is the process shape the ROADMAP's "heavy traffic" north star
//! asks for: nobody assembles batches by hand — concurrent callers
//! `enqueue` single requests, the runtime coalesces whatever arrives
//! within a tick window, and the paper's tractability does the rest
//! (one shared arena + one engine pass per shard, answers bit-identical
//! to direct `Engine::submit`).
//!
//! Run with: `cargo run --release --example runtime_serving`

use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x52E21);

    // Two served versions: the live pipeline and its all-½ census twin.
    let live = phom::graph::generate::with_probabilities(
        phom::graph::generate::two_way_path(120, 2, &mut rng),
        phom::graph::generate::ProbProfile::default(),
        &mut rng,
    );
    let census = phom::graph::generate::with_probabilities(
        live.graph().clone(),
        phom::graph::generate::ProbProfile::half(),
        &mut rng,
    );

    let runtime = Runtime::builder()
        .max_batch(32) // flush a tick at 32 requests...
        .max_wait(Duration::from_millis(2)) // ...or after 2 ms, whichever first
        .queue_cap(64) // admission control: beyond this, Overloaded
        .workers(4) // pool size — spawned once, right here
        .cache_capacity(512)
        .build();
    let v_live = runtime.register(live.clone());
    let v_census = runtime.register(census);
    println!(
        "runtime up: versions {:#x} (live) / {:#x} (census), {} workers",
        v_live,
        v_census,
        runtime.stats().workers
    );

    // The hot patterns clients ask for.
    let catalogue: Vec<Graph> = (1..=3)
        .map(|m| {
            phom::graph::generate::planted_path_query(live.graph(), m, &mut rng)
                .unwrap_or_else(|| phom::graph::generate::one_way_path(m, 2, &mut rng))
        })
        .collect();

    // Six producer threads fire 360 mixed requests; nobody batches by
    // hand, the tick window does the coalescing.
    let overload_retries = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        let (runtime, catalogue, retries) = (&runtime, &catalogue, &overload_retries);
        for producer in 0..6 {
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xB0B + producer);
                let mut tickets = Vec::new();
                for _ in 0..60 {
                    let q = catalogue[rng.gen_range(0..catalogue.len())].clone();
                    let (version, request) = match rng.gen_range(0..4) {
                        0 | 1 => (v_live, Request::probability(q)),
                        2 => (v_census, Request::probability(q).counting()),
                        _ => (v_live, Request::ucq(Ucq::new(catalogue.clone()))),
                    };
                    // Backpressure in action: a full queue answers
                    // Overloaded immediately; the producer backs off.
                    loop {
                        match runtime.enqueue_to(version, request.clone()) {
                            Ok(ticket) => {
                                tickets.push(ticket);
                                break;
                            }
                            Err(SolveError::Overloaded { .. }) => {
                                retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("enqueue: {e}"),
                        }
                    }
                }
                for ticket in tickets {
                    ticket.wait().expect("tractable workload");
                }
            });
        }
    });

    // Cancellation: park a request behind a long tick window, change
    // your mind, observe the immediate typed resolution.
    let parked = runtime
        .enqueue_to(v_live, Request::probability(catalogue[0].clone()))
        .expect("admitted");
    if parked.try_get().is_none() {
        parked.cancel();
    }
    assert!(parked.is_done() || parked.wait_timeout(Duration::from_secs(5)).is_some());

    // Bit-identity spot check against the direct engine path.
    let direct = Engine::new(live)
        .submit(&[Request::probability(catalogue[0].clone())])
        .pop()
        .unwrap();
    let served = runtime
        .enqueue_to(v_live, Request::probability(catalogue[0].clone()))
        .expect("admitted")
        .wait();
    match (&served, &direct) {
        (Ok(Response::Probability(a)), Ok(Response::Probability(b))) => {
            assert_eq!(
                a.probability, b.probability,
                "runtime == engine, bit for bit"
            );
        }
        (a, b) => panic!("{a:?} vs {b:?}"),
    }

    // Graceful shutdown drains everything in flight, then the snapshot.
    let stats = runtime.shutdown();
    println!(
        "served {} requests in {} ticks (mean {:.1}, max {} per tick)",
        stats.completed,
        stats.ticks,
        stats.mean_tick_requests(),
        stats.max_tick_requests
    );
    println!(
        "pool: {} workers (started exactly {} — once, at startup), \
         {} units, mean {:.0}µs, max {:.0}µs",
        stats.workers,
        stats.workers_started,
        stats.unit_runs,
        stats.mean_unit_micros(),
        stats.unit_nanos_max as f64 / 1e3
    );
    println!(
        "admission: {} admitted, {} rejected (producers retried {} times)",
        stats.admitted,
        stats.rejected,
        overload_retries.load(std::sync::atomic::Ordering::Relaxed)
    );
    println!(
        "plan-time: {} queries / {} unique / {} cache hits; \
         {} circuit-batched, {} general",
        stats.queries,
        stats.unique_queries,
        stats.batch_cache_hits,
        stats.circuit_batched,
        stats.general_solved
    );
    println!(
        "shared cache: {} entries, {} hits / {} misses / {} evictions",
        stats.cache.entries, stats.cache.hits, stats.cache.misses, stats.cache.evictions
    );
}
