//! The complexity atlas: regenerates the paper's Tables 1–3 from the
//! solver's observed behaviour.
//!
//! For every (query class, instance class) cell:
//!
//! * **PTIME cells** — sample random inputs from the cell; the dispatcher
//!   must solve *all* of them, and each exact answer is verified against
//!   brute-force world enumeration;
//! * **#P-hard cells** — random samples may still be answered through the
//!   solver's opportunistic fast paths (e.g. a cyclic query on a polytree
//!   is simply 0), and any such answer is verified exact; a *witness*
//!   input built to dodge all fast paths must then be reported hard with
//!   the proposition the table names.
//!
//! Run with: `cargo run --example complexity_atlas`

use phom::core::{bruteforce, tables};
use phom::graph::generate;
use phom::graph::ConnClass;
use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sample_query(class: ConnClass, union: bool, sigma: u32, rng: &mut SmallRng) -> Graph {
    let one = |rng: &mut SmallRng| -> Graph {
        match class {
            ConnClass::OneWayPath => generate::one_way_path(rng.gen_range(1..4), sigma, rng),
            ConnClass::TwoWayPath => generate::two_way_path(rng.gen_range(2..5), sigma, rng),
            ConnClass::DownwardTree => generate::downward_tree(rng.gen_range(3..6), sigma, rng),
            ConnClass::Polytree => generate::polytree(rng.gen_range(3..6), sigma, rng),
            ConnClass::General => generate::connected(rng.gen_range(2..5), 2, sigma, rng),
        }
    };
    if union {
        let parts = rng.gen_range(2..4);
        generate::union_of(parts, rng, one)
    } else {
        one(rng)
    }
}

fn sample_instance(class: ConnClass, sigma: u32, rng: &mut SmallRng) -> ProbGraph {
    let g = match class {
        ConnClass::OneWayPath => generate::one_way_path(rng.gen_range(3..8), sigma, rng),
        ConnClass::TwoWayPath => generate::two_way_path(rng.gen_range(3..8), sigma, rng),
        ConnClass::DownwardTree => generate::downward_tree(rng.gen_range(4..9), sigma, rng),
        ConnClass::Polytree => generate::polytree(rng.gen_range(4..9), sigma, rng),
        ConnClass::General => generate::connected(rng.gen_range(3..7), 3, sigma, rng),
    };
    generate::with_probabilities(
        g,
        generate::ProbProfile {
            certain_ratio: 0.3,
            denominator: 4,
        },
        rng,
    )
}

/// A witness input inside the cell that dodges every fast path, so the
/// dispatcher must report the hardness result.
fn hard_witness(table: tables::TableId, row: ConnClass, col: ConnClass) -> (Graph, ProbGraph) {
    use ConnClass::*;
    let unlabeled = !matches!(table, tables::TableId::T2LabeledConnected);
    let _sigma: u32 = if unlabeled { 1 } else { 2 };
    let u = Label::UNLABELED;
    let s = Label(0);
    let t = Label(if unlabeled { 0 } else { 1 });

    // Query: a member of `row` (⊔row for Table 1) that neither collapses
    // nor trivializes.
    let connected_query = |c: ConnClass| -> Graph {
        match c {
            OneWayPath => Graph::one_way_path(&[s, t]),
            // →→← is a 2WP that is not a DWT (middle sink has in-degree 2).
            TwoWayPath => {
                Graph::two_way_path(&[(Dir::Forward, s), (Dir::Forward, s), (Dir::Backward, t)])
            }
            DownwardTree => Graph::downward_tree(&[None, Some((0, s)), Some((0, t)), Some((1, s))]),
            // An in-star plus a tail: a polytree that is neither a DWT nor
            // a 2WP, but graded.
            Polytree => {
                let mut b = GraphBuilder::with_vertices(4);
                b.edge(1, 0, s);
                b.edge(2, 0, t);
                b.edge(3, 1, s);
                b.build()
            }
            // The graded diamond: connected, not a polytree, still graded
            // (so the ⊔PT zero fast path does not fire).
            General => {
                let mut b = GraphBuilder::with_vertices(4);
                b.edge(0, 1, s);
                b.edge(0, 2, t);
                b.edge(1, 3, t);
                b.edge(2, 3, s);
                b.build()
            }
        }
    };
    // Table 1 rows are disconnected-query classes. Since the solver
    // absorbs hom-comparable components, a faithful hard witness needs
    // pairwise *incomparable* components; the Prop 3.4 reduction image
    // provides exactly that (and its instance is a 2WP ⊆ PT ⊆ Connected,
    // covering every hard column of the row).
    if matches!(table, tables::TableId::T1UnlabeledDisconnected) && col != General {
        let red = phom::reductions::prop34::reduce(
            &phom::reductions::edge_cover::Bipartite::figure_5_graph(),
        );
        return (red.query, red.instance);
    }
    let query = if matches!(table, tables::TableId::T1UnlabeledDisconnected) {
        let a = connected_query(row);
        let b = connected_query(row);
        Graph::disjoint_union(&[&a, &b])
    } else {
        connected_query(row)
    };

    // Instance: a member of `col` exposing every query label, in the most
    // general shape of the class.
    let instance_graph = match col {
        OneWayPath => Graph::one_way_path(&[s, t, s, t, s]),
        TwoWayPath => Graph::two_way_path(&[
            (Dir::Forward, s),
            (Dir::Forward, t),
            (Dir::Backward, s),
            (Dir::Forward, t),
            (Dir::Backward, t),
        ]),
        DownwardTree => Graph::downward_tree(&[
            None,
            Some((0, s)),
            Some((0, t)),
            Some((1, s)),
            Some((1, t)),
            Some((2, s)),
        ]),
        Polytree => {
            let mut b = GraphBuilder::with_vertices(6);
            b.edge(0, 1, s);
            b.edge(2, 1, t); // in-degree 2: not a DWT
            b.edge(2, 3, s);
            b.edge(2, 4, t); // branching: not a 2WP
            b.edge(5, 4, s);
            b.build()
        }
        General => {
            let mut b = GraphBuilder::with_vertices(4);
            b.edge(0, 1, s);
            b.edge(1, 0, t); // an undirected (even directed) cycle
            b.edge(1, 2, s);
            b.edge(2, 3, t);
            b.build()
        }
    };
    let _ = u;
    let probs = vec![Rational::from_ratio(1, 2); instance_graph.n_edges()];
    (query, ProbGraph::new(instance_graph, probs))
}

fn cell_report(
    table: tables::TableId,
    row: ConnClass,
    col: ConnClass,
    union_queries: bool,
    sigma: u32,
    rng: &mut SmallRng,
) -> String {
    let expected = tables::lookup(table, row, col);
    let trials = 10;
    let mut hard = 0;
    for _ in 0..trials {
        let q = sample_query(row, union_queries, sigma, rng);
        let h = sample_instance(col, sigma, rng);
        match Engine::new(h.clone()).solve(&q) {
            Ok(sol) => {
                assert_eq!(
                    sol.probability,
                    bruteforce::probability(&q, &h),
                    "solver must be exact on {q:?} / {:?}",
                    h.graph()
                );
            }
            Err(_) => hard += 1,
        }
    }
    match expected {
        tables::CellStatus::PTime(prop) => {
            assert_eq!(
                hard, 0,
                "PTIME cell ({row:?},{col:?}) must always be solved"
            );
            format!("P[{}]", prop.replace("Prop ", ""))
        }
        tables::CellStatus::Hard(_prop) => {
            let (wq, wh) = hard_witness(table, row, col);
            let err = Engine::new(wh)
                .solve(&wq)
                .expect_err("the witness must land in the hard cell");
            let SolveError::Hard(hard_cell) = err else {
                panic!("the witness must report hardness, not {err}");
            };
            format!(
                "#P[{}]",
                hard_cell.prop.replace("Prop ", "").replace("Props ", "")
            )
        }
    }
}

fn print_table(
    title: &str,
    table: tables::TableId,
    union_queries: bool,
    sigma: u32,
    rng: &mut SmallRng,
) {
    println!("\n=== {title} ===");
    print!("{:>22} |", "query \\ instance");
    for col in tables::CLASSES {
        print!("{:>14}", tables::class_name(col, false));
    }
    println!();
    for row in tables::CLASSES {
        print!("{:>22} |", tables::class_name(row, union_queries));
        for col in tables::CLASSES {
            print!(
                "{:>14}",
                cell_report(table, row, col, union_queries, sigma, rng)
            );
        }
        println!();
    }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(123);
    print_table(
        "Table 1: PHom (unlabeled), disconnected queries",
        tables::TableId::T1UnlabeledDisconnected,
        true,
        1,
        &mut rng,
    );
    print_table(
        "Table 2: PHom (labeled), connected queries",
        tables::TableId::T2LabeledConnected,
        false,
        3,
        &mut rng,
    );
    print_table(
        "Table 3: PHom (unlabeled), connected queries",
        tables::TableId::T3UnlabeledConnected,
        false,
        1,
        &mut rng,
    );
    println!("\nEvery PTIME cell: all sampled inputs solved exactly (vs brute force).");
    println!("Every #P-hard cell: sampled inputs either solved exactly via fast paths");
    println!("or reported hard; the cell witness was reported hard with the expected result.");
}
