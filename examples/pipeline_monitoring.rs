//! Monitoring a linear pipeline with unreliable links — the
//! `PHomL(Connected, 2WP)` scenario of Prop 4.11: the instance is a
//! two-way *labeled word* (the paper's conclusion: "labeled words"), and
//! arbitrary connected patterns are tractable on it.
//!
//! A pipeline of pumping stations is linked by sensor channels; each
//! channel reports upstream (`Up`) or downstream (`Down`) with a known
//! availability. Operators ask for the probability that communication
//! patterns exist somewhere along the pipeline.
//!
//! Run with: `cargo run --example pipeline_monitoring`

use phom::core::algo::connected_on_2wp;
use phom::core::bruteforce;
use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TELEMETRY: Label = Label(0);
const CONTROL: Label = Label(1);

/// A pipeline of `n` stations: each hop is a telemetry or control channel
/// pointing up- or downstream, with an availability probability.
fn build_pipeline(n_hops: usize, rng: &mut SmallRng) -> ProbGraph {
    let steps: Vec<(Dir, Label)> = (0..n_hops)
        .map(|_| {
            let dir = if rng.gen_bool(0.6) {
                Dir::Forward
            } else {
                Dir::Backward
            };
            let label = if rng.gen_bool(0.7) {
                TELEMETRY
            } else {
                CONTROL
            };
            (dir, label)
        })
        .collect();
    let g = Graph::two_way_path(&steps);
    let probs = (0..n_hops)
        .map(|_| Rational::from_ratio(rng.gen_range(12..=20), 20))
        .collect();
    ProbGraph::new(g, probs)
}

/// The monitoring patterns. Note they may branch and mix directions —
/// any *connected* query is fine on a 2WP instance.
fn patterns() -> Vec<(&'static str, Graph)> {
    let mut v = Vec::new();
    // Two telemetry hops downstream in a row.
    v.push((
        "telemetry x2 downstream",
        Graph::one_way_path(&[TELEMETRY, TELEMETRY]),
    ));
    // A control hop, against the flow, between telemetry hops.
    v.push((
        "telemetry → control(rev) → telemetry",
        Graph::two_way_path(&[
            (Dir::Forward, TELEMETRY),
            (Dir::Backward, CONTROL),
            (Dir::Forward, TELEMETRY),
        ]),
    ));
    // A branching pattern: a station sending telemetry both ways.
    let mut b = GraphBuilder::with_vertices(3);
    b.edge(0, 1, TELEMETRY);
    b.edge(0, 2, CONTROL);
    v.push(("station with telemetry + control out", b.build()));
    v
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(411);

    // Small pipeline: validate Prop 4.11 against brute force.
    let small = build_pipeline(10, &mut rng);
    println!("Small pipeline: {} hops", small.graph().n_edges());
    let engine = Engine::new(small.clone());
    for (name, q) in &patterns() {
        let sol = engine.solve(q).unwrap();
        // Short pipelines may lack a label entirely, in which case the
        // solver short-circuits to 0 instead of running Prop 4.11.
        assert!(matches!(sol.route, Route::Prop411 | Route::MissingLabel));
        assert_eq!(sol.probability, bruteforce::probability(q, &small));
        println!(
            "  Pr[{name}] = {} ≈ {:.4}",
            sol.probability,
            sol.probability.to_f64()
        );
    }

    // Large pipeline: thousands of hops, far beyond world enumeration.
    // (Exact rationals over thousands of hops grow large; 400 hops keeps
    // debug-build runtime low while staying far beyond world enumeration.)
    let big = build_pipeline(400, &mut rng);
    println!(
        "\nLarge pipeline: {} hops (2^{} worlds)",
        big.graph().n_edges(),
        big.graph().n_edges()
    );
    for (name, q) in &patterns() {
        let t0 = std::time::Instant::now();
        let via_lineage: Rational = connected_on_2wp::probability_lineage(q, &big).unwrap();
        let t_lineage = t0.elapsed();
        let t0 = std::time::Instant::now();
        let via_dp: f64 = connected_on_2wp::probability_dp(q, &big).unwrap();
        let t_dp = t0.elapsed();
        assert!((via_lineage.to_f64() - via_dp).abs() < 1e-9);
        println!(
            "  Pr[{name}] ≈ {:.6}   (β-acyclic lineage {t_lineage:?}, interval DP {t_dp:?})",
            via_lineage.to_f64()
        );
    }

    // The minimal-interval view: where can the zig-zag pattern match?
    let (intervals, _) =
        connected_on_2wp::minimal_intervals(&patterns()[1].1, small.graph()).unwrap();
    println!(
        "\nMinimal match intervals of the zig-zag pattern on the small pipeline: {intervals:?}"
    );
}
