//! The full serving stack, end to end over real TCP: an adaptive
//! `phom_serve::Runtime` behind the `phom_net` front end, a client
//! registering an instance and streaming requests over the
//! length-prefixed JSON protocol, backpressure surfacing as typed
//! `overloaded` frames, and a draining shutdown.
//!
//! This is the three-layer shape of the ROADMAP's serving scale-out:
//! Engine tick seam → Runtime (micro-batching, adaptive tick sizing,
//! cross-shard arenas) → network front end.
//!
//! Run with: `cargo run --release --example net_serving`

use phom::net::{Client, Json, Server, WireRequest};
use phom::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x2E7);

    // The served instance: a labeled two-way path pipeline.
    let instance = phom::graph::generate::with_probabilities(
        phom::graph::generate::two_way_path(80, 2, &mut rng),
        phom::graph::generate::ProbProfile::default(),
        &mut rng,
    );

    // Layer 2: the runtime — adaptive tick sizing on, cross-shard arena
    // sharing from 16 unique queries per tick.
    let runtime = Arc::new(
        Runtime::builder()
            .max_batch(32)
            .max_wait(Duration::from_millis(2))
            .queue_cap(64)
            .workers(4)
            .adaptive(true)
            .share_arena_at(Some(16))
            .build(),
    );

    // Layer 3: the TCP front end (port 0 = pick a free port).
    let server = Server::bind("127.0.0.1:0", Arc::clone(&runtime)).expect("bind");
    println!("serving on {}", server.local_addr());

    // A client connects, registers the instance over the wire, and
    // learns its routing fingerprint.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let version = client.register(&instance).expect("register");
    println!("registered instance version {version:#018x}");

    // Stream a workload: repeated planted queries (the cache-friendly
    // hot path) plus a counting twin. Submits and polls are independent
    // ops — a client may pipeline many tickets.
    let queries: Vec<Graph> = (1..=3)
        .map(|m| {
            phom::graph::generate::planted_path_query(instance.graph(), m, &mut rng)
                .unwrap_or_else(|| phom::graph::generate::one_way_path(m, 2, &mut rng))
        })
        .collect();
    let mut tickets = Vec::new();
    let mut overloaded = 0u64;
    for i in 0..200 {
        let request = WireRequest::probability(queries[i % queries.len()].clone());
        match client.submit(version, &request) {
            Ok(ticket) => tickets.push(ticket),
            Err(e) if e.is_overloaded() => {
                // Backpressure on the wire: back off, drain one, retry.
                overloaded += 1;
                if let Some(ticket) = tickets.pop() {
                    client.wait(ticket).expect("answer");
                }
            }
            Err(e) => panic!("submit: {e}"),
        }
    }
    let mut answers = 0u64;
    for ticket in tickets {
        let result = client.wait(ticket).expect("answer");
        assert_eq!(result.get("status").and_then(Json::as_str), Some("ok"));
        answers += 1;
    }
    println!("{answers} answers polled, {overloaded} overloaded frames absorbed");

    // Observability over the wire: both layers in one snapshot.
    let stats = client.stats().expect("stats");
    println!(
        "ticks {} (hist {}), effective max_batch {}, shared-arena ticks {}, cache hits {}",
        stats.get("ticks").and_then(Json::as_u64).unwrap_or(0),
        stats
            .get("tick_size_hist")
            .map(|h| h.to_string())
            .unwrap_or_default(),
        stats
            .get("effective_max_batch")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        stats
            .get("shared_arena_ticks")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );

    // Draining shutdown: the front end refuses new submissions, lets
    // clients collect what is outstanding, then closes.
    let net = server.shutdown(Duration::from_secs(5));
    println!(
        "front end drained: {} connections, {} frames in / {} out, {} delivered, {} open tickets",
        net.connections, net.frames_in, net.frames_out, net.delivered, net.open_tickets
    );
    let runtime = Arc::try_unwrap(runtime).unwrap_or_else(|_| panic!("last runtime handle"));
    let stats = runtime.shutdown();
    println!(
        "runtime drained: {} admitted, {} completed, {} rejected (Overloaded)",
        stats.admitted, stats.completed, stats.rejected
    );
}
