//! Network reliability on bounded-treewidth topologies — the Section 6
//! "bounded-treewidth instances" extension in action.
//!
//! Scenario: a layered service mesh. Each layer holds `w` replicas; links
//! go from every replica of one layer to some replicas of the next, each
//! link up independently with some probability, plus occasional "skip"
//! and feedback links. The underlying graph has pathwidth ≈ 2w, far from
//! a polytree — yet `Pr(a request can chain through ≥ m hops)` is exactly
//! the `PHom` probability of the query `→^m`, and the treewidth walk DP
//! (`phom::core::algo::walk_on_tw`) computes it in polynomial time.
//!
//! Run with: `cargo run --release --example network_reliability`

use phom::core::algo::walk_on_tw;
use phom::core::{bruteforce, sensitivity};
use phom::graph::treedecomp::NiceDecomposition;
use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Builds a `layers × width` mesh: forward links between consecutive
/// layers (probability 9/10), sparse skip links (1/2), and one feedback
/// link per third layer (1/4). Returns the probabilistic graph.
fn mesh(layers: usize, width: usize, rng: &mut SmallRng) -> ProbGraph {
    let mut b = GraphBuilder::with_vertices(layers * width);
    let mut probs = Vec::new();
    let id = |l: usize, i: usize| l * width + i;
    for l in 0..layers - 1 {
        for i in 0..width {
            for j in 0..width {
                // Forward links: dense but not complete.
                if i == j || rng.gen_bool(0.5) {
                    b.edge(id(l, i), id(l + 1, j), Label::UNLABELED);
                    probs.push(Rational::from_ratio(9, 10));
                }
            }
        }
        // A skip link two layers ahead.
        if l + 2 < layers && rng.gen_bool(0.6) {
            b.edge(id(l, 0), id(l + 2, width - 1), Label::UNLABELED);
            probs.push(Rational::from_ratio(1, 2));
        }
        // Feedback (creates directed cycles — walks, not paths!).
        if l % 3 == 2 {
            b.edge(id(l, width - 1), id(l - 1, 0), Label::UNLABELED);
            probs.push(Rational::from_ratio(1, 4));
        }
    }
    ProbGraph::new(b.build(), probs)
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xEE7);

    // ------------------------------------------------------------------
    // 1. Exactness check on a small mesh (vs brute-force enumeration).
    // ------------------------------------------------------------------
    let small = mesh(4, 2, &mut rng);
    let nice = NiceDecomposition::heuristic(small.graph());
    println!(
        "small mesh: {} vertices, {} edges, decomposition width {}",
        small.graph().n_vertices(),
        small.graph().n_edges(),
        nice.width()
    );
    for m in 1..=4 {
        let dp: Rational = walk_on_tw::long_walk_probability(&small, m, &nice);
        let bf = bruteforce::probability(&Graph::directed_path(m), &small);
        assert_eq!(dp, bf, "treewidth DP must equal brute force");
        println!("  Pr(chain of ≥ {m} hops) = {} ≈ {:.4}", dp, dp.to_f64());
    }

    // ------------------------------------------------------------------
    // 2. Scaling: instances far beyond brute-force reach. Brute force
    //    would enumerate 2^|E| worlds; the DP is polynomial for fixed
    //    width.
    // ------------------------------------------------------------------
    println!("\nscaling (m = 6, width-2 mesh):");
    println!(
        "{:>8} {:>8} {:>7} {:>12} {:>10}",
        "layers", "edges", "tw≤", "Pr≈", "time"
    );
    for layers in [8usize, 16, 32, 64] {
        let h = mesh(layers, 2, &mut rng);
        let nice = NiceDecomposition::heuristic(h.graph());
        let t0 = Instant::now();
        let p: f64 = walk_on_tw::long_walk_probability(&h, 6, &nice);
        let dt = t0.elapsed();
        println!(
            "{:>8} {:>8} {:>7} {:>12.6} {:>9.1?}",
            layers,
            h.graph().n_edges(),
            nice.width(),
            p,
            dt
        );
    }

    // ------------------------------------------------------------------
    // 3. Which link matters? Influence by conditioning on the DP.
    // ------------------------------------------------------------------
    let h = mesh(6, 2, &mut rng);
    let nice = NiceDecomposition::heuristic(h.graph());
    let m = 5usize;
    let total: Rational = walk_on_tw::long_walk_probability(&h, m, &nice);
    println!(
        "\ninfluence analysis: mesh with {} edges, Pr(≥ {m} hops) = {:.4}",
        h.graph().n_edges(),
        total.to_f64()
    );
    let influences = sensitivity::influences_by_conditioning(&h, |inst| {
        let nice = NiceDecomposition::heuristic(inst.graph());
        walk_on_tw::long_walk_probability::<Rational>(inst, m, &nice)
    });
    let ranked = sensitivity::rank_edges(influences);
    println!("top 5 links by Birnbaum importance:");
    for &(e, ref inf) in ranked.iter().take(5) {
        let edge = h.graph().edge(e);
        println!(
            "  link {:>2} ({} → {}): influence {:.4}, π = {}",
            e,
            edge.src,
            edge.dst,
            inf.to_f64(),
            h.prob(e)
        );
    }
    // Sanity: influences of a monotone event are nonnegative.
    assert!(ranked.iter().all(|(_, inf)| !inf.is_negative()));

    println!("\nall reliability numbers are exact rationals — no sampling error.");
}
