//! Sensitivity analysis: which uncertain fact should we verify first?
//!
//! Scenario: a knowledge-curation team has a probabilistic fact base
//! (edges extracted by ML, each with a confidence) and a query whose
//! answer drives a decision. Verifying a fact by hand is expensive, so
//! the team wants the facts ranked by **influence** — how much the query
//! probability moves if a fact is confirmed vs refuted. That is exactly
//! the gradient `∂Pr/∂π(e)`, computed here from the lineage circuit in
//! one backward pass (`phom::core::sensitivity`), together with the
//! **most probable witness**: the likeliest world in which the query
//! holds.
//!
//! Run with: `cargo run --example sensitivity_analysis`

use phom::core::sensitivity;
use phom::graph::Dir;
use phom::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // A curated event timeline (a labeled 2WP instance, Prop 4.11 cell):
    // deploys (D), alerts (A) and rollbacks (B) extracted from noisy logs
    // — direction encodes causality claims made by the extractor.
    // ------------------------------------------------------------------
    let (d, a, bk) = (Label(0), Label(1), Label(2));
    let timeline = Graph::two_way_path(&[
        (Dir::Forward, d),   // e0: deploy v1 → v2        (π = 0.95)
        (Dir::Forward, a),   // e1: v2 raised alert       (π = 0.6)
        (Dir::Backward, bk), // e2: rollback claim v4 → v3 (π = 0.5)
        (Dir::Forward, d),   // e3: deploy v4 → v5        (π = 0.9)
        (Dir::Forward, a),   // e4: v5 raised alert       (π = 0.3)
    ]);
    let h = ProbGraph::new(
        timeline,
        vec![
            Rational::from_ratio(19, 20),
            Rational::from_ratio(3, 5),
            Rational::from_ratio(1, 2),
            Rational::from_ratio(9, 10),
            Rational::from_ratio(3, 10),
        ],
    );
    // The incident pattern: a deploy immediately followed by an alert.
    let incident = Graph::one_way_path(&[d, a]);

    let sol = Engine::new(h.clone())
        .solve(&incident)
        .expect("connected query on a 2WP: Prop 4.11");
    println!(
        "Pr(deploy → alert somewhere) = {} ≈ {:.4}",
        sol.probability,
        sol.probability.to_f64()
    );

    // ------------------------------------------------------------------
    // Influence ranking, from the match circuit's gradient.
    // ------------------------------------------------------------------
    let (grads, route) =
        sensitivity::influences::<Rational>(&incident, &h).expect("circuit route applies");
    println!("\nedge influences (route {route:?}):");
    let names = ["deploy#1", "alert#1", "rollback", "deploy#2", "alert#2"];
    for (e, inf) in sensitivity::rank_edges(grads.clone()) {
        let swing_up = inf.mul(&h.prob(e).one_minus());
        println!(
            "  {:<9} influence {:.4}  (confirming it adds {:+.4})",
            names[e],
            inf.to_f64(),
            swing_up.to_f64(),
        );
    }
    // The gradient obeys the conditioning identity — spot-check edge 1.
    let plus: Rational =
        sensitivity::conditional_probability(&incident, &h, 1, true).expect("route applies");
    let minus: Rational =
        sensitivity::conditional_probability(&incident, &h, 1, false).expect("route applies");
    assert_eq!(grads[1], plus.sub(&minus));

    // ------------------------------------------------------------------
    // The most probable witness: which concrete world explains a match?
    // ------------------------------------------------------------------
    let witness = sensitivity::most_probable_witness(&incident, &h)
        .expect("circuit route applies")
        .expect("the pattern is satisfiable");
    let (wp, world) = witness;
    println!(
        "\nmost probable witness world (probability {} ≈ {:.4}):",
        wp,
        wp.to_f64()
    );
    for (e, present) in world.iter().enumerate() {
        println!(
            "  {:<9} {}",
            names[e],
            if *present { "present" } else { "absent" }
        );
    }

    // ------------------------------------------------------------------
    // Same analysis on a DWT fact base (Prop 4.10 cell, OBDD-backed).
    // ------------------------------------------------------------------
    let (mgr, emp) = (Label(0), Label(1));
    // An org chart: manages-edges with employment confirmations below.
    let org = Graph::downward_tree(&[
        None,
        Some((0, mgr)),
        Some((0, mgr)),
        Some((1, emp)),
        Some((1, mgr)),
        Some((2, emp)),
        Some((4, emp)),
    ]);
    let h2 = ProbGraph::new(
        org,
        vec![
            Rational::from_ratio(4, 5),
            Rational::from_ratio(3, 4),
            Rational::from_ratio(1, 2),
            Rational::from_ratio(2, 3),
            Rational::from_ratio(9, 10),
            Rational::from_ratio(1, 4),
        ],
    );
    let chain = Graph::one_way_path(&[mgr, mgr, emp]); // manages→manages→employs
    let (grads2, route2) =
        sensitivity::influences::<Rational>(&chain, &h2).expect("DWT circuit route");
    println!("\norg-chart query (route {route2:?}): top influences");
    for (e, inf) in sensitivity::rank_edges(grads2).into_iter().take(3) {
        let edge = h2.graph().edge(e);
        println!(
            "  edge {} ({} -{}-> {}): {:.4}",
            e,
            edge.src,
            edge.label.name(),
            edge.dst,
            inf.to_f64()
        );
    }
}
