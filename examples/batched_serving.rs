//! Batched serving: answering a repeating query stream over one
//! probabilistic instance with `solve_many` and the `EvalCache`.
//!
//! The scenario is the ROADMAP's serving story: a long-lived process
//! holds a probabilistic graph (a labeled two-way path, say a pipeline of
//! uncertain sensor links) and answers homomorphism-probability queries
//! from many clients. Queries repeat heavily — most traffic is a handful
//! of hot patterns — so the server wins three ways:
//!
//! 1. instance preprocessing runs once per batch, not once per query;
//! 2. structurally identical queries in a batch intern to a single solve;
//! 3. across batches, the `EvalCache` serves hot queries without touching
//!    the solver at all — until the instance itself changes, which flips
//!    its fingerprint and invalidates every stale answer automatically.
//!
//! Run with: `cargo run --release --example batched_serving`

use phom::prelude::*;
use phom_core::{solve_many_stats, EvalCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x5E21);

    // The served instance: a 2WP with 400 uncertain labeled edges.
    let h = phom::graph::generate::with_probabilities(
        phom::graph::generate::two_way_path(400, 2, &mut rng),
        phom::graph::generate::ProbProfile::default(),
        &mut rng,
    );

    // The query catalogue: a few hot patterns every client asks for.
    let catalogue: Vec<Graph> = (1..=4)
        .map(|m| {
            phom::graph::generate::planted_path_query(h.graph(), m, &mut rng)
                .unwrap_or_else(|| phom::graph::generate::one_way_path(m, 2, &mut rng))
        })
        .collect();

    // A simulated traffic trace: 5 ticks × 32 requests, Zipf-ish skew
    // toward the first catalogue entries.
    let mut cache = EvalCache::new();
    let opts = SolverOptions::default();
    for tick in 0..5 {
        let requests: Vec<Graph> = (0..32)
            .map(|_| {
                let skew: usize = rng.gen_range(0..10);
                let idx = match skew {
                    0..=4 => 0,
                    5..=7 => 1,
                    8 => 2,
                    _ => 3,
                };
                catalogue[idx].clone()
            })
            .collect();
        let t0 = std::time::Instant::now();
        let (answers, stats) = solve_many_stats(&requests, &h, opts, Some(&mut cache));
        let elapsed = t0.elapsed();
        let ok = answers.iter().filter(|a| a.is_ok()).count();
        println!(
            "tick {tick}: {} requests ({} unique) in {elapsed:?} — {} cache hits, \
             {} via shared arena ({} gates), {} general; {ok} answered",
            stats.queries,
            stats.unique_queries,
            stats.cache_hits,
            stats.circuit_batched,
            stats.shared_gates,
            stats.general_solved,
        );
    }
    let s = cache.stats();
    println!(
        "cache after warm traffic: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        s.entries,
        s.hits,
        s.misses,
        100.0 * s.hits as f64 / (s.hits + s.misses) as f64
    );

    // An operator fixes one sensor: its link becomes certain. The
    // fingerprint moves, so the next batch re-solves and re-caches —
    // nothing stale can ever be served.
    let mut probs = h.probs().to_vec();
    probs[0] = Rational::one();
    let h2 = ProbGraph::new(h.graph().clone(), probs);
    let requests: Vec<Graph> = (0..8).map(|i| catalogue[i % 4].clone()).collect();
    let (_, stats) = solve_many_stats(&requests, &h2, opts, Some(&mut cache));
    println!(
        "after instance mutation: {} cache hits (expected 0), {} re-solved",
        stats.cache_hits,
        stats.circuit_batched + stats.general_solved,
    );

    // The probabilities themselves, for the record.
    let (answers, _) = solve_many_stats(&catalogue, &h2, opts, Some(&mut cache));
    for (i, a) in answers.iter().enumerate() {
        match a {
            Ok(sol) => println!(
                "catalogue[{i}]: Pr = {:.6}  (route {:?})",
                sol.probability.to_f64(),
                sol.route
            ),
            Err(hard) => println!("catalogue[{i}]: #P-hard ({})", hard.prop),
        }
    }
}
