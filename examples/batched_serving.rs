//! Batched serving: answering a repeating query stream over one
//! probabilistic instance with a long-lived `Engine`.
//!
//! The scenario is the ROADMAP's serving story: a long-lived process
//! holds a probabilistic graph (a labeled two-way path, say a pipeline of
//! uncertain sensor links) and answers homomorphism-probability requests
//! from many clients. Queries repeat heavily — most traffic is a handful
//! of hot patterns — so the engine wins four ways:
//!
//! 1. instance preprocessing (classification, labels, component split)
//!    runs once per *engine lifetime*, not once per query or per batch;
//! 2. structurally identical queries in a batch intern to a single solve;
//! 3. unique uncached queries are sharded across the engine's worker
//!    threads, each shard answering its circuit-compilable plans with one
//!    multi-root pass over its own lineage arena — results bit-identical
//!    to the sequential path;
//! 4. across batches, the engine's **bounded LRU cache** serves hot
//!    queries without touching the solver at all — until the instance
//!    itself changes, which flips its fingerprint and invalidates every
//!    stale answer automatically.
//!
//! Run with: `cargo run --release --example batched_serving`

use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x5E21);

    // The served instance: a 2WP with 400 uncertain labeled edges.
    let h = phom::graph::generate::with_probabilities(
        phom::graph::generate::two_way_path(400, 2, &mut rng),
        phom::graph::generate::ProbProfile::default(),
        &mut rng,
    );

    // The query catalogue: a few hot patterns every client asks for.
    let catalogue: Vec<Graph> = (1..=4)
        .map(|m| {
            phom::graph::generate::planted_path_query(h.graph(), m, &mut rng)
                .unwrap_or_else(|| phom::graph::generate::one_way_path(m, 2, &mut rng))
        })
        .collect();

    // The long-lived engine: two shards, a bounded answer cache.
    let engine = Engine::builder()
        .threads(2)
        .cache_capacity(1024)
        .build(h.clone());

    // A simulated traffic trace: 5 ticks × 32 requests, Zipf-ish skew
    // toward the first catalogue entries.
    for tick in 0..5 {
        let requests: Vec<Request> = (0..32)
            .map(|_| {
                let skew: usize = rng.gen_range(0..10);
                let idx = match skew {
                    0..=4 => 0,
                    5..=7 => 1,
                    8 => 2,
                    _ => 3,
                };
                Request::probability(catalogue[idx].clone())
            })
            .collect();
        let t0 = std::time::Instant::now();
        let (answers, stats) = engine.submit_stats(&requests);
        let elapsed = t0.elapsed();
        let ok = answers.iter().filter(|a| a.is_ok()).count();
        println!(
            "tick {tick}: {} requests ({} unique) in {elapsed:?} — {} cache hits, \
             {} via {} shard(s) ({} gates), {} general; {ok} answered",
            stats.queries,
            stats.unique_queries,
            stats.cache_hits,
            stats.circuit_batched,
            stats.shards,
            stats.shared_gates,
            stats.general_solved,
        );
    }
    let s = engine.cache_stats();
    println!(
        "cache after warm traffic: {} entries, {} hits / {} misses / {} evictions \
         ({:.0}% hit rate)",
        s.entries,
        s.hits,
        s.misses,
        s.evictions,
        100.0 * s.hits as f64 / (s.hits + s.misses) as f64
    );

    // An operator fixes one sensor: its link becomes certain. A new graph
    // version means a new engine — its fingerprint moves, so nothing the
    // old version cached can ever be served for the new one (in a
    // `Fleet`, both versions would coexist behind one shared cache; see
    // examples/fleet_serving.rs).
    let mut probs = h.probs().to_vec();
    probs[0] = Rational::one();
    let h2 = ProbGraph::new(h.graph().clone(), probs);
    let engine2 = Engine::builder().threads(2).build(h2);
    assert_ne!(engine.fingerprint(), engine2.fingerprint());
    let requests: Vec<Request> = (0..8)
        .map(|i| Request::probability(catalogue[i % 4].clone()))
        .collect();
    let (_, stats) = engine2.submit_stats(&requests);
    println!(
        "after instance mutation: {} cache hits (expected 0), {} re-solved",
        stats.cache_hits,
        stats.circuit_batched + stats.general_solved,
    );

    // The probabilities themselves, for the record.
    let answers = engine2.submit(
        &catalogue
            .iter()
            .map(|q| Request::probability(q.clone()))
            .collect::<Vec<_>>(),
    );
    for (i, a) in answers.iter().enumerate() {
        match a {
            Ok(Response::Probability(sol)) => println!(
                "catalogue[{i}]: Pr = {:.6}  (route {:?})",
                sol.probability.to_f64(),
                sol.route
            ),
            Ok(other) => unreachable!("probability request answered as {other:?}"),
            Err(e) => println!("catalogue[{i}]: {e}"),
        }
    }
}
