//! Unions of conjunctive queries: evaluating several patterns at once.
//!
//! Scenario: a monitoring rule fires when *any* of several suspicious
//! patterns appears in a probabilistic event graph. The rule is a UCQ
//! `G₁ ∨ G₂ ∨ …`, and `phom::core::ucq` evaluates it exactly — with
//! polynomial combined complexity on the cells where the paper's
//! tractability extends to unions (see the module docs of `ucq`).
//!
//! Run with: `cargo run --example ucq_patterns`

use phom::core::ucq::{self, Ucq};
use phom::graph::generate::{self, ProbProfile};
use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x0C0);

    // ------------------------------------------------------------------
    // 1. Unlabeled patterns on an arbitrary (cyclic!) event graph:
    //    the collapse route. "Escalation chains" of depth 2, or a
    //    branching fan-out of depth 3 — as ⊔DWT queries both collapse,
    //    and the union is just the easier of the two.
    // ------------------------------------------------------------------
    let chain2 = Graph::directed_path(2);
    let mut b = GraphBuilder::with_vertices(5); // a depth-3 fan-out tree
    b.edge(0, 1, Label::UNLABELED);
    b.edge(1, 2, Label::UNLABELED);
    b.edge(1, 3, Label::UNLABELED);
    b.edge(2, 4, Label::UNLABELED);
    let fanout = b.build();
    let rule = Ucq::new(vec![chain2, fanout]);

    let events = generate::arbitrary(9, 0.25, 1, &mut rng);
    let h = generate::with_probabilities(events, ProbProfile::half(), &mut rng);
    println!(
        "event graph: {} vertices, {} edges (general shape, may have cycles)",
        h.graph().n_vertices(),
        h.graph().n_edges()
    );
    let (p, route) = ucq::probability::<Rational>(&rule, &h).expect("collapse route");
    println!("Pr(rule fires) = {} ≈ {:.4}   via {route:?}", p, p.to_f64());
    if h.graph().n_edges() <= 16 {
        assert_eq!(p, ucq::bruteforce_probability(&rule, &h), "exactness check");
        println!("  (verified against world enumeration)");
    }

    // ------------------------------------------------------------------
    // 2. Labeled patterns on a probabilistic log (a 2WP instance):
    //    union of interval lineages, still β-acyclic.
    // ------------------------------------------------------------------
    let (req, err, retry) = (Label(0), Label(1), Label(2));
    let log = generate::two_way_path(14, 3, &mut rng);
    let h2 = generate::with_probabilities(log, ProbProfile::half(), &mut rng);
    let patterns = Ucq::new(vec![
        Graph::one_way_path(&[req, err]),        // request then error
        Graph::one_way_path(&[err, retry, err]), // error, retry, error again
        Graph::one_way_path(&[retry, retry]),    // a retry storm
    ]);
    match ucq::probability::<Rational>(&patterns, &h2) {
        Some((p2, route2)) => {
            println!(
                "\nPr(any log pattern) = {} ≈ {:.4}   via {route2:?}",
                p2,
                p2.to_f64()
            );
            assert_eq!(p2, ucq::bruteforce_probability(&patterns, &h2));
            println!("  (verified against world enumeration)");
        }
        None => println!("\n(no tractable route — not expected on a 2WP instance)"),
    }

    // ------------------------------------------------------------------
    // 3. Unions beat sequential evaluation: Pr(G₁ ∨ G₂) is *not*
    //    1 − (1−p₁)(1−p₂) — the disjuncts share edges, so independence
    //    fails. The UCQ solver accounts for the correlation exactly.
    // ------------------------------------------------------------------
    let g1 = Graph::one_way_path(&[req, err]);
    let g2 = Graph::one_way_path(&[err, retry]);
    let (p_union, _) =
        ucq::probability::<Rational>(&Ucq::new(vec![g1.clone(), g2.clone()]), &h2).unwrap();
    let (p1, _) = ucq::probability::<Rational>(&Ucq::singleton(g1), &h2).unwrap();
    let (p2, _) = ucq::probability::<Rational>(&Ucq::singleton(g2), &h2).unwrap();
    let naive = p1.one_minus().mul(&p2.one_minus()).one_minus();
    println!(
        "\ncorrelation matters: Pr(G₁∨G₂) = {:.4}, naive independence gives {:.4}",
        p_union.to_f64(),
        naive.to_f64()
    );
}
