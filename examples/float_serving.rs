//! Float-tier serving with exact escalation: the `Precision` knob end
//! to end on an ill-conditioned circuit.
//!
//! The instance is a long directed R-path whose edge probabilities are
//! all 1/3 — **not representable** in binary floating point, so every
//! leaf of the lineage circuit starts life with half-an-ulp of rounding
//! error, and the OR-of-ANDs window circuit for the query R^6 grinds
//! that error through hundreds of multiplications and complements. The
//! float tier tracks the accumulated bound alongside the value:
//!
//! * `Precision::Float { max_rel_err }` always serves the f64 answer
//!   with its certified bound — honest even when the bound misses the
//!   tolerance;
//! * `Precision::Auto { max_rel_err }` serves the float answer when the
//!   bound fits and otherwise **escalates to the exact rational pass**,
//!   returning an answer bit-for-bit identical to `Precision::Exact`;
//! * `Precision::Exact` (the default) never touches the float tier.
//!
//! Run with: `cargo run --release --example float_serving`

use phom::prelude::*;

fn main() {
    // A 48-edge directed path alternating R and S labels, every edge
    // present with Pr 1/3 (labeled, so the Prop 4.10 lineage circuit —
    // not the unlabeled level-collapse DP — answers the query).
    let n = 48;
    let (r, s) = (Label(0), Label(1));
    let mut b = GraphBuilder::with_vertices(n + 1);
    for v in 0..n {
        b.edge(v, v + 1, if v % 2 == 0 { r } else { s });
    }
    let h = ProbGraph::new(b.build(), vec![Rational::from_ratio(1, 3); n]);
    let engine = Engine::new(h);

    // The query: six consecutive R·S·R·S·R·S edges anywhere along the
    // path — an OR over every even window of an AND of six 1/3 leaves.
    let q = Graph::one_way_path(&[r, s, r, s, r, s]);

    // Ground truth from the exact tier.
    let exact = engine
        .solve(&q)
        .expect("labeled 1WP on a DWT instance is tractable");
    println!(
        "exact:        Pr = {} ≈ {:.12}  (route {:?})",
        exact.probability,
        exact.probability.to_f64(),
        exact.route
    );

    // The float tier: same circuit, f64 arithmetic, certified bound.
    let float_req =
        Request::probability(q.clone()).precision(Precision::Float { max_rel_err: 1e-15 });
    let answers = engine.submit(&[float_req]);
    let Ok(Response::Approximate {
        value,
        rel_err_bound,
        route,
    }) = &answers[0]
    else {
        panic!("float requests answer approximately: {:?}", answers[0]);
    };
    println!("float:        Pr ≈ {value:.12}  rel err ≤ {rel_err_bound:.3e}  (route {route:?})");
    // The certified bound really contains the exact answer…
    let true_f64 = exact.probability.to_f64();
    assert!((value - true_f64).abs() <= rel_err_bound * value.abs() + f64::EPSILON);
    // …and on this circuit it cannot certify 1e-15: the 1/3 leaves and
    // the deep window circuit are exactly the ill-conditioned case.
    assert!(
        rel_err_bound > &1e-15,
        "expected an ill-conditioned bound, got {rel_err_bound:.3e}"
    );

    // Auto with the same impossible tolerance: the engine notices the
    // bound overshoot and escalates to the exact rational pass.
    let strict = Request::probability(q.clone()).precision(Precision::Auto { max_rel_err: 1e-15 });
    let (answers, stats) = engine.submit_stats(&[strict]);
    let Ok(Response::Probability(sol)) = &answers[0] else {
        panic!("Auto above tolerance escalates: {:?}", answers[0]);
    };
    assert_eq!(
        sol.probability, exact.probability,
        "escalated answers are bit-for-bit exact"
    );
    println!(
        "auto @ 1e-15: Pr = {} — escalated ({} escalation, {} float-served)",
        sol.probability, stats.escalations, stats.float_evaluated
    );

    // Auto with an achievable tolerance: the float answer is certified
    // well inside 1e-9, so the exact pass never runs.
    let relaxed = Request::probability(q).precision(Precision::Auto { max_rel_err: 1e-9 });
    let (answers, stats) = engine.submit_stats(&[relaxed]);
    let Ok(Response::Approximate {
        value,
        rel_err_bound,
        ..
    }) = &answers[0]
    else {
        panic!("Auto within tolerance serves float: {:?}", answers[0]);
    };
    assert!(rel_err_bound <= &1e-9);
    println!(
        "auto @ 1e-9:  Pr ≈ {value:.12}  rel err ≤ {rel_err_bound:.3e} — served float \
         ({} escalations, {} float-served)",
        stats.escalations, stats.float_evaluated
    );
}
