//! Counting bipartite edge covers through the Prop 3.3 reduction — the
//! hardness machinery run forwards.
//!
//! `#Bipartite-Edge-Cover` is #P-complete (Theorem 3.2); Prop 3.3 embeds it
//! into `PHomL(⊔1WP, 1WP)` via the identity `#EC = Pr(G ⇝ H) · 2^m`. This
//! example builds the reduction for the paper's Figure 5 graph and for
//! random graphs, recovers the counts through the (exponential) `PHom`
//! solver, and cross-checks three independent counters.
//!
//! Run with: `cargo run --example edge_cover_counting`

use phom::reductions::edge_cover::Bipartite;
use phom::reductions::{prop33, prop34};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // The paper's Figure 5 example: X = {x₁,x₂}, Y = {y₁,y₂,y₃}, 4 edges.
    let gamma = Bipartite::figure_5_graph();
    println!("Figure 5 bipartite graph: {gamma:?}");

    let direct = gamma.count_edge_covers_brute_force();
    let inclusion_exclusion = gamma.count_edge_covers_inclusion_exclusion();
    println!("  edge covers, subset enumeration:     {direct}");
    println!("  edge covers, inclusion–exclusion:    {inclusion_exclusion}");

    let red = prop33::reduce(&gamma);
    println!(
        "  Prop 3.3 image: ⊔1WP query ({} comps, {} edges) on a 1WP of {} edges",
        phom::graph::classify(&red.query).components.len(),
        red.query.n_edges(),
        red.instance.graph().n_edges()
    );
    let via_phom = red.count_via_brute_force();
    println!("  edge covers, via PHomL(⊔1WP, 1WP):   {via_phom}");
    assert_eq!(via_phom, direct);

    let red34 = prop34::reduce(&gamma);
    println!(
        "  Prop 3.4 image (unlabeled): ⊔2WP query ({} edges) on a 2WP of {} edges",
        red34.query.n_edges(),
        red34.instance.graph().n_edges()
    );
    let via_phom_unlabeled = red34.count_via_brute_force();
    println!("  edge covers, via PHom(⊔2WP, 2WP):    {via_phom_unlabeled}");
    assert_eq!(via_phom_unlabeled, direct);

    // Random graphs: all four counters agree; the cost of the PHom route
    // doubles with every extra edge — the hardness in action.
    println!("\nRandom bipartite graphs (m = edges; times for the PHom route):");
    let mut rng = SmallRng::seed_from_u64(5);
    for m_extra in [0usize, 2, 4, 6] {
        let gamma = Bipartite::random_covered(3, 3, m_extra, &mut rng);
        let red = prop33::reduce(&gamma);
        let t0 = std::time::Instant::now();
        let via = red.count_via_brute_force();
        let dt = t0.elapsed();
        let expect = gamma.count_edge_covers_brute_force();
        assert_eq!(via, expect);
        println!(
            "  m = {:2}: #EC = {:6}  ({} worlds enumerated in {dt:?})",
            gamma.m(),
            via,
            1u64 << gamma.m(),
        );
    }
}
