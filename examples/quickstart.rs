//! Quickstart: the paper's running example (Figures 1 and Example 2.2) and
//! a first taste of the solver's routes.
//!
//! Run with: `cargo run --example quickstart`

use phom::graph::fixtures;
use phom::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's running example (Figure 1 / Example 2.2).
    // ------------------------------------------------------------------
    let h = fixtures::figure_1();
    let g = fixtures::example_2_2_query();
    println!("Instance H (Figure 1): {:?}", h.graph());
    println!("Query    G (Ex. 2.2):  {g:?}");

    // H is a general connected graph, so this input sits in a #P-hard cell
    // (Prop 5.1); the engine says so with a typed error...
    let engine = Engine::new(h.clone());
    match engine.solve(&g) {
        Err(SolveError::Hard(hard)) => {
            println!("dispatcher: #P-hard cell — {} [{}]", hard.cell, hard.prop)
        }
        other => unreachable!("{other:?}"),
    }

    // ...but the instance is tiny, so we can fall back to brute force and
    // recover the paper's exact value 0.574 = 287/500. The fallback rides
    // on the request.
    let answers =
        engine
            .submit(&[Request::probability(g.clone())
                .fallback(Fallback::BruteForce { max_uncertain: 20 })]);
    let Ok(Response::Probability(sol)) = answers.into_iter().next().unwrap() else {
        unreachable!()
    };
    println!(
        "Pr(G ⇝ H) = {} ≈ {:.4}   (route: {:?})",
        sol.probability,
        sol.probability.to_f64(),
        sol.route
    );
    assert_eq!(sol.probability, fixtures::example_2_2_answer());

    // ------------------------------------------------------------------
    // 2. A tractable cell: a labeled path query on a downward tree
    //    (Prop 4.10 — polynomial time, exact rationals).
    // ------------------------------------------------------------------
    let (r, s) = (Label(0), Label(1));
    let tree = Graph::downward_tree(&[
        None,
        Some((0, r)),
        Some((0, s)),
        Some((1, s)),
        Some((1, s)),
        Some((2, r)),
    ]);
    let h = ProbGraph::new(
        tree,
        vec![
            Rational::from_ratio(9, 10),
            Rational::from_ratio(1, 2),
            Rational::from_ratio(3, 4),
            Rational::from_ratio(1, 3),
            Rational::from_ratio(2, 3),
        ],
    );
    let q = Graph::one_way_path(&[r, s]);
    let sol = Engine::new(h).solve(&q).unwrap();
    println!(
        "\nPath query R·S on a probabilistic tree: Pr = {} ≈ {:.4} (route: {:?})",
        sol.probability,
        sol.probability.to_f64(),
        sol.route
    );
    assert_eq!(sol.route, Route::Prop410);

    // ------------------------------------------------------------------
    // 3. An unlabeled branching query on a polytree (Prop 5.5 collapse +
    //    Prop 5.4 tree automaton).
    // ------------------------------------------------------------------
    let u = Label::UNLABELED;
    // The query: a small tree of height 2 — equivalent to →→.
    let query_tree = Graph::downward_tree(&[None, Some((0, u)), Some((0, u)), Some((1, u))]);
    // The instance: a genuine polytree — it branches (so it is not a
    // two-way path) and has a vertex of in-degree 2 (so it is not a
    // downward tree).
    let mut b = GraphBuilder::with_vertices(6);
    b.edge(0, 1, u);
    b.edge(2, 1, u);
    b.edge(2, 3, u);
    b.edge(3, 4, u);
    b.edge(3, 5, u);
    let h = ProbGraph::new(
        b.build(),
        vec![
            Rational::from_ratio(1, 2),
            Rational::from_ratio(1, 2),
            Rational::from_ratio(3, 4),
            Rational::from_ratio(3, 4),
            Rational::from_ratio(1, 4),
        ],
    );
    let sol = Engine::new(h).solve(&query_tree).unwrap();
    println!(
        "Branching unlabeled query on a polytree: Pr = {} ≈ {:.4} (route: {:?})",
        sol.probability,
        sol.probability.to_f64(),
        sol.route
    );
    assert!(matches!(sol.route, Route::Prop54 { via_collapse: true }));

    println!("\nAll quickstart checks passed.");
}
