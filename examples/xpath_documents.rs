//! The descendant-axis extension (paper §6 future work): XPath-style
//! patterns over probabilistic document trees.
//!
//! Same setting as `knowledge_extraction`, but queries may skip levels:
//! `Section//Address` asks for an Address anywhere below a Section, which
//! plain 1WP queries (Prop 4.10) cannot express.
//!
//! Run with: `cargo run --example xpath_documents`

use phom::core::xpath::{probability, PathPattern, Step};
use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SECTION: Label = Label(0);
const SUBSECTION: Label = Label(1);
const PARTY: Label = Label(2);
const ADDRESS: Label = Label(3);

/// A document with nested subsections, so depth actually varies.
fn build_document(sections: usize, rng: &mut SmallRng) -> ProbGraph {
    let mut b = GraphBuilder::with_vertices(1);
    let mut probs: Vec<Rational> = Vec::new();
    let mut next = 1usize;
    for _ in 0..sections {
        let sec = next;
        next += 1;
        b.edge(0, sec, SECTION);
        probs.push(Rational::from_ratio(19, 20));
        // A random chain of subsections below each section.
        let mut cur = sec;
        for _ in 0..rng.gen_range(0..3) {
            let sub = next;
            next += 1;
            b.edge(cur, sub, SUBSECTION);
            probs.push(Rational::from_ratio(rng.gen_range(10..20), 20));
            cur = sub;
        }
        // A party with an address at the deepest level.
        if rng.gen_bool(0.8) {
            let party = next;
            next += 1;
            b.edge(cur, party, PARTY);
            probs.push(Rational::from_ratio(rng.gen_range(10..20), 20));
            if rng.gen_bool(0.7) {
                let addr = next;
                next += 1;
                b.edge(party, addr, ADDRESS);
                probs.push(Rational::from_ratio(rng.gen_range(5..20), 20));
            }
        }
    }
    ProbGraph::new(b.build(), probs)
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(66);
    let doc = build_document(5, &mut rng);
    println!(
        "Document tree: {} nodes, {} uncertain edges",
        doc.graph().n_vertices(),
        doc.uncertain_edges().len()
    );

    let patterns: Vec<(&str, PathPattern)> = vec![
        (
            "Section/Party (direct child only)",
            PathPattern::children(&[SECTION, PARTY]),
        ),
        (
            "Section//Party (any depth)",
            PathPattern::new(vec![Step::Child(SECTION), Step::Descendant(PARTY)]),
        ),
        (
            "Section//Address",
            PathPattern::new(vec![Step::Child(SECTION), Step::Descendant(ADDRESS)]),
        ),
        (
            "//Party/Address",
            PathPattern::new(vec![Step::Descendant(PARTY), Step::Child(ADDRESS)]),
        ),
    ];

    for (name, pattern) in &patterns {
        let p: Rational = probability(pattern, &doc).expect("document is a DWT");
        // Cross-check against world enumeration (instance is small).
        let mut expect = Rational::zero();
        for (mask, w) in doc.worlds() {
            if pattern.matches_world(doc.graph(), &mask) {
                expect = expect.add(&w);
            }
        }
        assert_eq!(p, expect, "{name}");
        println!("  Pr[{name}] = {} ≈ {:.4}", p, p.to_f64());
    }

    // The descendant axis strictly dominates the child axis.
    let child: Rational = probability(&PathPattern::children(&[SECTION, PARTY]), &doc).unwrap();
    let desc: Rational = probability(
        &PathPattern::new(vec![Step::Child(SECTION), Step::Descendant(PARTY)]),
        &doc,
    )
    .unwrap();
    assert!(desc >= child);
    println!("\nDescendant-axis probability dominates the child-axis one, as it must.");
}
