//! The fourth serving layer, end to end: a `phom_fleet::Router` front
//! door over three member runtimes, one client address for the whole
//! fleet — rendezvous routing on the instance fingerprint, lazy
//! broadcast-on-demand registration, a live `move` handoff with
//! tickets in flight, and the fleet-wide stats rollup.
//!
//! Real deployments spawn the members as `phom serve --listen`
//! processes and the router as `phom router --listen ADDR --members
//! FILE`; this example keeps everything in one process so it runs
//! anywhere. The protocol on the wire is identical either way.
//!
//! Run with: `cargo run --release --example fleet_router`

use phom::net::{wire, Client, Json, Server, WireRequest};
use phom::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xF1EE7);

    // Three members: each a runtime behind a phom_net server on its
    // own loopback port, exactly what `phom serve --listen` spawns.
    let mut members = Vec::new();
    let mut servers = Vec::new();
    for (name, weight) in [("a", 1.0), ("b", 1.0), ("c", 2.0)] {
        let runtime = Arc::new(
            Runtime::builder()
                .max_batch(16)
                .max_wait(Duration::from_millis(1))
                .workers(2)
                .build(),
        );
        let server = Server::bind("127.0.0.1:0", runtime).expect("bind member");
        members.push(MemberSpec {
            name: name.into(),
            addr: server.local_addr().to_string(),
            weight,
        });
        servers.push(server);
    }

    // The front door: one address, the whole fleet behind it. Weighted
    // rendezvous hashing on the instance fingerprint decides which
    // member owns which instance; weight-2 `c` owns about twice the
    // share of `a` or `b`.
    let router = Router::bind("127.0.0.1:0", members).expect("bind router");
    println!("fleet front door on {}", router.local_addr());

    // Clients talk the standard wire protocol to the router — nothing
    // fleet-specific on the client side.
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let instances: Vec<ProbGraph> = (0..4)
        .map(|_| {
            phom::graph::generate::with_probabilities(
                phom::graph::generate::two_way_path(24, 2, &mut rng),
                phom::graph::generate::ProbProfile::default(),
                &mut rng,
            )
        })
        .collect();
    // Registration is broadcast-on-demand: the router fingerprints the
    // instance, caches its canonical encoding, assigns an owner — and
    // only forwards it to that member when traffic actually arrives.
    let versions: Vec<u64> = instances
        .iter()
        .map(|h| client.register(h).expect("register"))
        .collect();

    let mut tickets = Vec::new();
    for round in 0..8 {
        for (j, h) in instances.iter().enumerate() {
            let query = phom::graph::generate::planted_path_query(h.graph(), 2, &mut rng)
                .unwrap_or_else(|| Graph::directed_path(1));
            let request = if round % 3 == 0 {
                WireRequest::probability(query).with_provenance()
            } else {
                WireRequest::probability(query)
            };
            tickets.push(client.submit(versions[j], &request).expect("submit"));
        }
    }

    // A live handoff while those tickets are in flight: move the first
    // instance to whichever member does not currently own it. The
    // router warms the target (a hinted register — the member's cached
    // fast path), flips routing atomically, then drains and
    // deregisters the old copy in the background. Pre-flip tickets
    // keep resolving through the old member.
    let placements = client
        .call_raw(Json::obj(vec![("op", Json::str("fleet"))]))
        .expect("fleet op");
    let hex = wire::encode_version(versions[0]).to_string();
    let owner = placements
        .get("ok")
        .and_then(|ok| ok.get("placements"))
        .and_then(Json::as_arr)
        .and_then(|ps| {
            ps.iter()
                .find(|p| p.get("version").map(|v| v.to_string()).as_deref() == Some(&hex))
                .and_then(|p| p.get("member"))
                .and_then(Json::as_str)
                .map(String::from)
        })
        .expect("placement");
    let target = ["a", "b", "c"]
        .into_iter()
        .find(|name| *name != owner)
        .expect("three members");
    let moved = client
        .call_raw(Json::obj(vec![
            ("op", Json::str("move")),
            ("version", wire::encode_version(versions[0])),
            ("to", Json::str(target)),
        ]))
        .expect("move op");
    println!(
        "handoff: {} moved {owner} → {target} ({})",
        hex,
        moved.get("ok").map(|ok| ok.to_string()).unwrap_or_default()
    );

    let mut answered = 0u64;
    for ticket in tickets {
        client.wait(ticket).expect("answer");
        answered += 1;
    }
    println!("{answered} answers through the front door");

    // Fleet-wide observability: one stats frame aggregates every
    // member's runtime snapshot plus a rollup and the router's own
    // counters.
    let stats = client.stats().expect("fleet stats");
    if let Some(rollup) = stats.get("rollup") {
        println!(
            "rollup: {} members up, {} admitted, {} completed, {} ticks",
            rollup
                .get("members_available")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            rollup.get("admitted").and_then(Json::as_u64).unwrap_or(0),
            rollup.get("completed").and_then(Json::as_u64).unwrap_or(0),
            rollup.get("ticks").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    if let Some(entries) = stats.get("members").and_then(Json::as_arr) {
        for entry in entries {
            println!(
                "member {}: {} completed",
                entry.get("name").and_then(Json::as_str).unwrap_or("?"),
                entry
                    .get("stats")
                    .and_then(|s| s.get("completed"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            );
        }
    }

    let router_stats = router.shutdown(Duration::from_secs(2));
    println!(
        "router drained: {} submitted, {} delivered, {} handoffs, {} lazy registers, \
         {} drained deregisters, {} tickets open",
        router_stats.submitted,
        router_stats.delivered,
        router_stats.handoffs,
        router_stats.lazy_registers,
        router_stats.drained_deregisters,
        router_stats.open_tickets,
    );
    for server in servers {
        server.shutdown(Duration::from_secs(1));
    }
}
