//! Probabilistic knowledge extraction over document trees — the
//! "probabilistic XML" scenario the paper's conclusion singles out for
//! Prop 4.10: *"the instance is a labeled (downward) tree, while the query
//! is a path evaluated on that tree"*.
//!
//! An information-extraction pipeline parsed a corporate filing into a
//! section tree; every structural edge carries the extractor's confidence.
//! Analysts ask path queries ("a Contract section containing a Party
//! element containing an Address") and need exact probabilities, fast.
//!
//! Run with: `cargo run --example knowledge_extraction`

use phom::core::algo::path_on_dwt;
use phom::core::bruteforce;
use phom::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// The edge vocabulary of the extraction.
const SECTION: Label = Label(0);
const PARTY: Label = Label(1);
const ADDRESS: Label = Label(2);
const DATE: Label = Label(3);

/// Builds a synthetic filing: a root document with `sections` section
/// subtrees, each holding party/address/date elements with extraction
/// confidences.
fn build_filing(sections: usize, rng: &mut SmallRng) -> ProbGraph {
    let mut b = GraphBuilder::with_vertices(1);
    let mut probs: Vec<Rational> = Vec::new();
    let mut next = 1usize;
    let add = |b: &mut GraphBuilder,
               probs: &mut Vec<Rational>,
               parent: usize,
               label: Label,
               conf: Rational,
               next: &mut usize| {
        let v = *next;
        *next += 1;
        b.edge(parent, v, label);
        probs.push(conf);
        v
    };
    for _ in 0..sections {
        // Sections are parsed reliably; nested elements less so.
        let sec = add(
            &mut b,
            &mut probs,
            0,
            SECTION,
            Rational::from_ratio(19, 20),
            &mut next,
        );
        for _ in 0..rng.gen_range(1..4) {
            let party = add(
                &mut b,
                &mut probs,
                sec,
                PARTY,
                Rational::from_ratio(rng.gen_range(10..20), 20),
                &mut next,
            );
            if rng.gen_bool(0.8) {
                add(
                    &mut b,
                    &mut probs,
                    party,
                    ADDRESS,
                    Rational::from_ratio(rng.gen_range(5..20), 20),
                    &mut next,
                );
            }
            if rng.gen_bool(0.5) {
                add(
                    &mut b,
                    &mut probs,
                    party,
                    DATE,
                    Rational::from_ratio(rng.gen_range(5..20), 20),
                    &mut next,
                );
            }
        }
    }
    ProbGraph::new(b.build(), probs)
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(2017);

    // A small filing first, so brute force can confirm the exact answers.
    let small = build_filing(2, &mut rng);
    println!(
        "Small filing: {} elements, {} extracted edges ({} uncertain)",
        small.graph().n_vertices(),
        small.graph().n_edges(),
        small.uncertain_edges().len()
    );

    let queries = [
        ("Section/Party", Graph::one_way_path(&[SECTION, PARTY])),
        (
            "Section/Party/Address",
            Graph::one_way_path(&[SECTION, PARTY, ADDRESS]),
        ),
        (
            "Section/Party/Date",
            Graph::one_way_path(&[SECTION, PARTY, DATE]),
        ),
    ];
    let engine = Engine::new(small.clone());
    for (name, q) in &queries {
        let sol = engine.solve(q).unwrap();
        assert_eq!(sol.route, Route::Prop410);
        let exact = bruteforce::probability(q, &small);
        assert_eq!(sol.probability, exact, "Prop 4.10 must match brute force");
        println!(
            "  Pr[{name}] = {} ≈ {:.4}",
            sol.probability,
            sol.probability.to_f64()
        );
    }

    // Now a filing far beyond brute force (hundreds of uncertain edges):
    // the Prop 4.10 lineage algorithm and its direct-DP ablation agree and
    // both run in milliseconds.
    // (Kept modest so the exact-rational arithmetic stays fast even in
    // debug builds; hundreds of uncertain edges is already ~2^300 worlds.)
    let big = build_filing(120, &mut rng);
    println!(
        "\nLarge filing: {} elements, {} uncertain edges (≈2^{} possible worlds)",
        big.graph().n_vertices(),
        big.uncertain_edges().len(),
        big.uncertain_edges().len(),
    );
    let q = Graph::one_way_path(&[SECTION, PARTY, ADDRESS]);
    let t0 = std::time::Instant::now();
    let via_lineage: Rational = path_on_dwt::probability_lineage(&q, &big).unwrap();
    let t1 = t0.elapsed();
    let t0 = std::time::Instant::now();
    let via_dp: Rational = path_on_dwt::probability_dp(&q, &big).unwrap();
    let t2 = t0.elapsed();
    assert_eq!(via_lineage, via_dp);
    println!("  Pr[Section/Party/Address] ≈ {:.6}", via_lineage.to_f64());
    println!("  β-acyclic lineage: {t1:?}; direct DP: {t2:?} — identical exact answers");

    // The exact rational is fully materialized — print its size.
    println!(
        "  exact answer has a {}-digit numerator over a {}-digit denominator",
        via_lineage.numer().to_string().len(),
        via_lineage.denom().to_string().len()
    );
}
