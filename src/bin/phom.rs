//! The `phom` command-line tool. See `phom::cli` for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match phom::cli::run(&args, &phom::cli::read_fs) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
