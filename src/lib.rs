//! # phom — probabilistic graph homomorphism
//!
//! A complete implementation of *"Conjunctive Queries on Probabilistic
//! Graphs: Combined Complexity"* (Amarilli, Monet & Senellart, PODS 2017):
//! exact evaluation of conjunctive queries over tuple-independent
//! probabilistic graphs, with the paper's full combined-complexity
//! classification — every polynomial-time algorithm, every hardness
//! reduction, and the machinery they rest on (β-acyclic lineages, d-DNNF
//! circuits, tree automata, graded DAGs, the X-property).
//!
//! ## Quick start
//!
//! The serving surface is a long-lived [`Engine`] per probabilistic
//! instance: build it once, then solve — the classification, label set,
//! Lemma 3.7 split, and the answer cache are all paid once per instance
//! lifetime, not once per call.
//!
//! ```
//! use phom::prelude::*;
//!
//! // A probabilistic instance: a downward tree of R/S-labeled edges.
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//!
//! // The engine owns the instance-side state and a bounded answer cache.
//! let engine = Engine::builder().cache_capacity(1024).build(h);
//!
//! // The query: does an R-edge followed by an S-edge exist? The solver
//! // routes this to Prop 4.10 territory and answers exactly:
//! // 1/2 · 3/4 = 3/8.
//! let g = Graph::one_way_path(&[r, s]);
//! let sol = engine.solve(&g).unwrap();
//! assert_eq!(sol.probability, Rational::from_ratio(3, 8));
//!
//! // A repeat is served from the cache without touching the solver.
//! let again = engine.solve(&g).unwrap();
//! assert_eq!(again.probability, sol.probability);
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`num`] | arbitrary-precision naturals, exact rationals, and the algebra layer: the [`Semiring`](phom_num::Semiring) trait (Rational / `f64` / [`Natural`](phom_num::Natural) counting / `bool` / [`Dual`](phom_num::Dual) forward-mode derivatives / [`ErrF64`](phom_num::ErrF64) — f64 with a running certified error bound) refined by [`Weight`](phom_num::Weight); correctly-rounded `to_f64` conversions |
//! | [`graph`] | graphs, probabilistic graphs, classes, homomorphisms |
//! | [`lineage`] | the **unified provenance engine** ([`lineage::engine`]): one arena IR with interned gates and structural hashing, one semiring-generic bottom-up evaluator shared by positive DNFs, β-acyclicity (Thm 4.9), d-DNNF circuits, and OBDDs; [`FlatArena`](phom_lineage::FlatArena) — the cone-restricted flat-slab run representation behind the float tier |
//! | [`automata`] | the polytree encoding and path automata of Prop 5.4, compiling into engine arenas |
//! | [`core`] | the per-proposition algorithms and the Tables 1–3 dispatcher, behind the serving surface of [`core::engine`]: a long-lived [`Engine`] per instance (bounded LRU [`EvalCache`], sharded [`Engine::submit`], the [`Tick`](phom_core::Tick) seam for external pools), typed [`Request`]/[`Response`], and a [`Fleet`] registry serving many graph versions off one shared cache |
//! | [`serve`] | the **persistent serving runtime**: [`Runtime`] with micro-batching ticks over a worker pool spawned once, **adaptive tick sizing** ([`RuntimeBuilder::adaptive`]), bounded-queue backpressure ([`SolveError::Overloaded`]), [`Ticket`]s, graceful drain, [`RuntimeStats`] |
//! | [`net`] | the **network front end**: a TCP [`NetServer`] + [`NetClient`] speaking the length-prefixed JSON protocol of [`net::wire`] over a shared [`Runtime`] (`phom serve --listen ADDR`) |
//! | [`fleet`] | the **multi-process sharded fleet**: a front-door [`Router`] on one address fanning out to member `phom serve` processes — weighted rendezvous routing on the instance fingerprint, lazy broadcast-on-demand registration, the `move` re-register handoff, typed `member_unavailable` health, and fleet-wide stats rollup (`phom router --listen ADDR --members FILE`) |
//! | `obs` | **zero-dependency observability**: [`TraceId`](phom_serve::TraceId)s, per-stage [`Span`](phom_serve::Span)s in a lock-free overwrite-oldest [`SpanRing`](phom_serve::SpanRing), mergeable log-linear latency [`Histogram`](phom_serve::Histogram)s (p50/p90/p99 within a 12.5% bucket bound), and the [`PromText`](phom_serve::PromText) Prometheus text renderer — threaded through every serving layer (see "Observability" below) |
//! | [`reductions`] | executable #P-hardness reductions (Props 3.3/3.4/4.1/5.6) |
//!
//! ## Requests: one surface for every workload
//!
//! A [`Request`] names the workload; [`Engine::submit`] answers a whole
//! batch of them (interned, cached, and sharded across the engine's
//! worker threads) with one typed [`Response`] each:
//!
//! ```
//! use phom::prelude::*;
//!
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)],
//! );
//! let engine = Engine::new(h);
//!
//! let rs = Graph::one_way_path(&[r, s]);
//! let batch = [
//!     // Pr(G ⇝ H), with a provenance circuit attached.
//!     Request::probability(rs.clone()).with_provenance(),
//!     // Model counting: in how many worlds does G match? (all-½ edges)
//!     Request::probability(rs.clone()).counting(),
//!     // Sensitivity: every edge influence ∂Pr/∂π(e).
//!     Request::probability(rs.clone()).sensitivity(),
//!     // A union of conjunctive queries.
//!     Request::ucq(Ucq::new(vec![rs, Graph::one_way_path(&[r])])),
//! ];
//! let answers = engine.submit(&batch);
//!
//! let Ok(Response::Probability(sol)) = &answers[0] else { panic!() };
//! let prov = sol.provenance.as_ref().expect("Prop 4.10 compiles a circuit");
//! assert_eq!(prov.probability::<Rational>(engine.instance().probs()), sol.probability);
//!
//! let Ok(Response::Count { worlds, .. }) = &answers[1] else { panic!() };
//! assert_eq!(worlds.to_u64(), Some(1)); // only the both-edges world
//!
//! let Ok(Response::Sensitivity { influences, .. }) = &answers[2] else { panic!() };
//! assert_eq!(influences.len(), 2);
//!
//! let Ok(Response::Ucq { probability, .. }) = &answers[3] else { panic!() };
//! assert_eq!(probability, &Rational::from_ratio(1, 2)); // the R-edge alone
//! ```
//!
//! Hardness is a typed error — [`SolveError::Hard`] — rather than the
//! historical bare `Err(Hardness)`; configure a
//! [`Fallback`](phom_core::Fallback) per request (or per engine) to turn
//! hard cells into brute-force or Monte-Carlo answers.
//!
//! ## Evaluation modes: exact, float, auto
//!
//! Probability answers come in three precision tiers, chosen per request
//! (or per engine via `SolverOptions::precision`) with the
//! [`Precision`] knob:
//!
//! * **`Precision::Exact`** (the default) — arbitrary-precision rational
//!   arithmetic through the whole pipeline, answers as
//!   [`Response::Probability`]. Nothing changes for existing callers.
//! * **`Precision::Float { max_rel_err }`** — the lineage circuit is
//!   compiled once into a [`FlatArena`](phom_lineage::FlatArena)
//!   (topologically ordered contiguous slab, non-recursive evaluation)
//!   and evaluated in [`ErrF64`](phom_num::ErrF64): `f64` values with a
//!   **certified running error bound** (standard ulp accounting per
//!   add/mul/complement, seeded by the correctly-rounded
//!   `Rational::to_f64` leaf conversions). The answer is
//!   [`Response::Approximate`]`{ value, rel_err_bound, route }` — always
//!   served, with an honest bound even when it misses the tolerance.
//! * **`Precision::Auto { max_rel_err }`** — float first; when the
//!   certified bound exceeds the tolerance the request **escalates to
//!   the same exact rational pass** `Exact` runs, so escalated answers
//!   are bit-for-bit identical to exact ones
//!   (`tests/float_exact_differential.rs` pins this on hundreds of
//!   randomized cases). Escalations are counted in
//!   [`BatchStats::escalations`](phom_core::BatchStats) and surfaced in
//!   [`RuntimeStats`].
//!
//! Provenance-bearing requests, counting, sensitivity, and UCQ are
//! always answered exactly; the precision (tolerance bits included) is
//! part of the cache key, so float and exact answers can never alias —
//! not in an engine's cache, a [`Fleet`]'s shared cache, or over the
//! wire (`tests/precision_cache_isolation.rs`).
//!
//! ```
//! use phom::prelude::*;
//!
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! // Pr(R·S) = 1/3 · 3/4 = 1/4 — but 1/3 is not a binary float, so the
//! // float tier's leaves carry rounding error from the start.
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 3), Rational::from_ratio(3, 4)],
//! );
//! let engine = Engine::new(h);
//! let q = Graph::one_way_path(&[r, s]);
//!
//! // Float: an f64 answer inside its own certified bound.
//! let float = engine.submit(&[Request::probability(q.clone())
//!     .precision(Precision::Float { max_rel_err: 1e-9 })]);
//! let Ok(Response::Approximate { value, rel_err_bound, .. }) = &float[0] else { panic!() };
//! assert!((value - 0.25).abs() <= rel_err_bound * value.abs() + f64::EPSILON);
//!
//! // Auto under an impossible tolerance: the bound can't certify 0, so
//! // the request escalates — and the answer is exactly 1/4, not a float.
//! let (strict, stats) = engine.submit_stats(&[Request::probability(q.clone())
//!     .precision(Precision::Auto { max_rel_err: 0.0 })]);
//! let Ok(Response::Probability(sol)) = &strict[0] else { panic!() };
//! assert_eq!(sol.probability, Rational::from_ratio(1, 4));
//! assert_eq!(stats.escalations, 1);
//!
//! // The tiers never share cache entries: three requests, zero hits.
//! let exact = engine.submit(&[Request::probability(q)]);
//! assert!(matches!(&exact[0], Ok(Response::Probability(_))));
//! assert_eq!(engine.cache_stats().hits, 0);
//! ```
//!
//! `examples/float_serving.rs` walks the escalation behavior on a
//! genuinely ill-conditioned circuit; the CLI exposes the same knob as
//! `--precision exact|float:<tol>|auto[:<tol>]` on `phom solve` and
//! `phom serve --bench`, and the wire protocol as a per-request
//! `"precision"` field answered by `"type": "approximate"` results with
//! a `rel_err` bound (see [`net::wire`]).
//!
//! ## The degradation ladder: no request left behind
//!
//! Every request ends in **exactly one** typed terminal state, chosen
//! by descending a ladder of increasingly degraded — but always
//! *certified* — answers. Nothing on the ladder is silent: each rung is
//! a distinct [`Response`] variant or [`SolveError`] code, so a client
//! always knows what kind of answer it holds.
//!
//! 1. **Exact** — [`Response::Probability`], arbitrary-precision
//!    rational (the default, paper-faithful).
//! 2. **Float** — [`Response::Approximate`] with a certified relative
//!    error bound (`Precision::Float` / `Auto`, above).
//! 3. **Estimate** — [`Response::Estimate`]: a 95% confidence interval
//!    from a budgeted, deterministically seeded Monte-Carlo run. Opt-in
//!    per request via [`Request::on_hard`]`(`[`OnHard::Estimate`]`)`:
//!    a #P-hard cell degrades to an interval instead of erroring, and a
//!    deadline or time budget tripping **after at least one sample**
//!    returns the truncated (honestly wider) interval — the *anytime*
//!    contract: partial work is still a certified answer.
//! 4. **Typed error** — [`SolveError::Hard`] (hard cell, no degradation
//!    requested), [`SolveError::DeadlineExceeded`] (the wall-clock
//!    deadline set by [`Request::deadline`] expired — in queue or at a
//!    cooperative checkpoint inside evaluation), or
//!    [`SolveError::BudgetExceeded`] (a [`Request::budget`] cap on
//!    samples / gates / time tripped before any certifiable answer).
//!
//! Deadlines are enforced *inside* evaluation by cooperative
//! [`WorkMeter`](phom_lineage::WorkMeter) checkpoints threaded through
//! the circuit evaluators and the sampler — a stuck or oversized
//! evaluation stops itself rather than wedging a worker. A deadline
//! never changes *what* is computed, so it is not part of the cache
//! key; a [`Budget`] does, so it is.
//!
//! ```
//! use phom::prelude::*;
//!
//! // Figure 1's instance is a #P-hard cell for the Example 2.2 query.
//! let engine = Engine::new(phom::graph::fixtures::figure_1());
//! let g = phom::graph::fixtures::example_2_2_query();
//!
//! // Rung 4 (default policy): hardness is a typed error.
//! let strict = engine.submit(&[Request::probability(g.clone())]);
//! assert!(matches!(&strict[0], Err(SolveError::Hard(_))));
//!
//! // Rung 3: opt in to degradation — the same hard cell now answers a
//! // certified interval from a sample-budgeted Monte-Carlo run.
//! let soft = engine.submit(&[Request::probability(g.clone())
//!     .on_hard(OnHard::Estimate)
//!     .budget(Budget::unlimited().with_samples(2_000))]);
//! let Ok(Response::Estimate { lo, hi, samples, .. }) = &soft[0] else { panic!() };
//! assert!(lo <= hi && *samples == 2_000);
//!
//! // The sampler is seeded from the query content: a retry returns the
//! // bit-identical interval (and different budgets never share cache
//! // entries, so this is a genuine re-run).
//! let again = engine.submit(&[Request::probability(g.clone())
//!     .on_hard(OnHard::Estimate)
//!     .budget(Budget::unlimited().with_samples(2_000))]);
//! let Ok(Response::Estimate { lo: lo2, hi: hi2, .. }) = &again[0] else { panic!() };
//! assert!(lo == lo2 && hi == hi2);
//! ```
//!
//! The serving layers complete the "no request left behind" story: the
//! [`serve`] runtime classifies every request into a [`Lane`]
//! (cheap-exact work never queues behind sampling or escalation),
//! sheds requests whose deadline expired **while queued** with
//! [`SolveError::DeadlineExceeded`] at flush time, and counts every
//! outcome in [`RuntimeStats`] (`shed_expired`, `estimates`,
//! `deadline_exceeded`, `budget_exceeded`, per-lane depths) so the
//! books always balance: admitted = completed + cancelled + shed. The
//! wire protocol carries `deadline_ms` / `budget` / `on_hard` per
//! request and a `"type": "estimate"` result frame (see [`net::wire`]).
//!
//! ## Serving at scale: four layers
//!
//! The serving stack is four layers, each usable on its own and each
//! proven **bit-identical** to direct [`Engine::submit`] by its
//! differential suite:
//!
//! 1. **The engine tick seam** ([`core::engine`]):
//!    [`Engine::begin_tick`](phom_core::Engine::begin_tick) plans a
//!    batch into `Send + 'static` [`TickUnit`](phom_core::TickUnit)s
//!    that any pool may run, and
//!    [`Tick::finish`](phom_core::Tick::finish) assembles the answers.
//!    [`TickConfig::share_arena_at`](phom_core::TickConfig) enables
//!    **cross-shard arena sharing**: large ticks compile every
//!    circuit-compilable plan into *one* shared arena and partition the
//!    roots across the shards (one cone-restricted multi-root pass
//!    each) instead of building per-shard arenas.
//! 2. **The persistent runtime** ([`serve`]): a pool of worker threads
//!    spawned **once** at startup, a bounded ingress queue, and
//!    **tick-based micro-batching** — enqueued requests accumulate
//!    until `max_batch` are waiting or the oldest has waited
//!    `max_wait`. With [`RuntimeBuilder::adaptive`] the *effective*
//!    knobs follow the load: under backlog the controller doubles the
//!    batch bound and halves the patience; when idle it shrinks the
//!    bound and grows the patience toward the observed per-request
//!    latency EWMA — always within the configured limits.
//!    [`Runtime::enqueue`] returns a [`Ticket`] (blocking
//!    [`wait`](Ticket::wait), non-blocking [`try_get`](Ticket::try_get),
//!    [`cancel`](Ticket::cancel)); a full queue answers
//!    [`SolveError::Overloaded`] immediately (backpressure), and
//!    [`Runtime::shutdown`] drains every admitted request before
//!    stopping. [`RuntimeStats`] exposes tick-size histograms, the
//!    queue-depth high-water mark, adaptive-controller state, and the
//!    shared cache counters.
//! 3. **The network front end** ([`net`]): `phom serve --listen ADDR`
//!    (or [`NetServer`] in process) speaks a length-prefixed JSON
//!    protocol over plain TCP — one 4-byte big-endian length then one
//!    JSON document per frame, both directions. Ops map 1:1 onto the
//!    runtime: `register` → [`Runtime::register`] (returns the hex
//!    version fingerprint), `submit` → [`Runtime::enqueue_to`] (returns
//!    a ticket id, or a typed `{"err":{"code":"overloaded",…}}` frame
//!    when the bounded queue is full — backpressure reaches the wire),
//!    `poll`/`cancel` → the [`Ticket`], `stats` →
//!    [`Runtime::stats`]. Results travel in a canonical encoding
//!    (exact rational strings + route names) that
//!    `tests/net_serving.rs` compares byte-for-byte against in-process
//!    oracle answers; `tests/soak_net.rs` saturates it from eight
//!    concurrent connections and drains it mid-traffic. A `hello`
//!    first frame upgrades a connection to **protocol v2** —
//!    client-tagged frames, a negotiated in-flight window, pushed
//!    completions instead of `poll`, and streaming `submit_batch`
//!    ([`net::MuxClient`] is the pipelined client). See [`net::wire`]
//!    for the protocol reference and `docs/wire-protocol.md` for the
//!    exhaustive v1+v2 frame tables.
//! 4. **The fleet front door** ([`fleet`]): `phom router --listen ADDR
//!    --members FILE` (or a [`Router`] in process) puts one address in
//!    front of N member `phom serve` processes. Membership is **static
//!    and gossip-free** ([`MemberSpec`]); routing is **weighted
//!    rendezvous hashing** on the instance fingerprint, so membership
//!    edits move only the affected instances. Registration is
//!    broadcast-on-demand (the router caches the canonical instance
//!    encoding and forwards it to the owning member lazily — members
//!    ack repeats with the cheap `registered: "cached"` fast path);
//!    the admin `move` op warms an instance on its new member, flips
//!    routing atomically, and drains-and-deregisters the old copy
//!    while pre-flip tickets keep resolving through it. A dead member
//!    surfaces as typed `member_unavailable` frames — submits are
//!    never silently retried — and the router's `stats` op aggregates
//!    every member's [`RuntimeStats`] plus a rollup.
//!    `tests/fleet_serving.rs` proves a 3-process fleet byte-identical
//!    to the in-process oracle through a mid-traffic handoff and a
//!    member kill; `examples/fleet_router.rs` walks the whole story in
//!    process.
//!
//! ### Observability: traces, histograms, metrics
//!
//! All four layers share one zero-dependency observability spine
//! (`phom_obs`, re-exported through [`serve`]):
//!
//! * **Tracing** — every request carries a
//!   [`TraceId`](phom_serve::TraceId), minted at the front door (the
//!   net server, or the fleet router, which injects it into the
//!   forwarded frame) and echoed in the submit ack as a `"trace"` hex
//!   field old peers simply ignore. Each layer records per-stage
//!   [`Span`](phom_serve::Span)s — `admitted`, `queued`, `planned`,
//!   `evaluated` (shared-gate count in `detail`), `encoded`, and
//!   `routed` at the router — into a fixed-size lock-free
//!   overwrite-oldest [`SpanRing`](phom_serve::SpanRing): no hot-path
//!   allocation, torn slots skipped on read. The `trace` wire op
//!   returns the span breakdown for one trace id (a router fans out to
//!   members and merges its own routing spans in) or the N `slowest`
//!   requests still in the ring; `phom client <query> <instance>
//!   --connect ADDR --trace` prints it per stage.
//! * **Histograms** — [`RuntimeStats`] carries mergeable log-linear
//!   latency [`Histogram`](phom_serve::Histogram)s (quantile error
//!   bounded by the 1/8 relative bucket width): end-to-end request and
//!   queue-wait latency per [`Lane`], and per-stage plan/eval/encode
//!   time. The `stats` wire frame carries them sparsely
//!   (`{count,sum,max,buckets:[[idx,n],…]}`), and the router's rollup
//!   merges member histograms bucket-wise — fleet-wide p99 without
//!   member-side aggregation. `phom top --connect ADDR` renders the
//!   quantiles live against either a server or a router.
//! * **Metrics exposition** — the `metrics` wire op returns Prometheus
//!   text format: counters (`phom_requests_{admitted,rejected,
//!   cancelled,completed,shed_expired}_total`,
//!   `phom_lane_requests_total{lane}`, `phom_ticks_total`,
//!   `phom_shared_gates_total`, `phom_float_evaluated_total`,
//!   `phom_escalations_total`, `phom_cache_{hits,misses,evictions}_total`,
//!   …), gauges (`phom_workers`, `phom_queue_depth`,
//!   `phom_{fast,slow}_lane_depth`, `phom_open_tickets`, …), and
//!   histogram families with `_bucket{le}`/`_sum`/`_count` plus
//!   convenience `_p50`/`_p90`/`_p99`/`_max` samples:
//!   `phom_request_latency_ns{lane}`, `phom_queue_latency_ns{lane}`,
//!   `phom_stage_latency_ns{stage}`. The net server appends its
//!   `phom_net_*` counters; the router serves the same histogram names
//!   fleet-merged plus `phom_router_*`/`phom_fleet_*` counters, so one
//!   dashboard works at either level. The full stable-name reference
//!   lives on [`RuntimeStats::prometheus_text`]; `phom serve --bench
//!   --metrics` prints a snapshot after a synthetic run.
//!
//! The runtime layer in five lines — answers bit-identical to
//! [`Engine::submit`] under every `max_batch` / `max_wait` /
//! worker-count / adaptive setting (`tests/runtime_serving.rs`):
//!
//! ```
//! use phom::prelude::*;
//! use std::time::Duration;
//!
//! let h = ProbGraph::new(Graph::directed_path(2), vec![
//!     Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)]);
//! let runtime = Runtime::builder()
//!     .max_batch(32)                          // tick flush threshold
//!     .max_wait(Duration::from_millis(1))     // batching patience
//!     .queue_cap(256)                         // admission control
//!     .workers(2)                             // pool size, spawned once
//!     .build();
//! let version = runtime.register(h);
//!
//! // Any number of threads enqueue concurrently; one tick serves them.
//! let t1 = runtime.enqueue(Request::probability(Graph::directed_path(1))).unwrap();
//! let t2 = runtime
//!     .enqueue_to(version, Request::probability(Graph::directed_path(2)))
//!     .unwrap();
//! assert_eq!(t1.wait().unwrap().probability(), Some(&Rational::from_ratio(3, 4)));
//! assert_eq!(t2.wait().unwrap().probability(), Some(&Rational::from_ratio(1, 4)));
//!
//! let stats = runtime.shutdown();             // drains, then stops the pool
//! assert_eq!(stats.completed, 2);
//! assert_eq!(stats.workers_started, 2);       // spawned exactly once
//! ```
//!
//! The same engines remain directly usable: [`EngineBuilder::threads`]
//! shards an [`Engine::submit`] batch across scoped worker threads, a
//! [`Fleet`] registers many instance *versions* — engines keyed by
//! [`instance_fingerprint`](phom_core::instance_fingerprint) — off one
//! shared bounded cache (as does the runtime's router), and the engine's
//! [`EvalCache`] caches **every** response kind: probability solutions,
//! counting, sensitivity, and UCQ answers, under kind-tagged keys.
//!
//! ```
//! use phom::prelude::*;
//!
//! let h_v1 = ProbGraph::new(Graph::directed_path(2), vec![
//!     Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)]);
//! let mut h_v2_probs = h_v1.probs().to_vec();
//! h_v2_probs[0] = Rational::one();
//! let h_v2 = ProbGraph::new(h_v1.graph().clone(), h_v2_probs);
//!
//! let mut fleet = Fleet::with_cache_capacity(4096).threads(2);
//! let v1 = fleet.register(h_v1);
//! let v2 = fleet.register(h_v2);
//! let q = Request::probability(Graph::directed_path(1));
//! let a1 = fleet.submit(v1, &[q.clone()]).unwrap();
//! let a2 = fleet.submit(v2, &[q]).unwrap();
//! assert_eq!(a1[0].as_ref().unwrap().probability(), Some(&Rational::from_ratio(3, 4)));
//! assert_eq!(a2[0].as_ref().unwrap().probability(), Some(&Rational::one()));
//! ```
//!
//! (The pre-engine free functions `solve`, `solve_with`, `solve_many`,
//! `solve_many_cached`, and `solve_many_stats` remain available as
//! deprecated shims over the same machinery, so existing callers keep
//! working and keep returning bit-identical answers.)
//!
//! Beyond the paper's own results, the workspace implements its Section 6
//! future-work program: **bounded-treewidth instances**
//! ([`graph::treedecomp`] + [`core::algo::walk_on_tw`]), **unions of
//! conjunctive queries** ([`core::ucq`], served via [`Request::ucq`]),
//! **OBDD lineage compilation** ([`lineage::obdd`] +
//! [`core::algo::obdd_route`]), **model counting** through the engine's
//! counting semiring ([`core::counting`], served via
//! [`Request::counting`](Request::counting)), and **sensitivity
//! analysis** — engine gradients, dual-number forward mode, conditioning
//! and most-probable witnesses ([`lineage::analysis`],
//! [`core::sensitivity`], served via
//! [`Request::sensitivity`](Request::sensitivity)).

pub use phom_automata as automata;
pub use phom_core as core;
pub use phom_fleet as fleet;
pub use phom_graph as graph;
pub use phom_lineage as lineage;
pub use phom_net as net;
pub use phom_num as num;
pub use phom_reductions as reductions;
pub use phom_serve as serve;

#[allow(deprecated)] // the legacy shims stay exported so no caller breaks
pub use phom_core::{solve, solve_many, solve_many_cached, solve_with};
pub use phom_core::{
    Budget, Engine, EngineBuilder, EvalCache, Fallback, Fleet, Hardness, Lane, OnHard, Precision,
    Request, Response, Route, Solution, SolveError, SolverOptions, TickConfig, WorkerScratch,
};
pub use phom_fleet::{MemberSpec, Router, RouterBuilder, RouterStats};
pub use phom_net::{Client as NetClient, NetError, NetStats, Server as NetServer, WireRequest};
pub use phom_serve::{Runtime, RuntimeBuilder, RuntimeStats, Ticket};

pub mod cli;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use phom_core::ucq::Ucq;
    #[allow(deprecated)] // the legacy shims stay exported so no caller breaks
    pub use phom_core::{solve, solve_many, solve_many_cached, solve_with};
    pub use phom_core::{
        BatchStats, Budget, CacheHandle, CacheStats, Engine, EngineBuilder, EvalCache, Fallback,
        Fleet, Lane, OnHard, Precision, Request, Response, Route, Solution, SolveError,
        SolverOptions, TickConfig,
    };
    pub use phom_fleet::{MemberSpec, Router, RouterBuilder, RouterStats};
    pub use phom_graph::{classify, Dir, Graph, GraphBuilder, Label, ProbGraph};
    pub use phom_lineage::{FlatArena, Provenance, VarStatus};
    pub use phom_net::{
        Client as NetClient, NetError, NetStats, Server as NetServer, WireFallback, WireRequest,
    };
    pub use phom_num::{ErrF64, Rational, Semiring, Weight};
    pub use phom_serve::{Runtime, RuntimeBuilder, RuntimeStats, Ticket};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        let h = crate::graph::fixtures::figure_1();
        let g = crate::graph::fixtures::example_2_2_query();
        let p = crate::core::bruteforce::probability(&g, &h);
        assert_eq!(p, crate::graph::fixtures::example_2_2_answer());
    }

    #[test]
    fn engine_facade_serves() {
        let h = crate::graph::fixtures::figure_1();
        let engine = crate::Engine::new(h.clone());
        let g = crate::graph::fixtures::example_2_2_query();
        // Figure 1's instance is a hard cell for this query: typed error.
        let err = engine.solve(&g).unwrap_err();
        assert!(matches!(err, crate::SolveError::Hard(_)));
    }
}
