//! # phom — probabilistic graph homomorphism
//!
//! A complete implementation of *"Conjunctive Queries on Probabilistic
//! Graphs: Combined Complexity"* (Amarilli, Monet & Senellart, PODS 2017):
//! exact evaluation of conjunctive queries over tuple-independent
//! probabilistic graphs, with the paper's full combined-complexity
//! classification — every polynomial-time algorithm, every hardness
//! reduction, and the machinery they rest on (β-acyclic lineages, d-DNNF
//! circuits, tree automata, graded DAGs, the X-property).
//!
//! ## Quick start
//!
//! ```
//! use phom::prelude::*;
//!
//! // A probabilistic instance: a downward tree of R/S-labeled edges.
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//!
//! // The query: does an R-edge followed by an S-edge exist?
//! let g = Graph::one_way_path(&[r, s]);
//!
//! // The solver routes this to Prop 4.10 (β-acyclic lineage) and answers
//! // exactly: 1/2 · 3/4 = 3/8.
//! let sol = phom::solve(&g, &h).unwrap();
//! assert_eq!(sol.probability, Rational::from_ratio(3, 8));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`num`] | arbitrary-precision naturals, exact rationals, and the algebra layer: the [`Semiring`](phom_num::Semiring) trait (Rational / `f64` / [`Natural`](phom_num::Natural) counting / `bool` / [`Dual`](phom_num::Dual) forward-mode derivatives) refined by [`Weight`](phom_num::Weight) |
//! | [`graph`] | graphs, probabilistic graphs, classes, homomorphisms |
//! | [`lineage`] | the **unified provenance engine** ([`lineage::engine`]): one arena IR with interned gates and structural hashing, one semiring-generic bottom-up evaluator shared by positive DNFs, β-acyclicity (Thm 4.9), d-DNNF circuits, and OBDDs |
//! | [`automata`] | the polytree encoding and path automata of Prop 5.4, compiling into engine arenas |
//! | [`core`] | the per-proposition algorithms and the Tables 1–3 dispatcher; tractable routes attach a [`Provenance`](phom_lineage::Provenance) handle to their [`Solution`]s; the batched serving path ([`solve_many`], [`EvalCache`](phom_core::EvalCache)) compiles whole query sets into one shared arena and caches answers per (instance fingerprint, query) |
//! | [`reductions`] | executable #P-hardness reductions (Props 3.3/3.4/4.1/5.6) |
//!
//! ## The provenance engine
//!
//! Every tractable `PHom` route ultimately evaluates a Boolean lineage
//! bottom-up. Those evaluations all run through **one** routine —
//! [`Arena::eval_roots`](phom_lineage::engine::Arena::eval_roots) —
//! instantiated at different semirings: exact [`Rational`](phom_num::Rational) probability,
//! the `f64` fast path, [`Natural`](phom_num::Natural) model counting
//! (with on-the-fly smoothing for unsmoothed circuits),
//! Boolean world evaluation, and [`Dual`](phom_num::Dual)-number
//! directional derivatives. Ask the solver for the handle with
//! [`SolverOptions::want_provenance`] and reuse it downstream:
//!
//! ```
//! use phom::prelude::*;
//!
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//! let g = Graph::one_way_path(&[r, s]);
//!
//! let opts = SolverOptions { want_provenance: true, ..Default::default() };
//! let sol = phom::solve_with(&g, &h, opts).unwrap();
//! let prov = sol.provenance.expect("Prop 4.10 compiles a circuit");
//! // The same circuit re-evaluates under new probabilities (no re-solve),
//! // answers per-world queries, and differentiates:
//! assert_eq!(prov.probability::<Rational>(h.probs()), sol.probability);
//! assert!(prov.holds_in(&[true, true]));
//! let influences = prov.gradients::<Rational>(h.probs());
//! assert_eq!(influences.len(), 2);
//! ```
//!
//! ## Batched serving
//!
//! Serving workloads — many queries against one instance, with heavy
//! repetition — go through [`solve_many`]: instance preprocessing runs
//! once, structurally identical queries intern to one solve, every
//! circuit-compilable query shares a single lineage arena and one
//! multi-root engine pass, and an optional [`EvalCache`] keyed by
//! (instance fingerprint, query) serves repeats across batches without
//! re-solving. Results are bit-identical to per-query [`solve`] calls.
//!
//! ```
//! use phom::prelude::*;
//! use phom_core::solve_many_stats;
//!
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//!
//! // A batch with repeats: the repeated query is solved once.
//! let rs = Graph::one_way_path(&[r, s]);
//! let queries = vec![rs.clone(), Graph::one_way_path(&[r]), rs];
//! let mut cache = EvalCache::new();
//! let (answers, stats) =
//!     solve_many_stats(&queries, &h, SolverOptions::default(), Some(&mut cache));
//! assert_eq!(stats.unique_queries, 2);
//! assert_eq!(answers[0].as_ref().unwrap().probability, Rational::from_ratio(3, 8));
//! assert_eq!(answers[2].as_ref().unwrap().probability, Rational::from_ratio(3, 8));
//!
//! // A second batch is served entirely from the cache.
//! let (_, stats) = solve_many_stats(&queries, &h, SolverOptions::default(), Some(&mut cache));
//! assert_eq!(stats.cache_hits, 2);
//! ```
//!
//! Beyond the paper's own results, the workspace implements its Section 6
//! future-work program: **bounded-treewidth instances**
//! ([`graph::treedecomp`] + [`core::algo::walk_on_tw`]), **unions of
//! conjunctive queries** ([`core::ucq`]), **OBDD lineage compilation**
//! ([`lineage::obdd`] + [`core::algo::obdd_route`]), **model counting**
//! through the engine's counting semiring ([`core::counting`]), and
//! **sensitivity analysis** — engine gradients, dual-number forward mode,
//! conditioning and most-probable witnesses ([`lineage::analysis`],
//! [`core::sensitivity`]).

pub use phom_automata as automata;
pub use phom_core as core;
pub use phom_graph as graph;
pub use phom_lineage as lineage;
pub use phom_num as num;
pub use phom_reductions as reductions;

pub use phom_core::{
    solve, solve_many, solve_many_cached, solve_with, EvalCache, Fallback, Hardness, Route,
    Solution, SolverOptions,
};

pub mod cli;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use phom_core::ucq::Ucq;
    pub use phom_core::{
        solve, solve_many, solve_many_cached, solve_with, EvalCache, Fallback, Route, Solution,
        SolverOptions,
    };
    pub use phom_graph::{classify, Dir, Graph, GraphBuilder, Label, ProbGraph};
    pub use phom_lineage::{Provenance, VarStatus};
    pub use phom_num::{Rational, Semiring, Weight};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        let h = crate::graph::fixtures::figure_1();
        let g = crate::graph::fixtures::example_2_2_query();
        let p = crate::core::bruteforce::probability(&g, &h);
        assert_eq!(p, crate::graph::fixtures::example_2_2_answer());
    }
}
