//! # phom — probabilistic graph homomorphism
//!
//! A complete implementation of *"Conjunctive Queries on Probabilistic
//! Graphs: Combined Complexity"* (Amarilli, Monet & Senellart, PODS 2017):
//! exact evaluation of conjunctive queries over tuple-independent
//! probabilistic graphs, with the paper's full combined-complexity
//! classification — every polynomial-time algorithm, every hardness
//! reduction, and the machinery they rest on (β-acyclic lineages, d-DNNF
//! circuits, tree automata, graded DAGs, the X-property).
//!
//! ## Quick start
//!
//! ```
//! use phom::prelude::*;
//!
//! // A probabilistic instance: a downward tree of R/S-labeled edges.
//! let (r, s) = (Label(0), Label(1));
//! let mut b = GraphBuilder::with_vertices(3);
//! b.edge(0, 1, r);
//! b.edge(1, 2, s);
//! let h = ProbGraph::new(
//!     b.build(),
//!     vec![Rational::from_ratio(1, 2), Rational::from_ratio(3, 4)],
//! );
//!
//! // The query: does an R-edge followed by an S-edge exist?
//! let g = Graph::one_way_path(&[r, s]);
//!
//! // The solver routes this to Prop 4.10 (β-acyclic lineage) and answers
//! // exactly: 1/2 · 3/4 = 3/8.
//! let sol = phom::solve(&g, &h).unwrap();
//! assert_eq!(sol.probability, Rational::from_ratio(3, 8));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`num`] | arbitrary-precision naturals and exact rationals |
//! | [`graph`] | graphs, probabilistic graphs, classes, homomorphisms |
//! | [`lineage`] | positive DNFs, β-acyclicity (Thm 4.9), d-DNNF circuits |
//! | [`automata`] | the polytree encoding and path automata of Prop 5.4 |
//! | [`core`] | the per-proposition algorithms and the Tables 1–3 dispatcher |
//! | [`reductions`] | executable #P-hardness reductions (Props 3.3/3.4/4.1/5.6) |
//!
//! Beyond the paper's own results, the workspace implements its Section 6
//! future-work program: **bounded-treewidth instances**
//! ([`graph::treedecomp`] + [`core::algo::walk_on_tw`]), **unions of
//! conjunctive queries** ([`core::ucq`]), **OBDD lineage compilation**
//! ([`lineage::obdd`] + [`core::algo::obdd_route`]), and **sensitivity
//! analysis** on lineage circuits — edge influences, conditioning and
//! most-probable witnesses ([`lineage::analysis`], [`core::sensitivity`]).

pub use phom_automata as automata;
pub use phom_core as core;
pub use phom_graph as graph;
pub use phom_lineage as lineage;
pub use phom_num as num;
pub use phom_reductions as reductions;

pub use phom_core::{solve, solve_with, Fallback, Hardness, Route, Solution, SolverOptions};

pub mod cli;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use phom_core::ucq::Ucq;
    pub use phom_core::{solve, solve_with, Fallback, Route, Solution, SolverOptions};
    pub use phom_graph::{classify, Dir, Graph, GraphBuilder, Label, ProbGraph};
    pub use phom_num::{Rational, Weight};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        let h = crate::graph::fixtures::figure_1();
        let g = crate::graph::fixtures::example_2_2_query();
        let p = crate::core::bruteforce::probability(&g, &h);
        assert_eq!(p, crate::graph::fixtures::example_2_2_answer());
    }
}
