//! The `phom` command-line interface (logic; the thin binary lives in
//! `src/bin/phom.rs`).
//!
//! ```text
//! phom solve <query-file> <instance-file> [--brute-force <max-edges>]
//!                                         [--monte-carlo <samples>] [--dp]
//!                                         [--precision exact|float:<tol>|auto[:<tol>]]
//! phom solve --queries-file <batch-file> <instance-file> [options]
//!                                         [--threads <k>] [--cache-cap <n>]
//!                                         [--stats]
//! phom serve --bench [--net] [--max-batch <n>] [--max-wait-ms <ms>]
//!                    [--queue-cap <n>] [--workers <k>]
//!                    [--requests <n>] [--producers <p>]
//!                    [--precision exact|float:<tol>|auto[:<tol>]]
//! phom router --listen ADDR [--members <file>] [--member name=addr[@w]]...
//!                           [--connect-attempts <n>] [--connect-backoff-ms <ms>]
//! phom router --bench [--fleet-size <k>] [--requests <n>]
//! phom classify <graph-file>
//! phom count <query-file> <instance-file> [--brute-force <max-edges>]
//! phom tables
//! ```
//!
//! Graph files use the `phom_graph::io` text format. Queries must share
//! label *names* with the instance: labels are interned per run, instance
//! first, so `R` in the query means `R` in the instance.
//!
//! Every solve/count goes through a `phom_core::Engine` built for the
//! parsed instance. The `--queries-file` batch mode reads many queries
//! from one file (sections separated by lines containing only `---`) and
//! submits them as one request batch: instance preprocessing runs once,
//! structurally identical queries intern to one solve, circuit-compilable
//! queries compile into per-shard lineage arenas (`--threads` controls
//! the shard width) answered by one engine pass each, and the engine's
//! bounded answer cache (`--cache-cap`) serves repeats. A summary line
//! reports the batch statistics; `--stats` adds the cache counters.

use phom_core::tables;
use phom_core::{Engine, Request, Response, SolveError};
use phom_graph::io::{parse_graph, ParsedGraph};
use phom_graph::{classify, Graph, Label, ProbGraph};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Runs the CLI on `args` (without the program name). Returns the output
/// to print, or an error message (exit code 1).
pub fn run(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("solve") => solve_cmd(&args[1..], read_file, false),
        Some("count") => solve_cmd(&args[1..], read_file, true),
        Some("serve") => serve_cmd(&args[1..]),
        Some("router") => router_cmd(&args[1..], read_file),
        Some("client") => client_cmd(&args[1..], read_file),
        Some("top") => top_cmd(&args[1..]),
        Some("classify") => classify_cmd(&args[1..], read_file),
        Some("tables") => Ok(tables_cmd()),
        Some("walk") => walk_cmd(&args[1..], read_file),
        Some("influence") => influence_cmd(&args[1..], read_file),
        Some("ucq") => ucq_cmd(&args[1..], read_file),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn usage() -> String {
    "phom — probabilistic graph homomorphism (PODS'17)\n\
     \n\
     commands:\n\
     \x20 solve <query> <instance>    exact Pr(G ⇝ H), or the hardness cell\n\
     \x20 count <query> <instance>    satisfying-world count (all-½ instances)\n\
     \x20 classify <graph>            graph classes per Figure 2\n\
     \x20 tables                      the paper's complexity tables\n\
     \x20 walk <instance> <m>         Pr(∃ directed walk ≥ m) via the\n\
     \x20                             bounded-treewidth DP (§6 extension)\n\
     \x20 influence <query> <instance>  edge influences ∂Pr/∂π(e), ranked\n\
     \x20 ucq <instance> <query>...   Pr(G₁ ∨ … ∨ G_k ⇝ H), union of CQs\n\
     \x20 serve --listen ADDR         the phom_net TCP front end: clients\n\
     \x20                             register instances and submit requests\n\
     \x20                             over a length-prefixed JSON protocol\n\
     \x20 serve --bench               drive the persistent serving runtime\n\
     \x20                             (phom_serve::Runtime) with a synthetic\n\
     \x20                             multi-producer load and print its stats\n\
     \x20 router --listen ADDR        the phom_fleet front door: one address\n\
     \x20                             fanning out to member `phom serve`\n\
     \x20                             processes (rendezvous routing on the\n\
     \x20                             instance fingerprint, `move` handoff,\n\
     \x20                             fleet-wide stats); members come from\n\
     \x20                             --members FILE or repeated --member\n\
     \x20 router --bench              spin an in-process fleet (members +\n\
     \x20                             router), fire a mixed workload through\n\
     \x20                             one handoff, print fleet-wide stats\n\
     \x20 client <query> <instance> --connect ADDR [--trace]\n\
     \x20                             one-shot wire client against a serve\n\
     \x20                             or router endpoint: register, submit,\n\
     \x20                             wait, print the answer; --trace adds\n\
     \x20                             the per-stage span breakdown the\n\
     \x20                             serving stack recorded (admitted,\n\
     \x20                             queued, planned, evaluated, encoded,\n\
     \x20                             and routed behind a fleet router)\n\
     \x20 top --connect ADDR          the live stats view of a serve or\n\
     \x20                             router endpoint: counters plus\n\
     \x20                             latency quantiles (p50/p90/p99) per\n\
     \x20                             lane and stage, fleet-merged when the\n\
     \x20                             endpoint is a router; --interval-ms\n\
     \x20                             and --iterations control refresh\n\
     \n\
     options for solve/count:\n\
     \x20 --brute-force <max-edges>   fall back to world enumeration\n\
     \x20 --monte-carlo <samples>     fall back to sampling (solve only)\n\
     \x20 --dp                        use the direct-DP ablations\n\
     \x20 --queries-file <file>       solve only: batch mode — answer every\n\
     \x20                             query in <file> (sections split by ---)\n\
     \x20                             via one Engine::submit batch\n\
     \x20 --threads <k>               engine shard width (0 = all cores)\n\
     \x20 --cache-cap <n>             bound the engine's answer cache (LRU)\n\
     \x20 --precision <p>             evaluation tier (solve only):\n\
     \x20                             exact (default), float:<tol> — f64 with\n\
     \x20                             a certified relative-error bound, or\n\
     \x20                             auto[:<tol>] — float first, escalate to\n\
     \x20                             exact when the bound exceeds <tol>\n\
     \x20                             (auto defaults to 1e-9)\n\
     \x20 --stats                     print the cache counters too (and the\n\
     \x20                             float-tier / escalation counts)\n\
     \x20 --deadline-ms <ms>          wall-clock deadline, anchored now: an\n\
     \x20                             expired request answers the typed\n\
     \x20                             deadline_exceeded error (enforced by\n\
     \x20                             cooperative checkpoints inside\n\
     \x20                             evaluation), never a stale answer\n\
     \x20 --budget-samples <n>        cap Monte-Carlo samples per request\n\
     \x20 --budget-gates <n>          cap circuit gates evaluated\n\
     \x20 --budget-time-ms <ms>       cap wall-clock evaluation time; a\n\
     \x20                             tripped cap answers budget_exceeded\n\
     \x20 --on-hard error|estimate    #P-hard-cell policy (solve only):\n\
     \x20                             typed error (default), or degrade to\n\
     \x20                             a budgeted Monte-Carlo 95% confidence\n\
     \x20                             interval (the degradation ladder)\n\
     \n\
     options for serve (the tick/backpressure knobs):\n\
     \x20 --adaptive                  adaptive tick sizing: adjust the\n\
     \x20                             effective max-batch/max-wait from the\n\
     \x20                             queue depth + latency-EWMA feedback,\n\
     \x20                             bounded by the configured knobs\n\
     \x20 --share-arena-at <n|off>    compile ticks with ≥ n unique queries\n\
     \x20                             into one cross-shard shared arena\n\
     \x20                             (default 32; 'off' = per-shard arenas)\n\
     \x20 --serve-for-ms <ms>         --listen only: serve for a bounded\n\
     \x20                             time, then drain and print a summary\n\
     \x20 --max-batch <n>             flush a tick at n accumulated requests\n\
     \x20                             (default 64; bigger ticks amortize\n\
     \x20                             planning and share arenas)\n\
     \x20 --max-wait-ms <ms>          flush a tick once its oldest request\n\
     \x20                             waited this long (default 2; the\n\
     \x20                             latency bound under light load)\n\
     \x20 --queue-cap <n>             ingress bound: a full queue rejects\n\
     \x20                             with Overloaded — backpressure, not\n\
     \x20                             unbounded memory (default 1024)\n\
     \x20 --workers <k>               persistent pool size, spawned once\n\
     \x20                             (default: all cores)\n\
     \x20 --requests <n>              synthetic requests to fire (default 512)\n\
     \x20 --producers <p>             concurrent producer threads (default 4)\n\
     \x20 --precision <p>             --bench only: evaluation tier for the\n\
     \x20                             synthetic probability requests (exact |\n\
     \x20                             float:<tol> | auto[:<tol>])\n\
     \x20 --metrics                   --bench only: print the Prometheus\n\
     \x20                             text metrics snapshot after the run\n\
     \x20 --net                       --bench only: drive the load over\n\
     \x20                             loopback TCP through protocol-v2\n\
     \x20                             multiplexed connections (pushed\n\
     \x20                             completions) instead of in-process\n\
     \x20                             enqueue; --metrics then includes the\n\
     \x20                             phom_net_* front-end counters\n\
     \n\
     options for router:\n\
     \x20 --members <file>            member list: one `name addr [weight]`\n\
     \x20                             (or `name=addr[@weight]`) per line;\n\
     \x20                             `#` comments allowed\n\
     \x20 --member name=addr[@w]      add one member (repeatable; combines\n\
     \x20                             with --members)\n\
     \x20 --connect-attempts <n>      per-member connection attempts before\n\
     \x20                             a call answers member_unavailable\n\
     \x20                             (default 3)\n\
     \x20 --connect-backoff-ms <ms>   backoff between attempts, growing\n\
     \x20                             linearly (default 50)\n\
     \x20 --serve-for-ms <ms>         --listen only: route for a bounded\n\
     \x20                             time, then drain and print a summary\n\
     \x20 --fleet-size <k>            --bench only: in-process members to\n\
     \x20                             spin up (default 3)\n\
     \x20 --requests <n>              --bench only: requests to fire\n\
     \x20                             (default 256)\n"
        .into()
}

/// Parses a `--precision` value: `exact`, `float:<tol>`, or
/// `auto[:<tol>]` (`auto` alone uses a 1e-9 tolerance).
fn parse_precision(v: &str) -> Result<phom_core::Precision, String> {
    use phom_core::Precision;
    let parse_tol = |s: &str| -> Result<f64, String> {
        let tol: f64 = s
            .parse()
            .map_err(|_| format!("--precision: bad tolerance '{s}'"))?;
        if !tol.is_finite() || tol < 0.0 {
            return Err(format!(
                "--precision: tolerance must be finite and non-negative, got '{s}'"
            ));
        }
        Ok(tol)
    };
    match v {
        "exact" => Ok(Precision::Exact),
        "auto" => Ok(Precision::Auto { max_rel_err: 1e-9 }),
        _ => {
            if let Some(t) = v.strip_prefix("float:") {
                Ok(Precision::Float {
                    max_rel_err: parse_tol(t)?,
                })
            } else if let Some(t) = v.strip_prefix("auto:") {
                Ok(Precision::Auto {
                    max_rel_err: parse_tol(t)?,
                })
            } else {
                Err(format!(
                    "--precision: expected exact, float:<tol>, or auto[:<tol>], got '{v}'"
                ))
            }
        }
    }
}

/// The `serve --bench` load generator: registers two deterministic
/// instance versions with the runtime, fires a mixed workload
/// (probability / counting / UCQ) from several producer threads through
/// `Runtime::enqueue`, waits on every ticket, cross-checks a sample of
/// answers against direct `Engine::submit`, and reports throughput plus
/// the runtime's stats snapshot.
fn serve_cmd(args: &[String]) -> Result<String, String> {
    let mut max_batch: usize = 64;
    let mut max_wait_ms: u64 = 2;
    let mut queue_cap: usize = 1024;
    let mut workers: usize = 0;
    let mut requests: usize = 512;
    let mut producers: usize = 4;
    let mut bench = false;
    let mut net = false;
    let mut listen: Option<String> = None;
    let mut precision = phom_core::Precision::Exact;
    let mut metrics = false;
    let mut adaptive = false;
    let mut share_arena_at: Option<usize> = Some(32);
    let mut serve_for_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Option<&String> {
            *i += 1;
            args.get(*i)
        };
        match args[i].as_str() {
            "--bench" => bench = true,
            "--net" => net = true,
            "--metrics" => metrics = true,
            "--listen" => {
                listen = Some(
                    flag_value(&mut i)
                        .ok_or("--listen needs an address (e.g. 127.0.0.1:4100)")?
                        .clone(),
                )
            }
            "--adaptive" => adaptive = true,
            "--share-arena-at" => {
                let v = flag_value(&mut i)
                    .ok_or("--share-arena-at needs a unique-query count (or 'off')")?;
                share_arena_at =
                    if v == "off" {
                        None
                    } else {
                        Some(v.parse().map_err(|_| {
                            "--share-arena-at needs a unique-query count (or 'off')"
                        })?)
                    };
            }
            "--serve-for-ms" => {
                serve_for_ms = Some(
                    flag_value(&mut i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--serve-for-ms needs a millisecond count")?,
                )
            }
            "--max-batch" => {
                max_batch = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-batch needs a request count")?
            }
            "--max-wait-ms" => {
                max_wait_ms = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-wait-ms needs a millisecond count")?
            }
            "--queue-cap" => {
                queue_cap = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--queue-cap needs a request count")?
            }
            "--workers" => {
                workers = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--workers needs a thread count (0 = all cores)")?
            }
            "--requests" => {
                requests = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--requests needs a count")?
            }
            "--producers" => {
                producers = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--producers needs a thread count")?
            }
            "--precision" => {
                let v = flag_value(&mut i)
                    .ok_or("--precision needs exact, float:<tol>, or auto[:<tol>]")?;
                precision = parse_precision(v)?;
            }
            other => return Err(format!("serve: unknown flag '{other}'")),
        }
        i += 1;
    }
    if let Some(addr) = listen {
        if bench {
            return Err("--listen and --bench are mutually exclusive".into());
        }
        return listen_cmd(ListenConfig {
            addr,
            max_batch,
            max_wait_ms,
            queue_cap,
            workers,
            adaptive,
            share_arena_at,
            serve_for_ms,
            ready: None,
        });
    }
    if !bench {
        if net {
            return Err("--net requires --bench (it routes the synthetic load \
                        over loopback TCP)"
                .into());
        }
        return Err("serve needs a mode: `--listen ADDR` (the phom_net TCP \
                    front end) or `--bench` (the synthetic load generator)"
            .into());
    }
    let producers = producers.max(1);
    let requests = requests.max(1);

    // Two deterministic instance versions: a mixed-probability 2WP and
    // its all-½ "census" twin (so counting requests are valid).
    use phom_graph::generate::{self, ProbProfile};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(0x5E21E);
    let live = generate::with_probabilities(
        generate::two_way_path(64, 2, &mut rng),
        ProbProfile::default(),
        &mut rng,
    );
    let census = ProbGraph::new(
        live.graph().clone(),
        vec![phom_num::Rational::from_ratio(1, 2); live.graph().n_edges()],
    );
    let q1 = generate::planted_path_query(live.graph(), 3, &mut rng)
        .unwrap_or_else(|| Graph::one_way_path(&[Label(0)]));
    let q2 = generate::planted_path_query(live.graph(), 2, &mut rng)
        .unwrap_or_else(|| Graph::one_way_path(&[Label(1)]));

    if net {
        return serve_bench_net(ServeBenchNet {
            max_batch,
            max_wait_ms,
            queue_cap,
            workers,
            adaptive,
            share_arena_at,
            precision,
            requests,
            producers,
            metrics,
            live,
            census,
            q1,
            q2,
        });
    }

    let runtime = phom_serve::Runtime::builder()
        .max_batch(max_batch)
        .max_wait(std::time::Duration::from_millis(max_wait_ms))
        .queue_cap(queue_cap)
        .workers(workers)
        .adaptive(adaptive)
        .share_arena_at(share_arena_at)
        .build();
    let v_live = runtime.register(live.clone());
    let v_census = runtime.register(census);

    let request_for = |j: usize| -> (u64, Request) {
        match j % 4 {
            0 => (
                v_live,
                Request::probability(q1.clone()).precision(precision),
            ),
            1 => (
                v_live,
                Request::probability(q2.clone()).precision(precision),
            ),
            2 => (v_census, Request::probability(q1.clone()).counting()),
            _ => (
                v_live,
                Request::ucq(phom_core::ucq::Ucq::new(vec![q1.clone(), q2.clone()])),
            ),
        }
    };

    let started = std::time::Instant::now();
    let mut overloaded_retries = 0u64;
    std::thread::scope(|scope| {
        let runtime = &runtime;
        let request_for = &request_for;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                scope.spawn(move || {
                    let mut tickets = Vec::new();
                    let mut retries = 0u64;
                    let mut j = p;
                    while j < requests {
                        let (version, request) = request_for(j);
                        // Backpressure loop: on Overloaded, yield and retry.
                        loop {
                            match runtime.enqueue_to(version, request.clone()) {
                                Ok(ticket) => {
                                    tickets.push(ticket);
                                    break;
                                }
                                Err(SolveError::Overloaded { .. }) => {
                                    retries += 1;
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("bench enqueue failed: {e}"),
                            }
                        }
                        j += producers;
                    }
                    for ticket in &tickets {
                        ticket.wait().map(|_| ()).map_err(|e| e.to_string()).ok();
                    }
                    retries
                })
            })
            .collect();
        for handle in handles {
            overloaded_retries += handle.join().expect("producer thread");
        }
    });
    let elapsed = started.elapsed();

    // Cross-check a sample against the direct engine path.
    let oracle = Engine::new(live);
    let direct = oracle.submit(&[Request::probability(q1.clone())]);
    let ticket = runtime
        .enqueue_to(v_live, Request::probability(q1))
        .map_err(|e| e.to_string())?;
    let served = ticket.wait();
    match (&served, &direct[0]) {
        (Ok(Response::Probability(a)), Ok(Response::Probability(b)))
            if a.probability == b.probability => {}
        (a, b) => return Err(format!("runtime/engine answer mismatch: {a:?} vs {b:?}")),
    }

    let stats = runtime.shutdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {requests} requests from {producers} producers in {:.2?} \
         ({:.0} req/s); answers cross-checked vs Engine::submit",
        elapsed,
        requests as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    let _ = writeln!(
        out,
        "config: max_batch {max_batch}, max_wait {max_wait_ms}ms, \
         queue_cap {queue_cap}, workers {}",
        stats.workers
    );
    let _ = writeln!(
        out,
        "ticks: {} (mean {:.1} req, max {}), units: {} (mean {:.1}µs, max {:.1}µs)",
        stats.ticks,
        stats.mean_tick_requests(),
        stats.max_tick_requests,
        stats.unit_runs,
        stats.mean_unit_micros(),
        stats.unit_nanos_max as f64 / 1e3,
    );
    let _ = writeln!(
        out,
        "admission: {} admitted, {} rejected (Overloaded), {} retries by producers",
        stats.admitted, stats.rejected, overloaded_retries,
    );
    let _ = writeln!(
        out,
        "lanes: {} fast / {} slow (peak depths {}/{}), {} shed expired in queue",
        stats.fast_lane_total,
        stats.slow_lane_total,
        stats.fast_lane_depth_max,
        stats.slow_lane_depth_max,
        stats.shed_expired,
    );
    let _ = writeln!(
        out,
        "degradation: {} estimates, {} deadline exceeded, {} budget exceeded; \
         {} tickets open",
        stats.estimates,
        stats.deadline_exceeded,
        stats.budget_exceeded,
        stats.open_tickets(),
    );
    let _ = writeln!(
        out,
        "batch: {} queries ({} unique, {} cache hits at plan time), \
         {} circuit-batched, {} general",
        stats.queries,
        stats.unique_queries,
        stats.batch_cache_hits,
        stats.circuit_batched,
        stats.general_solved,
    );
    let _ = writeln!(
        out,
        "float tier: {} answered, {} escalations; scratch reuse {} of {} unit runs",
        stats.float_evaluated, stats.escalations, stats.scratch_reuse, stats.unit_runs,
    );
    let _ = writeln!(
        out,
        "cache: {} entries, {} hits, {} misses, {} evictions",
        stats.cache.entries, stats.cache.hits, stats.cache.misses, stats.cache.evictions,
    );
    let lane = |h: &phom_serve::Histogram| -> String {
        if h.is_empty() {
            "-".into()
        } else {
            format!(
                "p50 {} / p99 {} (max {})",
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.max()),
            )
        }
    };
    let _ = writeln!(
        out,
        "latency: fast {}, slow {}",
        lane(&stats.request_ns_fast),
        lane(&stats.request_ns_slow),
    );
    let _ = writeln!(
        out,
        "stages: plan {}, eval {}, encode {}",
        lane(&stats.plan_ns),
        lane(&stats.eval_ns),
        lane(&stats.encode_ns),
    );
    if metrics {
        out.push_str(&stats.prometheus_text());
    }
    Ok(out)
}

/// Everything `serve --bench --net` needs: the runtime knobs, the
/// workload shape, and the deterministic instances/queries the plain
/// bench uses (so the two modes fire the same mixed workload).
struct ServeBenchNet {
    max_batch: usize,
    max_wait_ms: u64,
    queue_cap: usize,
    workers: usize,
    adaptive: bool,
    share_arena_at: Option<usize>,
    precision: phom_core::Precision,
    requests: usize,
    producers: usize,
    metrics: bool,
    live: ProbGraph,
    census: ProbGraph,
    q1: Graph,
    q2: Graph,
}

/// The `serve --bench --net` load generator: the same mixed workload as
/// the plain bench, but routed over loopback TCP — a real
/// `phom_net::Server` front end, one protocol-v2 multiplexed connection
/// per producer, completions arriving as server pushes. Overloaded
/// rejections (typed, in the ack) are re-submitted until every request
/// answers; one answer is cross-checked byte-for-byte against
/// `Engine::submit` through the wire encoding.
fn serve_bench_net(cfg: ServeBenchNet) -> Result<String, String> {
    use phom_net::wire::{encode_result, WireRequest};
    use phom_net::{MuxClient, Server};
    use std::sync::Arc;

    let runtime = Arc::new(
        phom_serve::Runtime::builder()
            .max_batch(cfg.max_batch)
            .max_wait(std::time::Duration::from_millis(cfg.max_wait_ms))
            .queue_cap(cfg.queue_cap)
            .workers(cfg.workers)
            .adaptive(cfg.adaptive)
            .share_arena_at(cfg.share_arena_at)
            .build(),
    );
    let v_live = runtime.register(cfg.live.clone());
    let v_census = runtime.register(cfg.census);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&runtime)).map_err(|e| format!("net bench: {e}"))?;
    let addr = server.local_addr();

    let request_for = |j: usize| -> (u64, WireRequest) {
        match j % 4 {
            0 => (
                v_live,
                WireRequest::probability(cfg.q1.clone()).with_precision(cfg.precision),
            ),
            1 => (
                v_live,
                WireRequest::probability(cfg.q2.clone()).with_precision(cfg.precision),
            ),
            2 => (v_census, WireRequest::counting(cfg.q1.clone())),
            _ => (
                v_live,
                WireRequest::ucq(vec![cfg.q1.clone(), cfg.q2.clone()]),
            ),
        }
    };

    let started = std::time::Instant::now();
    let mut resubmits = 0u64;
    std::thread::scope(|scope| {
        let request_for = &request_for;
        let handles: Vec<_> = (0..cfg.producers)
            .map(|p| {
                scope.spawn(move || {
                    let client = MuxClient::connect(addr).expect("hello handshake");
                    let mut work: Vec<(u64, WireRequest)> = (p..cfg.requests)
                        .step_by(cfg.producers)
                        .map(request_for)
                        .collect();
                    let mut retries = 0u64;
                    // Pipeline a full pass (submits run ahead of the
                    // pushes), then re-submit whatever the admission
                    // gate rejected until every slot has answered.
                    while !work.is_empty() {
                        let tickets: Vec<_> = work
                            .iter()
                            .map(|(version, request)| {
                                client.submit(*version, request).expect("submit")
                            })
                            .collect();
                        let mut requeue = Vec::new();
                        for ((version, request), ticket) in work.drain(..).zip(tickets) {
                            match ticket.wait() {
                                Ok(_) => {}
                                Err(e) if e.is_overloaded() => {
                                    retries += 1;
                                    requeue.push((version, request));
                                }
                                Err(e) => panic!("net bench wait: {e}"),
                            }
                        }
                        work = requeue;
                    }
                    retries
                })
            })
            .collect();
        for handle in handles {
            resubmits += handle.join().expect("producer thread");
        }
    });
    let elapsed = started.elapsed();

    // Cross-check one answer against the direct engine path, through
    // the same wire encoding a remote client would compare.
    let oracle = Engine::new(cfg.live);
    let want =
        encode_result(&oracle.submit(&[Request::probability(cfg.q1.clone())])[0]).to_string();
    let check = MuxClient::connect(addr).map_err(|e| format!("net bench check: {e}"))?;
    let got = check
        .submit(v_live, &WireRequest::probability(cfg.q1))
        .and_then(|t| t.wait())
        .map_err(|e| format!("net bench check: {e}"))?
        .to_string();
    if got != want {
        return Err(format!("net/engine answer mismatch: {got} vs {want}"));
    }
    let metrics_text = if cfg.metrics {
        Some(
            check
                .metrics()
                .map_err(|e| format!("net bench metrics: {e}"))?,
        )
    } else {
        None
    };
    drop(check);

    let net = server.shutdown(std::time::Duration::from_secs(60));
    let stats = Arc::try_unwrap(runtime)
        .map_err(|_| "net bench: server shutdown must release its runtime handle".to_string())?
        .shutdown();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {} requests over loopback TCP (protocol v2, {} multiplexed \
         connections) in {:.2?} ({:.0} req/s); answers cross-checked vs \
         Engine::submit",
        cfg.requests,
        cfg.producers,
        elapsed,
        cfg.requests as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    let _ = writeln!(
        out,
        "config: max_batch {}, max_wait {}ms, queue_cap {}, workers {}",
        cfg.max_batch, cfg.max_wait_ms, cfg.queue_cap, stats.workers,
    );
    let _ = writeln!(
        out,
        "net: {} connections ({} upgraded to v2), {} frames in / {} out, \
         {} submitted, {} pushed completions, {} rejected (Overloaded), \
         {} re-submits by producers",
        net.connections,
        net.hello_upgrades,
        net.frames_in,
        net.frames_out,
        net.submitted,
        net.pushed,
        net.rejected_overloaded,
        resubmits,
    );
    let _ = writeln!(
        out,
        "books after drain: {} in flight, {} tickets open",
        net.inflight, net.open_tickets,
    );
    let _ = writeln!(
        out,
        "ticks: {} (mean {:.1} req, max {}); admission: {} admitted, {} rejected",
        stats.ticks,
        stats.mean_tick_requests(),
        stats.max_tick_requests,
        stats.admitted,
        stats.rejected,
    );
    if let Some(text) = metrics_text {
        out.push_str(&text);
    }
    Ok(out)
}

/// Renders a nanosecond reading in the nearest human unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Configuration for `phom serve --listen`.
struct ListenConfig {
    addr: String,
    max_batch: usize,
    max_wait_ms: u64,
    queue_cap: usize,
    workers: usize,
    adaptive: bool,
    share_arena_at: Option<usize>,
    serve_for_ms: Option<u64>,
    /// Test hook: receives the bound address once the listener is up
    /// (`None` outside tests — scripts parse the readiness line).
    ready: Option<std::sync::mpsc::Sender<std::net::SocketAddr>>,
}

/// `phom serve --listen ADDR`: the phom_net TCP front end over a fresh
/// runtime. Clients `register` instances over the wire, then
/// `submit`/`poll`/`cancel`/`stats` (see `phom_net::wire` for the frame
/// format). Runs until killed, or for `--serve-for-ms` when given (the
/// bounded mode tests and scripts use); the returned summary reports
/// the front-end counters and the runtime stats snapshot.
fn listen_cmd(config: ListenConfig) -> Result<String, String> {
    use std::time::Duration;
    let runtime = std::sync::Arc::new(
        phom_serve::Runtime::builder()
            .max_batch(config.max_batch)
            .max_wait(Duration::from_millis(config.max_wait_ms))
            .queue_cap(config.queue_cap)
            .workers(config.workers)
            .adaptive(config.adaptive)
            .share_arena_at(config.share_arena_at)
            .build(),
    );
    let server = phom_net::Server::bind(config.addr.as_str(), std::sync::Arc::clone(&runtime))
        .map_err(|e| format!("listen {}: {e}", config.addr))?;
    let local = server.local_addr();
    // Announce readiness on stdout immediately — scripts wait for this
    // line before connecting.
    println!(
        "phom_net: listening on {local} (adaptive {}, register instances over the wire)",
        if config.adaptive { "on" } else { "off" }
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Some(ready) = &config.ready {
        let _ = ready.send(local);
    }
    match config.serve_for_ms {
        Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    // Drain deterministically: stop admitting and flush every admitted
    // request through final ticks *first* — while the server stays up,
    // so clients poll the answers during its drain window. Shutting the
    // server down before the runtime flushed raced the drain window
    // against the batcher's max_wait timer: with patient tick settings,
    // connections closed on tickets that were still queued.
    runtime.drain();
    let net = server.shutdown(Duration::from_secs(2));
    let stats = match std::sync::Arc::try_unwrap(runtime) {
        // The server was the only other holder and is joined: consume
        // the runtime for its final, fully settled stats snapshot.
        Ok(runtime) => runtime.shutdown(),
        Err(runtime) => {
            let stats = runtime.stats();
            drop(runtime);
            stats
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "served on {local}");
    let _ = writeln!(
        out,
        "net: {} connections, {} frames in / {} out, {} submitted, \
         {} overloaded, {} delivered, {} tickets open at close",
        net.connections,
        net.frames_in,
        net.frames_out,
        net.submitted,
        net.rejected_overloaded,
        net.delivered,
        net.open_tickets,
    );
    let _ = writeln!(
        out,
        "runtime: {} admitted, {} completed, {} rejected, {} cancelled, \
         {} shed expired, {} ticks (max {} req), effective max_batch {}",
        stats.admitted,
        stats.completed,
        stats.rejected,
        stats.cancelled,
        stats.shed_expired,
        stats.ticks,
        stats.max_tick_requests,
        stats.effective_max_batch,
    );
    Ok(out)
}

/// `phom router`: the phom_fleet front door. `--listen ADDR` routes
/// client traffic across the configured members (`--members FILE` and/
/// or repeated `--member name=addr[@weight]`); `--bench` spins an
/// in-process fleet, fires a mixed workload through a mid-traffic
/// handoff, and prints the fleet-wide stats rollup.
fn router_cmd(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let mut listen: Option<String> = None;
    let mut members: Vec<phom_fleet::MemberSpec> = Vec::new();
    let mut members_file: Option<String> = None;
    let mut connect_attempts: u32 = 3;
    let mut connect_backoff_ms: u64 = 50;
    let mut serve_for_ms: Option<u64> = None;
    let mut bench = false;
    let mut fleet_size: usize = 3;
    let mut requests: usize = 256;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Option<&String> {
            *i += 1;
            args.get(*i)
        };
        match args[i].as_str() {
            "--bench" => bench = true,
            "--listen" => {
                listen = Some(
                    flag_value(&mut i)
                        .ok_or("--listen needs an address (e.g. 127.0.0.1:4200)")?
                        .clone(),
                )
            }
            "--members" => {
                members_file = Some(
                    flag_value(&mut i)
                        .ok_or("--members needs a file path")?
                        .clone(),
                )
            }
            "--member" => {
                let spec = flag_value(&mut i).ok_or("--member needs name=addr[@weight]")?;
                members.push(phom_fleet::MemberSpec::parse(spec)?);
            }
            "--connect-attempts" => {
                connect_attempts = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--connect-attempts needs a count")?
            }
            "--connect-backoff-ms" => {
                connect_backoff_ms = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--connect-backoff-ms needs a millisecond count")?
            }
            "--serve-for-ms" => {
                serve_for_ms = Some(
                    flag_value(&mut i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--serve-for-ms needs a millisecond count")?,
                )
            }
            "--fleet-size" => {
                fleet_size = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--fleet-size needs a member count")?
            }
            "--requests" => {
                requests = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--requests needs a count")?
            }
            other => return Err(format!("router: unknown flag '{other}'")),
        }
        i += 1;
    }
    if bench {
        if listen.is_some() {
            return Err("--listen and --bench are mutually exclusive".into());
        }
        return router_bench(fleet_size.max(2), requests.max(1));
    }
    let Some(addr) = listen else {
        return Err(
            "router needs a mode: `--listen ADDR` (with --members/--member) \
                    or `--bench` (the in-process fleet demo)"
                .into(),
        );
    };
    if let Some(file) = members_file {
        let mut from_file =
            phom_fleet::parse_members(&read_file(&file)?).map_err(|e| format!("{file}: {e}"))?;
        from_file.extend(members);
        members = from_file;
    }
    phom_fleet::validate_members(&members)?;
    let n_members = members.len();
    let router = phom_fleet::Router::builder()
        .connect_retry(
            connect_attempts,
            std::time::Duration::from_millis(connect_backoff_ms),
        )
        .bind(addr.as_str(), members)
        .map_err(|e| format!("router listen {addr}: {e}"))?;
    let local = router.local_addr();
    // Announce readiness on stdout immediately — scripts wait for this
    // line before connecting.
    println!("phom_fleet: routing on {local} for {n_members} member(s)");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    match serve_for_ms {
        Some(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    let stats = router.shutdown(std::time::Duration::from_secs(2));
    let mut out = String::new();
    let _ = writeln!(out, "routed on {local} for {n_members} member(s)");
    let _ = writeln!(out, "{}", render_router_stats(&stats));
    Ok(out)
}

fn render_router_stats(stats: &phom_fleet::RouterStats) -> String {
    format!(
        "router: {} connections, {} frames in / {} out, {} submitted, \
         {} delivered, {} member_unavailable, {} handoffs, {} lazy \
         registers, {} drained deregisters, {} tickets open at close",
        stats.connections,
        stats.frames_in,
        stats.frames_out,
        stats.submitted,
        stats.delivered,
        stats.member_unavailable,
        stats.handoffs,
        stats.lazy_registers,
        stats.drained_deregisters,
        stats.open_tickets,
    )
}

/// `phom router --bench`: an in-process fleet (members on loopback, one
/// router in front), a mixed probability/counting workload with a
/// mid-traffic handoff of the hottest instance, and the fleet-wide
/// stats rollup.
fn router_bench(fleet_size: usize, requests: usize) -> Result<String, String> {
    use phom_graph::generate::{self, ProbProfile};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::time::Duration;

    let mut rng = SmallRng::seed_from_u64(0xF1EE7);
    let live = generate::with_probabilities(
        generate::two_way_path(48, 2, &mut rng),
        ProbProfile::default(),
        &mut rng,
    );
    let census = ProbGraph::new(
        live.graph().clone(),
        vec![phom_num::Rational::from_ratio(1, 2); live.graph().n_edges()],
    );
    let q1 = generate::planted_path_query(live.graph(), 3, &mut rng)
        .unwrap_or_else(|| Graph::one_way_path(&[Label(0)]));
    let q2 = generate::planted_path_query(live.graph(), 2, &mut rng)
        .unwrap_or_else(|| Graph::one_way_path(&[Label(1)]));

    let mut servers = Vec::new();
    let mut members = Vec::new();
    for idx in 0..fleet_size {
        let runtime = std::sync::Arc::new(
            phom_serve::Runtime::builder()
                .max_wait(Duration::from_millis(1))
                .build(),
        );
        let server = phom_net::Server::bind("127.0.0.1:0", runtime)
            .map_err(|e| format!("bench member bind: {e}"))?;
        members.push(phom_fleet::MemberSpec {
            name: format!("m{idx}"),
            addr: server.local_addr().to_string(),
            weight: 1.0,
        });
        servers.push(server);
    }
    let router = phom_fleet::Router::bind("127.0.0.1:0", members)
        .map_err(|e| format!("bench router bind: {e}"))?;
    let mut client = phom_net::Client::connect(router.local_addr())
        .map_err(|e| format!("bench connect: {e}"))?;

    let started = std::time::Instant::now();
    let v_live = client.register(&live).map_err(|e| e.to_string())?;
    let v_census = client.register(&census).map_err(|e| e.to_string())?;
    let reqs: Vec<(u64, phom_net::WireRequest)> = (0..requests)
        .map(|k| match k % 3 {
            0 => (v_live, phom_net::WireRequest::probability(q1.clone())),
            1 => (v_census, phom_net::WireRequest::counting(q2.clone())),
            _ => (v_live, phom_net::WireRequest::probability(q2.clone())),
        })
        .collect();
    let mut answered = 0usize;
    for (wave_start, wave) in reqs.chunks(16).enumerate().map(|(w, c)| (w * 16, c)) {
        // Mid-traffic handoff: once, halfway through the run, move the
        // hot instance to a member that does not currently own it.
        if wave_start >= requests / 2 && wave_start < requests / 2 + 16 {
            let fleet = client
                .call_raw(phom_net::Json::obj(vec![(
                    "op",
                    phom_net::Json::str("fleet"),
                )]))
                .map_err(|e| e.to_string())?;
            let hex = phom_net::wire::encode_version(v_live).to_string();
            let owner = fleet
                .get("ok")
                .and_then(|ok| ok.get("placements"))
                .and_then(|p| match p {
                    phom_net::Json::Arr(items) => items
                        .iter()
                        .find(|e| e.get("version").map(|v| v.to_string()).as_deref() == Some(&hex))
                        .and_then(|e| e.get("member"))
                        .and_then(phom_net::Json::as_str)
                        .map(String::from),
                    _ => None,
                })
                .unwrap_or_default();
            let to = (0..fleet_size)
                .map(|i| format!("m{i}"))
                .find(|name| *name != owner)
                .expect("fleet_size >= 2");
            client
                .call_raw(phom_net::Json::obj(vec![
                    ("op", phom_net::Json::str("move")),
                    ("version", phom_net::wire::encode_version(v_live)),
                    ("to", phom_net::Json::str(&to)),
                ]))
                .map_err(|e| e.to_string())?;
        }
        let tickets: Vec<u64> = wave
            .iter()
            .map(|(v, r)| client.submit(*v, r).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        for t in tickets {
            client.wait(t).map_err(|e| e.to_string())?;
            answered += 1;
        }
    }
    let elapsed = started.elapsed();
    let fleet_stats = client.stats().map_err(|e| e.to_string())?;
    let router_stats = router.stats();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet bench: {answered} requests across {fleet_size} members in {:.1} ms \
         ({:.1} µs/request)",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / answered.max(1) as f64,
    );
    let _ = writeln!(out, "{}", render_router_stats(&router_stats));
    if let Some(rollup) = fleet_stats.get("rollup") {
        let field = |name: &str| {
            rollup
                .get(name)
                .and_then(phom_net::Json::as_u64)
                .unwrap_or(0)
        };
        let _ = writeln!(
            out,
            "rollup: {} members up, {} admitted, {} completed, {} rejected, \
             {} cancelled, {} ticks, {} cache hits",
            field("members_available"),
            field("admitted"),
            field("completed"),
            field("rejected"),
            field("cancelled"),
            field("ticks"),
            field("batch_cache_hits"),
        );
        // The rollup's latency histograms are the members' sparse
        // histograms merged bucket-wise by the router.
        let hist = |name: &str| -> phom_obs::Histogram {
            rollup
                .get(name)
                .and_then(|h| phom_net::wire::decode_histogram(h).ok())
                .unwrap_or_default()
        };
        let lane = |h: &phom_obs::Histogram| -> String {
            if h.is_empty() {
                "-".into()
            } else {
                format!(
                    "p50 {} / p99 {}",
                    fmt_ns(h.quantile(0.50)),
                    fmt_ns(h.quantile(0.99)),
                )
            }
        };
        let _ = writeln!(
            out,
            "latency (fleet merged): fast {}, slow {}",
            lane(&hist("request_ns_fast")),
            lane(&hist("request_ns_slow")),
        );
    }
    if let Some(phom_net::Json::Arr(entries)) = fleet_stats.get("members") {
        for entry in entries {
            let name = entry
                .get("name")
                .and_then(phom_net::Json::as_str)
                .unwrap_or("?");
            match entry.get("stats") {
                Some(stats) => {
                    let _ = writeln!(
                        out,
                        "member {name}: {} admitted, {} completed, {} ticks",
                        stats
                            .get("admitted")
                            .and_then(phom_net::Json::as_u64)
                            .unwrap_or(0),
                        stats
                            .get("completed")
                            .and_then(phom_net::Json::as_u64)
                            .unwrap_or(0),
                        stats
                            .get("ticks")
                            .and_then(phom_net::Json::as_u64)
                            .unwrap_or(0),
                    );
                }
                None => {
                    let _ = writeln!(out, "member {name}: unavailable");
                }
            }
        }
    }
    drop(client);
    router.shutdown(Duration::from_secs(1));
    for server in servers {
        server.shutdown(Duration::from_secs(1));
    }
    Ok(out)
}

/// `phom client <query> <instance> --connect ADDR [--trace]`: a
/// one-shot wire client against a `phom serve` front end or a
/// `phom router` fleet front door — register the instance, submit the
/// query, wait for the answer. `--trace` follows up with the `trace`
/// wire op and prints the per-stage span breakdown the serving stack
/// recorded for this request (including the router's `routed` hop when
/// the endpoint is a fleet front door).
fn client_cmd(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let mut files: Vec<String> = Vec::new();
    let mut connect: Option<String> = None;
    let mut show_trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => {
                i += 1;
                connect = Some(
                    args.get(i)
                        .ok_or("--connect needs an address (e.g. 127.0.0.1:4100)")?
                        .clone(),
                );
            }
            "--trace" => show_trace = true,
            other if other.starts_with("--") => {
                return Err(format!("client: unknown flag '{other}'"))
            }
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    let addr =
        connect.ok_or("client needs --connect ADDR (a `phom serve` or `phom router` endpoint)")?;
    let [qfile, hfile] = files.as_slice() else {
        return Err("client needs <query-file> <instance-file> --connect ADDR".into());
    };
    let (query, instance) = parse_inputs(qfile, hfile, read_file)?;
    let mut client = phom_net::Client::connect(addr.as_str())
        .map_err(|e| format!("client connect {addr}: {e}"))?;
    let version = client.register(&instance).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let (ticket, trace) = client
        .submit_traced(version, &phom_net::WireRequest::probability(query))
        .map_err(|e| e.to_string())?;
    let result = client.wait(ticket).map_err(|e| e.to_string())?;
    let wall = started.elapsed();
    let mut out = String::new();
    match result.get("p").and_then(phom_net::Json::as_str) {
        Some(p) => {
            let _ = writeln!(out, "Pr(G ⇝ H) = {p}");
        }
        None => {
            let _ = writeln!(out, "result: {result}");
        }
    }
    let _ = writeln!(out, "answered in {wall:.2?} over {addr}");
    if !show_trace {
        return Ok(out);
    }
    let Some(trace) = trace else {
        let _ = writeln!(out, "trace: endpoint did not echo a trace id");
        return Ok(out);
    };
    let requests = client.trace_spans(trace).map_err(|e| e.to_string())?;
    let Some(req) = requests.iter().find(|r| r.trace == trace) else {
        let _ = writeln!(
            out,
            "trace {trace:#018x}: no spans recorded (aged out of the span ring?)"
        );
        return Ok(out);
    };
    let _ = writeln!(out, "trace {trace:#018x}:");
    for span in &req.spans {
        let detail = if span.detail != 0 {
            format!("  (detail {})", span.detail)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:<9} {:<4} {:>10}{detail}",
            span.stage.name(),
            span.lane.name(),
            fmt_ns(span.nanos),
        );
    }
    let _ = writeln!(
        out,
        "  stages sum {}, wall clock {}",
        fmt_ns(req.total_nanos),
        fmt_ns(wall.as_nanos().min(u128::from(u64::MAX)) as u64),
    );
    Ok(out)
}

/// `phom top --connect ADDR [--interval-ms N] [--iterations N]`: the
/// live stats view over the wire. Works against both a `phom serve`
/// front end (flat snapshot) and a `phom router` fleet front door
/// (rollup shape) — counters plus latency quantiles decoded from the
/// sparse histograms the `stats` op carries. Iterations beyond the
/// first print immediately; the last is the command's output.
fn top_cmd(args: &[String]) -> Result<String, String> {
    let mut connect: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut iterations: u64 = 1;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Option<&String> {
            *i += 1;
            args.get(*i)
        };
        match args[i].as_str() {
            "--connect" => {
                connect = Some(
                    flag_value(&mut i)
                        .ok_or("--connect needs an address (e.g. 127.0.0.1:4100)")?
                        .clone(),
                )
            }
            "--interval-ms" => {
                interval_ms = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--interval-ms needs a millisecond count")?
            }
            "--iterations" => {
                iterations = flag_value(&mut i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--iterations needs a count")?
            }
            other => return Err(format!("top: unknown flag '{other}'")),
        }
        i += 1;
    }
    let addr =
        connect.ok_or("top needs --connect ADDR (a `phom serve` or `phom router` endpoint)")?;
    let mut client =
        phom_net::Client::connect(addr.as_str()).map_err(|e| format!("top connect {addr}: {e}"))?;
    let iterations = iterations.max(1);
    for k in 0..iterations {
        let stats = client.stats().map_err(|e| e.to_string())?;
        let rendered = render_top(&addr, &stats);
        if k + 1 == iterations {
            return Ok(rendered);
        }
        println!("{rendered}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    unreachable!("iterations >= 1 returns from the loop")
}

/// One `top` frame: counters plus histogram quantiles, from either a
/// server's flat stats snapshot or a router's `{router, members,
/// rollup}` shape.
fn render_top(addr: &str, stats: &phom_net::Json) -> String {
    use phom_net::Json;
    let mut out = String::new();
    // A router reply nests the fleet-merged sums under "rollup"; a
    // serve front end answers the flat runtime snapshot directly.
    let (scope, source) = match stats.get("rollup") {
        Some(rollup) => ("fleet", rollup),
        None => ("server", stats),
    };
    let field = |name: &str| source.get(name).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(out, "top {addr} ({scope})");
    if scope == "fleet" {
        let _ = writeln!(out, "members up: {}", field("members_available"));
    }
    let _ = writeln!(
        out,
        "requests: {} admitted, {} completed, {} rejected, {} cancelled, \
         {} shed expired",
        field("admitted"),
        field("completed"),
        field("rejected"),
        field("cancelled"),
        field("shed_expired"),
    );
    let _ = writeln!(
        out,
        "load: queue depth {}, {} ticks, {} workers, {} cache hits",
        field("queue_depth"),
        field("ticks"),
        field("workers"),
        field("batch_cache_hits"),
    );
    let hist = |name: &str| -> phom_obs::Histogram {
        source
            .get(name)
            .and_then(|h| phom_net::wire::decode_histogram(h).ok())
            .unwrap_or_default()
    };
    let quantiles = |label: &str, h: &phom_obs::Histogram| -> String {
        if h.is_empty() {
            format!("  {label:<13} -")
        } else {
            format!(
                "  {label:<13} n={:<6} p50 {:>9} p90 {:>9} p99 {:>9} max {:>9}",
                h.count(),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.90)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.max()),
            )
        }
    };
    let _ = writeln!(out, "latency:");
    let _ = writeln!(
        out,
        "{}",
        quantiles("request(fast)", &hist("request_ns_fast"))
    );
    let _ = writeln!(
        out,
        "{}",
        quantiles("request(slow)", &hist("request_ns_slow"))
    );
    let _ = writeln!(out, "{}", quantiles("queue(fast)", &hist("queue_ns_fast")));
    let _ = writeln!(out, "{}", quantiles("queue(slow)", &hist("queue_ns_slow")));
    let _ = writeln!(out, "{}", quantiles("stage(plan)", &hist("plan_ns")));
    let _ = writeln!(out, "{}", quantiles("stage(eval)", &hist("eval_ns")));
    let _ = writeln!(out, "{}", quantiles("stage(encode)", &hist("encode_ns")));
    out
}

/// Re-interns the query's labels against the instance's label names, so
/// identical names mean identical labels. Unknown names are mapped to
/// fresh labels (they simply never match).
fn align_labels(query: &ParsedGraph, instance_names: &[String]) -> Graph {
    let lookup: HashMap<&str, u32> = instance_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let mut next_fresh = instance_names.len() as u32;
    let mut fresh: HashMap<&str, u32> = HashMap::new();
    let mut b = phom_graph::GraphBuilder::with_vertices(query.graph.n_vertices());
    for e in query.graph.edges() {
        let name = &query.labels[e.label.0 as usize];
        let id = lookup.get(name.as_str()).copied().unwrap_or_else(|| {
            *fresh.entry(name.as_str()).or_insert_with(|| {
                next_fresh += 1;
                next_fresh - 1
            })
        });
        b.edge(e.src, e.dst, Label(id));
    }
    b.build()
}

fn parse_inputs(
    qfile: &str,
    hfile: &str,
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<(Graph, ProbGraph), String> {
    let htext = read_file(hfile)?;
    let hparsed = parse_graph(&htext).map_err(|e| format!("{hfile}: {e}"))?;
    let qtext = read_file(qfile)?;
    let qparsed = parse_graph(&qtext).map_err(|e| format!("{qfile}: {e}"))?;
    if qparsed.probs.iter().any(|p| !p.is_one()) {
        return Err(format!("{qfile}: query edges must not carry probabilities"));
    }
    let query = align_labels(&qparsed, &hparsed.labels);
    Ok((query, hparsed.into_prob_graph()))
}

fn solve_cmd(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
    count_mode: bool,
) -> Result<String, String> {
    let mut files = Vec::new();
    let mut opts = phom_core::SolverOptions::default();
    let mut queries_file: Option<String> = None;
    let mut threads: usize = 1;
    let mut cache_cap: Option<usize> = None;
    let mut show_stats = false;
    let mut deadline_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queries-file" => {
                i += 1;
                let f = args.get(i).ok_or("--queries-file needs a file")?;
                queries_file = Some(f.clone());
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a shard count (0 = all cores)")?;
            }
            "--cache-cap" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--cache-cap needs an entry count")?;
                cache_cap = Some(n);
            }
            "--stats" => show_stats = true,
            "--brute-force" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--brute-force needs a number")?;
                opts.fallback = phom_core::Fallback::BruteForce { max_uncertain: n };
            }
            "--monte-carlo" => {
                i += 1;
                let samples: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--monte-carlo needs a sample count")?;
                opts.fallback = phom_core::Fallback::MonteCarlo {
                    samples,
                    seed: 0x5eed,
                };
            }
            "--dp" => opts.prefer_dp = true,
            "--deadline-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--deadline-ms needs a millisecond count")?;
                deadline_ms = Some(ms);
            }
            "--budget-samples" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--budget-samples needs a sample count")?;
                opts.budget.samples = Some(n);
            }
            "--budget-gates" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--budget-gates needs a gate count")?;
                opts.budget.gates = Some(n);
            }
            "--budget-time-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--budget-time-ms needs a millisecond count")?;
                opts.budget.time = Some(std::time::Duration::from_millis(ms));
            }
            "--on-hard" => {
                i += 1;
                opts.on_hard = match args.get(i).map(String::as_str) {
                    Some("error") => phom_core::OnHard::Error,
                    Some("estimate") => phom_core::OnHard::Estimate,
                    Some(other) => {
                        return Err(format!(
                            "--on-hard: expected error or estimate, got '{other}'"
                        ))
                    }
                    None => return Err("--on-hard needs error or estimate".into()),
                };
            }
            "--precision" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or("--precision needs exact, float:<tol>, or auto[:<tol>]")?;
                opts.precision = parse_precision(v)?;
            }
            f => files.push(f.to_string()),
        }
        i += 1;
    }
    if let Some(qsfile) = queries_file {
        if count_mode {
            return Err("--queries-file applies to solve, not count".into());
        }
        let [hfile] = files.as_slice() else {
            return Err("expected: --queries-file <batch-file> <instance-file>".into());
        };
        let batch = BatchConfig {
            opts,
            threads,
            cache_cap,
            show_stats,
            deadline_ms,
        };
        return batch_solve_cmd(&qsfile, hfile, batch, read_file);
    }
    let [qfile, hfile] = files.as_slice() else {
        return Err("expected: <query-file> <instance-file>".into());
    };
    let (query, instance) = parse_inputs(qfile, hfile, read_file)?;
    // The engine flags apply in single-query mode too (one query means
    // one shard, but the cache bound and --stats output are honored).
    let mut builder = Engine::builder().default_options(opts).threads(threads);
    if let Some(cap) = cache_cap {
        builder = builder.cache_capacity(cap);
    }
    let engine = builder.build(instance);

    let with_deadline = |r: Request| match deadline_ms {
        Some(ms) => r.deadline(std::time::Duration::from_millis(ms)),
        None => r,
    };
    if count_mode {
        let answers = engine.submit(&[with_deadline(Request::probability(query).counting())]);
        return match answers.into_iter().next().expect("one request") {
            Ok(Response::Count {
                worlds,
                uncertain_edges,
            }) => Ok(format!(
                "satisfying worlds: {worlds} (of 2^{uncertain_edges})\n"
            )),
            Ok(other) => unreachable!("counting request answered as {other:?}"),
            Err(SolveError::InvalidQuery(msg)) => Err(format!("instance is not unweighted: {msg}")),
            Err(SolveError::Hard(h)) => Err(format!(
                "#P-hard cell ({}; {}); re-run with --brute-force",
                h.cell, h.prop
            )),
            Err(e) => Err(e.to_string()),
        };
    }

    let (answers, stats) = engine.submit_stats(&[with_deadline(Request::probability(query))]);
    let answer = answers.into_iter().next().expect("one request");
    let mut out = String::new();
    match answer {
        Ok(Response::Probability(sol)) => {
            let _ = writeln!(
                out,
                "Pr(G ⇝ H) = {} ≈ {:.6}",
                sol.probability,
                sol.probability.to_f64()
            );
            let _ = writeln!(out, "route: {:?}", sol.route);
        }
        Ok(Response::Approximate {
            value,
            rel_err_bound,
            route,
        }) => {
            let _ = writeln!(out, "Pr(G ⇝ H) ≈ {value} (rel err ≤ {rel_err_bound:.3e})");
            let _ = writeln!(out, "route: {route:?} [float tier]");
        }
        Ok(Response::Estimate {
            lo,
            hi,
            samples,
            route,
        }) => {
            let _ = writeln!(
                out,
                "Pr(G ⇝ H) ∈ [{lo:.6}, {hi:.6}] (95% CI, {samples} samples)"
            );
            let _ = writeln!(out, "route: {route:?} [estimate tier]");
        }
        Ok(other) => unreachable!("probability request answered as {other:?}"),
        Err(SolveError::Hard(h)) => {
            return Err(format!(
                "#P-hard cell: {} [{}]; re-run with --brute-force, --monte-carlo, \
                 or --on-hard estimate",
                h.cell, h.prop
            ))
        }
        Err(e) => return Err(e.to_string()),
    }
    if show_stats {
        let cache = engine.cache_stats();
        let cap = cache_cap.map_or("∞".to_string(), |n| n.to_string());
        let _ = writeln!(
            out,
            "cache: {} entries (cap {cap}), {} hits, {} misses, {} evictions",
            cache.entries, cache.hits, cache.misses, cache.evictions,
        );
        let _ = writeln!(
            out,
            "precision: {} float-evaluated, {} escalations",
            stats.float_evaluated, stats.escalations,
        );
    }
    Ok(out)
}

/// Batch-mode configuration collected from the `solve` flags.
struct BatchConfig {
    opts: phom_core::SolverOptions,
    threads: usize,
    cache_cap: Option<usize>,
    show_stats: bool,
    deadline_ms: Option<u64>,
}

/// The `--queries-file` batch mode: parse every `---`-separated query
/// section, submit the whole set as one `Engine::submit` batch, and
/// report the batch statistics (plus cache counters under `--stats`).
fn batch_solve_cmd(
    qsfile: &str,
    hfile: &str,
    config: BatchConfig,
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let htext = read_file(hfile)?;
    let hparsed = parse_graph(&htext).map_err(|e| format!("{hfile}: {e}"))?;
    let qstext = read_file(qsfile)?;
    let mut queries = Vec::new();
    for (si, section) in qstext.split("\n---").enumerate() {
        let section = section.trim_start_matches("---");
        if section.trim().is_empty() {
            continue;
        }
        let qparsed =
            parse_graph(section).map_err(|e| format!("{qsfile}: query {}: {e}", si + 1))?;
        if qparsed.probs.iter().any(|p| !p.is_one()) {
            return Err(format!(
                "{qsfile}: query {}: query edges must not carry probabilities",
                si + 1
            ));
        }
        queries.push(align_labels(&qparsed, &hparsed.labels));
    }
    if queries.is_empty() {
        return Err(format!("{qsfile}: no queries found"));
    }
    let instance = hparsed.into_prob_graph();
    let mut builder = Engine::builder()
        .default_options(config.opts)
        .threads(config.threads);
    if let Some(cap) = config.cache_cap {
        builder = builder.cache_capacity(cap);
    }
    let engine = builder.build(instance);
    let requests: Vec<Request> = queries
        .into_iter()
        .map(|q| {
            let r = Request::probability(q);
            match config.deadline_ms {
                Some(ms) => r.deadline(std::time::Duration::from_millis(ms)),
                None => r,
            }
        })
        .collect();
    let (results, stats) = engine.submit_stats(&requests);
    let mut out = String::new();
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(Response::Approximate {
                value,
                rel_err_bound,
                route,
            }) => {
                let _ = writeln!(
                    out,
                    "[{i}] Pr(G ⇝ H) ≈ {value:.6} (rel err ≤ {rel_err_bound:.3e})  (route {route:?})"
                );
            }
            Ok(Response::Estimate {
                lo,
                hi,
                samples,
                route,
            }) => {
                let _ = writeln!(
                    out,
                    "[{i}] Pr(G ⇝ H) ∈ [{lo:.6}, {hi:.6}] (95% CI, {samples} samples, route {route:?})"
                );
            }
            Ok(response) => {
                let sol = response.solution().expect("probability request");
                let _ = writeln!(
                    out,
                    "[{i}] Pr(G ⇝ H) = {} ≈ {:.6}  (route {:?})",
                    sol.probability,
                    sol.probability.to_f64(),
                    sol.route
                );
            }
            Err(SolveError::Hard(h)) => {
                let _ = writeln!(out, "[{i}] #P-hard cell: {} [{}]", h.cell, h.prop);
            }
            Err(e) => {
                let _ = writeln!(out, "[{i}] error: {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "batch: {} queries, {} unique; {} via {} shard arena(s) ({} gates), \
         {} general; {} threads",
        stats.queries,
        stats.unique_queries,
        stats.circuit_batched,
        stats.shards,
        stats.shared_gates,
        stats.general_solved,
        engine.threads(),
    );
    if config.show_stats {
        let cache = engine.cache_stats();
        let cap = config.cache_cap.map_or("∞".to_string(), |n| n.to_string());
        let _ = writeln!(
            out,
            "cache: {} entries (cap {cap}), {} hits, {} misses, {} evictions",
            cache.entries, cache.hits, cache.misses, cache.evictions,
        );
        let _ = writeln!(
            out,
            "precision: {} float-evaluated, {} escalations",
            stats.float_evaluated, stats.escalations,
        );
    }
    Ok(out)
}

fn classify_cmd(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let [file] = args else {
        return Err("expected: <graph-file>".into());
    };
    let text = read_file(file)?;
    let parsed = parse_graph(&text).map_err(|e| format!("{file}: {e}"))?;
    let c = classify(&parsed.graph);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "vertices: {}, edges: {}, labels: {:?}",
        parsed.graph.n_vertices(),
        parsed.graph.n_edges(),
        parsed.labels
    );
    let _ = writeln!(
        out,
        "connected: {} ({} components)",
        c.is_connected(),
        c.components.len()
    );
    let _ = writeln!(
        out,
        "setting: {}",
        if c.labeled { "labeled" } else { "unlabeled" }
    );
    let _ = writeln!(
        out,
        "classes: 1WP={} 2WP={} DWT={} PT={}",
        c.flags.owp, c.flags.twp, c.flags.dwt, c.flags.pt
    );
    let _ = writeln!(out, "most specific: {:?}", c.most_specific());
    let graded = phom_graph::graded::level_mapping(&parsed.graph);
    match graded {
        Some(lm) => {
            let _ = writeln!(
                out,
                "graded: yes (difference of levels {})",
                lm.difference_of_levels()
            );
        }
        None => {
            let _ = writeln!(out, "graded: no (directed cycle or jumping edge)");
        }
    }
    Ok(out)
}

fn tables_cmd() -> String {
    let mut out = String::new();
    for (title, table, union_rows) in [
        (
            "Table 1: PHom (unlabeled), disconnected queries",
            tables::TableId::T1UnlabeledDisconnected,
            true,
        ),
        (
            "Table 2: PHom (labeled), connected queries",
            tables::TableId::T2LabeledConnected,
            false,
        ),
        (
            "Table 3: PHom (unlabeled), connected queries",
            tables::TableId::T3UnlabeledConnected,
            false,
        ),
    ] {
        let _ = writeln!(out, "\n{title}");
        let _ = write!(out, "{:>14} |", "query\\instance");
        for col in tables::CLASSES {
            let _ = write!(out, "{:>26}", tables::class_name(col, false));
        }
        let _ = writeln!(out);
        for row in tables::CLASSES {
            let _ = write!(out, "{:>14} |", tables::class_name(row, union_rows));
            for col in tables::CLASSES {
                let cell = tables::lookup(table, row, col);
                let text = match cell {
                    tables::CellStatus::PTime(p) => format!("PTIME [{p}]"),
                    tables::CellStatus::Hard(p) => format!("#P-hard [{p}]"),
                };
                let _ = write!(out, "{text:>26}");
            }
            let _ = writeln!(out);
        }
    }
    out
}

fn walk_cmd(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let [hfile, m_str] = args else {
        return Err("expected: <instance-file> <m>".into());
    };
    let m: usize = m_str
        .parse()
        .map_err(|_| format!("'{m_str}' is not a length"))?;
    let htext = read_file(hfile)?;
    let hparsed = parse_graph(&htext).map_err(|e| format!("{hfile}: {e}"))?;
    if hparsed.labels.len() > 1 {
        return Err("walk treats the instance as unlabeled; found multiple labels".into());
    }
    let instance = hparsed.into_prob_graph();
    let nice = phom_graph::treedecomp::NiceDecomposition::heuristic(instance.graph());
    let p: phom_num::Rational =
        phom_core::algo::walk_on_tw::long_walk_probability(&instance, m, &nice);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "decomposition width: {} ({} nice nodes)",
        nice.width(),
        nice.n_nodes()
    );
    let _ = writeln!(out, "Pr(∃ directed walk ≥ {m}) = {} ≈ {:.6}", p, p.to_f64());
    Ok(out)
}

fn influence_cmd(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let [qfile, hfile] = args else {
        return Err("expected: <query-file> <instance-file>".into());
    };
    let (query, instance) = parse_inputs(qfile, hfile, read_file)?;
    let Some((grads, route)) =
        phom_core::sensitivity::influences::<phom_num::Rational>(&query, &instance)
    else {
        return Err(
            "no circuit route for these shapes (need a connected query on a 2WP \
             instance, or a 1WP query on a DWT instance); see \
             phom_core::sensitivity::influences_by_conditioning for other cells"
                .into(),
        );
    };
    let mut out = String::new();
    let _ = writeln!(out, "route: {route:?}");
    let _ = writeln!(
        out,
        "{:>6} {:>16} {:>10} (src -label-> dst)",
        "edge", "influence", "π(e)"
    );
    for (e, inf) in phom_core::sensitivity::rank_edges(grads) {
        let edge = instance.graph().edge(e);
        let _ = writeln!(
            out,
            "{:>6} {:>16} {:>10} ({} -{}-> {})",
            e,
            format!("{:.6}", inf.to_f64()),
            instance.prob(e).to_string(),
            edge.src,
            edge.label.name(),
            edge.dst
        );
    }
    Ok(out)
}

fn ucq_cmd(
    args: &[String],
    read_file: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let [hfile, qfiles @ ..] = args else {
        return Err("expected: <instance-file> <query-file> [<query-file> ...]".into());
    };
    if qfiles.is_empty() {
        return Err("expected at least one query file".into());
    }
    let htext = read_file(hfile)?;
    let hparsed = parse_graph(&htext).map_err(|e| format!("{hfile}: {e}"))?;
    let mut disjuncts = Vec::new();
    for qfile in qfiles {
        let qtext = read_file(qfile)?;
        let qparsed = parse_graph(&qtext).map_err(|e| format!("{qfile}: {e}"))?;
        if qparsed.probs.iter().any(|p| !p.is_one()) {
            return Err(format!("{qfile}: query edges must not carry probabilities"));
        }
        disjuncts.push(align_labels(&qparsed, &hparsed.labels));
    }
    let instance = hparsed.into_prob_graph();
    let ucq = phom_core::ucq::Ucq::new(disjuncts);
    match phom_core::ucq::probability::<phom_num::Rational>(&ucq, &instance) {
        Some((p, route)) => Ok(format!(
            "Pr(G₁ ∨ … ∨ G_{} ⇝ H) = {} ≈ {:.6}\nroute: {route:?}\n",
            ucq.len(),
            p,
            p.to_f64()
        )),
        None => Err(
            "no tractable UCQ route for these shapes (see phom_core::ucq); \
             the problem is #P-hard beyond them"
                .into(),
        ),
    }
}

/// Convenience used by the binary: read from the real filesystem.
pub fn read_fs(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_fs<'a>(
        files: &'a [(&'a str, &'a str)],
    ) -> impl Fn(&str) -> Result<String, String> + 'a {
        move |path: &str| {
            files
                .iter()
                .find(|(n, _)| *n == path)
                .map(|(_, c)| c.to_string())
                .ok_or_else(|| format!("{path}: not found"))
        }
    }

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn solve_tractable_input() {
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\nedge 1 2 S\n"),
            ("h.pg", "vertices 3\nedge 0 1 R 1/2\nedge 1 2 S 3/4\n"),
        ]);
        let out = run(&args(&["solve", "q.pg", "h.pg"]), &fs).unwrap();
        assert!(out.contains("3/8"), "{out}");
        assert!(out.contains("Prop411"), "{out}"); // a 1WP instance routes via 2WP
    }

    #[test]
    fn solve_reports_hard_cell() {
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\n"),
            // A 2-cycle instance: beyond ⊔PT.
            ("h.pg", "edge 0 1 R 1/2\nedge 1 0 R 1/2\n"),
        ]);
        let err = run(&args(&["solve", "q.pg", "h.pg"]), &fs).unwrap_err();
        assert!(err.contains("Prop 5.1"), "{err}");
        // With brute force it resolves: Pr(∃ R edge) = 3/4.
        let out = run(
            &args(&["solve", "q.pg", "h.pg", "--brute-force", "10"]),
            &fs,
        )
        .unwrap();
        assert!(out.contains("3/4"), "{out}");
    }

    #[test]
    fn label_names_align_across_files() {
        // The instance interns S first; the query uses R only — names must
        // match by string, not by intern order.
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\n"),
            ("h.pg", "vertices 3\nedge 0 1 S\nedge 1 2 R 1/2\n"),
        ]);
        let out = run(&args(&["solve", "q.pg", "h.pg"]), &fs).unwrap();
        assert!(out.contains("= 1/2"), "{out}");
        // A query label absent from the instance gives probability 0.
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 Zap\n"),
            ("h.pg", "vertices 3\nedge 0 1 S\nedge 1 2 R 1/2\n"),
        ]);
        let out = run(&args(&["solve", "q.pg", "h.pg"]), &fs).unwrap();
        assert!(out.contains("= 0"), "{out}");
    }

    #[test]
    fn count_mode() {
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\n"),
            ("h.pg", "vertices 3\nedge 0 1 R 1/2\nedge 1 2 R 1/2\n"),
        ]);
        let out = run(&args(&["count", "q.pg", "h.pg"]), &fs).unwrap();
        assert!(out.contains("satisfying worlds: 3 (of 2^2)"), "{out}");
        // Non-½ probabilities are rejected.
        let fs = fake_fs(&[("q.pg", "edge 0 1 R\n"), ("h.pg", "edge 0 1 R 1/3\n")]);
        let err = run(&args(&["count", "q.pg", "h.pg"]), &fs).unwrap_err();
        assert!(err.contains("not unweighted"), "{err}");
    }

    #[test]
    fn classify_output() {
        let fs = fake_fs(&[("g.pg", "edge 0 1 A\nedge 0 2 A\nedge 2 3 B\n")]);
        let out = run(&args(&["classify", "g.pg"]), &fs).unwrap();
        assert!(out.contains("DWT=true"), "{out}");
        assert!(out.contains("1WP=false"), "{out}");
        assert!(out.contains("labeled"), "{out}");
        assert!(out.contains("graded: yes"), "{out}");
    }

    #[test]
    fn tables_output() {
        let out = run(&args(&["tables"]), &fake_fs(&[])).unwrap();
        assert!(out.contains("Table 2"));
        assert!(out.contains("Prop 4.10"));
        assert!(out.contains("#P-hard [Prop 5.6]"));
    }

    #[test]
    fn query_with_probabilities_rejected() {
        let fs = fake_fs(&[("q.pg", "edge 0 1 R 1/2\n"), ("h.pg", "edge 0 1 R 1/2\n")]);
        let err = run(&args(&["solve", "q.pg", "h.pg"]), &fs).unwrap_err();
        assert!(err.contains("must not carry probabilities"), "{err}");
    }

    #[test]
    fn usage_and_unknown_commands() {
        assert!(run(&[], &fake_fs(&[])).unwrap().contains("commands:"));
        assert!(run(&args(&["bogus"]), &fake_fs(&[])).is_err());
    }

    #[test]
    fn walk_command() {
        // A 2-cycle instance (beyond polytrees): walk ≥ 2 needs both
        // edges... or one edge twice? One edge a→b alone gives walk 1;
        // both give cycles, so any length. Pr = 1/4.
        let fs = fake_fs(&[("h.pg", "edge 0 1 R 1/2\nedge 1 0 R 1/2\n")]);
        let out = run(&args(&["walk", "h.pg", "2"]), &fs).unwrap();
        assert!(out.contains("= 1/4"), "{out}");
        assert!(out.contains("width"), "{out}");
        // m = 0 is certain.
        let out = run(&args(&["walk", "h.pg", "0"]), &fs).unwrap();
        assert!(out.contains("= 1 "), "{out}");
        // Labeled instances are rejected.
        let fs = fake_fs(&[("h.pg", "edge 0 1 R 1/2\nedge 1 2 S 1/2\n")]);
        assert!(run(&args(&["walk", "h.pg", "1"]), &fs).is_err());
    }

    #[test]
    fn influence_command() {
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\nedge 1 2 S\n"),
            (
                "h.pg",
                "vertices 4\nedge 0 1 R 1/2\nedge 1 2 S 3/4\nedge 2 3 R 1/2\n",
            ),
        ]);
        let out = run(&args(&["influence", "q.pg", "h.pg"]), &fs).unwrap();
        assert!(out.contains("route: Circuit2wp"), "{out}");
        // Edge 2 (the trailing R) is irrelevant to R·S: influence 0.
        assert!(out.lines().last().unwrap().contains("0.000000"), "{out}");
        // Shapes without a circuit route are refused with advice.
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\n"),
            ("h.pg", "edge 0 1 R 1/2\nedge 1 0 R 1/2\n"),
        ]);
        let err = run(&args(&["influence", "q.pg", "h.pg"]), &fs).unwrap_err();
        assert!(err.contains("no circuit route"), "{err}");
    }

    #[test]
    fn ucq_command() {
        // R·S ∨ S·S on a DWT instance.
        let fs = fake_fs(&[
            (
                "h.pg",
                "vertices 4\nedge 0 1 R 1/2\nedge 1 2 S 1/2\nedge 1 3 S 1/2\n",
            ),
            ("q1.pg", "edge 0 1 R\nedge 1 2 S\n"),
            ("q2.pg", "edge 0 1 S\nedge 1 2 S\n"),
        ]);
        let out = run(&args(&["ucq", "h.pg", "q1.pg", "q2.pg"]), &fs).unwrap();
        assert!(out.contains("UnionLineageDwt"), "{out}");
        // Pr(R·S) = 1/2·(1 − 1/2·1/2) = 3/8; S·S never matches (S edges
        // are siblings), so the union equals the first disjunct.
        assert!(out.contains("= 3/8"), "{out}");
        // No queries: usage error.
        assert!(run(&args(&["ucq", "h.pg"]), &fs).is_err());
    }

    #[test]
    fn batch_mode_solves_a_query_file() {
        let fs = fake_fs(&[
            (
                "qs.pg",
                "edge 0 1 R\nedge 1 2 S\n---\nedge 0 1 R\n---\nedge 0 1 R\nedge 1 2 S\n---\nedge 0 1 Zap\n",
            ),
            ("h.pg", "vertices 3\nedge 0 1 R 1/2\nedge 1 2 S 3/4\n"),
        ]);
        let out = run(&args(&["solve", "--queries-file", "qs.pg", "h.pg"]), &fs).unwrap();
        // Per-query lines, in order; the repeated query interns to one.
        assert!(out.contains("[0] Pr(G ⇝ H) = 3/8"), "{out}");
        assert!(out.contains("[1] Pr(G ⇝ H) = 1/2"), "{out}");
        assert!(out.contains("[2] Pr(G ⇝ H) = 3/8"), "{out}");
        assert!(out.contains("[3] Pr(G ⇝ H) = 0"), "{out}");
        assert!(out.contains("4 queries, 3 unique"), "{out}");
        // Hard cells report inline instead of aborting the batch.
        let fs = fake_fs(&[
            ("qs.pg", "edge 0 1 R\n"),
            ("h.pg", "edge 0 1 R 1/2\nedge 1 0 R 1/2\n"),
        ]);
        let out = run(&args(&["solve", "--queries-file", "qs.pg", "h.pg"]), &fs).unwrap();
        assert!(out.contains("[0] #P-hard cell"), "{out}");
    }

    #[test]
    fn batch_mode_threads_and_stats_flags() {
        let fs = fake_fs(&[
            (
                "qs.pg",
                "edge 0 1 R\nedge 1 2 S\n---\nedge 0 1 R\n---\nedge 0 1 R\nedge 1 2 S\n",
            ),
            ("h.pg", "vertices 3\nedge 0 1 R 1/2\nedge 1 2 S 3/4\n"),
        ]);
        let sequential = run(&args(&["solve", "--queries-file", "qs.pg", "h.pg"]), &fs).unwrap();
        let sharded = run(
            &args(&[
                "solve",
                "--queries-file",
                "qs.pg",
                "h.pg",
                "--threads",
                "3",
                "--cache-cap",
                "8",
                "--stats",
            ]),
            &fs,
        )
        .unwrap();
        // Bit-identical per-query lines regardless of shard width.
        for i in 0..3 {
            let line = |s: &str| {
                s.lines()
                    .find(|l| l.starts_with(&format!("[{i}]")))
                    .unwrap()
                    .to_string()
            };
            assert_eq!(line(&sequential), line(&sharded), "query {i}");
        }
        assert!(sharded.contains("3 threads"), "{sharded}");
        assert!(sharded.contains("cache:"), "{sharded}");
        assert!(sharded.contains("(cap 8)"), "{sharded}");
        assert!(!sequential.contains("cache:"), "{sequential}");
        // Bad flag values are reported.
        assert!(run(
            &args(&["solve", "--queries-file", "qs.pg", "h.pg", "--threads", "x"]),
            &fs
        )
        .is_err());
        assert!(run(
            &args(&["solve", "--queries-file", "qs.pg", "h.pg", "--cache-cap"]),
            &fs
        )
        .is_err());
    }

    #[test]
    fn precision_flag_selects_the_float_tier() {
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\nedge 1 2 S\n"),
            ("h.pg", "vertices 3\nedge 0 1 R 1/2\nedge 1 2 S 3/4\n"),
        ]);
        // Float tier: an approximate answer with a certified bound.
        let out = run(
            &args(&[
                "solve",
                "q.pg",
                "h.pg",
                "--precision",
                "float:1e-6",
                "--stats",
            ]),
            &fs,
        )
        .unwrap();
        assert!(out.contains("≈ 0.375"), "{out}");
        assert!(out.contains("rel err ≤"), "{out}");
        assert!(out.contains("float tier"), "{out}");
        assert!(out.contains("1 float-evaluated, 0 escalations"), "{out}");
        // Auto with an impossible tolerance escalates back to exact.
        let out = run(
            &args(&["solve", "q.pg", "h.pg", "--precision", "auto:0", "--stats"]),
            &fs,
        )
        .unwrap();
        assert!(out.contains("= 3/8"), "{out}");
        assert!(out.contains("0 float-evaluated, 1 escalations"), "{out}");
        // `exact` and bare `auto` (1e-9 tolerance) parse too.
        assert!(run(
            &args(&["solve", "q.pg", "h.pg", "--precision", "exact"]),
            &fs
        )
        .is_ok());
        assert!(run(
            &args(&["solve", "q.pg", "h.pg", "--precision", "auto"]),
            &fs
        )
        .is_ok());
        // Batch mode renders approximate lines and the escalation counters.
        let fs = fake_fs(&[
            ("qs.pg", "edge 0 1 R\nedge 1 2 S\n---\nedge 0 1 R\n"),
            ("h.pg", "vertices 3\nedge 0 1 R 1/2\nedge 1 2 S 3/4\n"),
        ]);
        let out = run(
            &args(&[
                "solve",
                "--queries-file",
                "qs.pg",
                "h.pg",
                "--precision",
                "float:1e-6",
                "--stats",
            ]),
            &fs,
        )
        .unwrap();
        assert!(out.contains("[0] Pr(G ⇝ H) ≈ 0.375"), "{out}");
        assert!(out.contains("2 float-evaluated"), "{out}");
        // Malformed values are typed errors.
        for bad in ["float", "float:x", "auto:-1", "float:inf", "sometimes"] {
            assert!(
                run(&args(&["solve", "q.pg", "h.pg", "--precision", bad]), &fs).is_err(),
                "'{bad}' should be rejected"
            );
        }
    }

    #[test]
    fn batch_mode_input_errors() {
        let fs = fake_fs(&[("qs.pg", "---\n"), ("h.pg", "edge 0 1 R 1/2\n")]);
        let err = run(&args(&["solve", "--queries-file", "qs.pg", "h.pg"]), &fs).unwrap_err();
        assert!(err.contains("no queries"), "{err}");
        let fs = fake_fs(&[("qs.pg", "edge 0 1 R 1/2\n"), ("h.pg", "edge 0 1 R 1/2\n")]);
        let err = run(&args(&["solve", "--queries-file", "qs.pg", "h.pg"]), &fs).unwrap_err();
        assert!(err.contains("must not carry probabilities"), "{err}");
        let err = run(
            &args(&["count", "--queries-file", "qs.pg", "h.pg"]),
            &fake_fs(&[]),
        )
        .unwrap_err();
        assert!(err.contains("not count"), "{err}");
    }

    #[test]
    fn serve_bench_drives_the_runtime() {
        let out = run(
            &args(&[
                "serve",
                "--bench",
                "--requests",
                "40",
                "--producers",
                "3",
                "--max-batch",
                "8",
                "--max-wait-ms",
                "1",
                "--queue-cap",
                "16",
                "--workers",
                "2",
                "--precision",
                "float:1e-6",
            ]),
            &fake_fs(&[]),
        )
        .unwrap();
        assert!(out.contains("served 40 requests"), "{out}");
        assert!(out.contains("cross-checked"), "{out}");
        assert!(out.contains("ticks:"), "{out}");
        assert!(out.contains("cache:"), "{out}");
        assert!(out.contains("workers 2"), "{out}");
        // The lane and degradation books are printed — and balanced: a
        // clean bench run sheds nothing and leaves no ticket open.
        assert!(out.contains("lanes:"), "{out}");
        assert!(out.contains("0 shed expired"), "{out}");
        assert!(out.contains("0 tickets open"), "{out}");
        // Half the synthetic load is float-tier probability requests.
        assert!(out.contains("float tier:"), "{out}");
        assert!(!out.contains("float tier: 0 answered"), "{out}");
    }

    #[test]
    fn serve_bench_net_routes_over_loopback_v2() {
        let out = run(
            &args(&[
                "serve",
                "--bench",
                "--net",
                "--requests",
                "40",
                "--producers",
                "3",
                "--max-batch",
                "8",
                "--max-wait-ms",
                "1",
                "--workers",
                "2",
                "--metrics",
            ]),
            &fake_fs(&[]),
        )
        .unwrap();
        assert!(
            out.contains("served 40 requests over loopback TCP"),
            "{out}"
        );
        assert!(out.contains("cross-checked"), "{out}");
        // Every producer connection upgraded at `hello`, every delivery
        // was a push, and the drain left the books at zero.
        assert!(
            out.contains("(3 upgraded to v2)") || out.contains("(4 upgraded to v2)"),
            "{out}"
        );
        assert!(out.contains("pushed completions"), "{out}");
        assert!(out.contains("0 in flight, 0 tickets open"), "{out}");
        // --metrics includes the front end's own counters alongside the
        // runtime's (the names CI greps for).
        assert!(out.contains("phom_net_inflight"), "{out}");
        assert!(out.contains("phom_net_pushed_total"), "{out}");
        assert!(out.contains("phom_requests_completed_total"), "{out}");
    }

    #[test]
    fn serve_flag_errors() {
        // serve without a mode explains both of them.
        let err = run(&args(&["serve"]), &fake_fs(&[])).unwrap_err();
        assert!(err.contains("--bench"), "{err}");
        assert!(err.contains("--listen"), "{err}");
        // --net without --bench is a typed usage error.
        let err = run(&args(&["serve", "--net"]), &fake_fs(&[])).unwrap_err();
        assert!(err.contains("--net requires --bench"), "{err}");
        assert!(run(&args(&["serve", "--max-batch"]), &fake_fs(&[])).is_err());
        assert!(run(&args(&["serve", "--bogus"]), &fake_fs(&[])).is_err());
        assert!(run(&args(&["serve", "--listen"]), &fake_fs(&[])).is_err());
        assert!(run(&args(&["serve", "--share-arena-at", "x"]), &fake_fs(&[])).is_err());
        // --listen and --bench are exclusive modes.
        let err = run(
            &args(&["serve", "--listen", "127.0.0.1:0", "--bench"]),
            &fake_fs(&[]),
        )
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        // An unbindable address is a typed error, not a panic.
        assert!(run(
            &args(&["serve", "--listen", "definitely-not-an-address"]),
            &fake_fs(&[])
        )
        .is_err());
    }

    #[test]
    fn serve_listen_bounded_run() {
        // A bounded listen run: bind an ephemeral port, serve briefly
        // with the adaptive controller on, drain, and summarize.
        let out = run(
            &args(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--serve-for-ms",
                "50",
                "--adaptive",
                "--share-arena-at",
                "8",
                "--workers",
                "2",
            ]),
            &fake_fs(&[]),
        )
        .unwrap();
        assert!(out.contains("served on 127.0.0.1:"), "{out}");
        assert!(out.contains("net: 0 connections"), "{out}");
        assert!(out.contains("runtime: 0 admitted"), "{out}");
        // 'off' disables cross-shard sharing without erroring.
        let out = run(
            &args(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--serve-for-ms",
                "10",
                "--share-arena-at",
                "off",
            ]),
            &fake_fs(&[]),
        )
        .unwrap();
        assert!(out.contains("served on"), "{out}");
    }

    #[test]
    fn serve_listen_drain_flushes_queued_tickets() {
        // Pin the bounded-exit drain: with a patient batcher (10 s
        // max_wait, nothing fills a 128-batch), requests submitted
        // during the serve window sit queued until the window closes.
        // The exit path must flush them through final ticks while the
        // server still answers polls — not drop the listener on
        // tickets that are still queued.
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            listen_cmd(ListenConfig {
                addr: "127.0.0.1:0".into(),
                max_batch: 128,
                max_wait_ms: 10_000,
                queue_cap: 1024,
                workers: 2,
                adaptive: false,
                share_arena_at: Some(32),
                serve_for_ms: Some(500),
                ready: Some(tx),
            })
        });
        let addr = rx.recv().unwrap();
        let mut client = phom_net::Client::connect(addr).unwrap();
        let h = ProbGraph::new(
            Graph::directed_path(2),
            vec![phom_num::Rational::from_ratio(1, 2); 2],
        );
        let version = client.register(&h).unwrap();
        let query = Graph::directed_path(1);
        let tickets: Vec<u64> = (0..4)
            .map(|_| {
                client
                    .submit(version, &phom_net::WireRequest::probability(query.clone()))
                    .unwrap()
            })
            .collect();
        // Real answers arrive once the drain fires — never a closed
        // connection or an orphaned ticket.
        for t in tickets {
            let answer = client.wait(t).unwrap();
            assert_eq!(
                answer.get("p").and_then(phom_net::Json::as_str),
                Some("3/4"),
                "{answer}"
            );
        }
        drop(client);
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("4 admitted, 4 completed"), "{out}");
        assert!(out.contains("0 tickets open at close"), "{out}");
    }

    #[test]
    fn router_flag_errors() {
        let fs = fake_fs(&[("fleet.txt", "a 127.0.0.1:1\nb 127.0.0.1:2\n")]);
        // router without a mode explains both of them.
        let err = run(&args(&["router"]), &fs).unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        assert!(err.contains("--bench"), "{err}");
        // --listen and --bench are exclusive modes.
        let err = run(
            &args(&["router", "--bench", "--listen", "127.0.0.1:0"]),
            &fs,
        )
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        // A fleet needs at least one member before it can listen.
        let err = run(&args(&["router", "--listen", "127.0.0.1:0"]), &fs).unwrap_err();
        assert!(err.contains("at least one member"), "{err}");
        // Malformed specs, missing files, bad values: typed errors.
        assert!(run(&args(&["router", "--listen", "x", "--member", "nope"]), &fs).is_err());
        assert!(run(
            &args(&["router", "--listen", "x", "--members", "missing.txt"]),
            &fs
        )
        .is_err());
        assert!(run(&args(&["router", "--bogus"]), &fs).is_err());
        assert!(run(&args(&["router", "--connect-attempts", "x"]), &fs).is_err());
        assert!(run(&args(&["router", "--member"]), &fs).is_err());
    }

    #[test]
    fn router_listen_bounded_run() {
        // A bounded router run against members that are not up: the
        // router binds and serves anyway (member connections are
        // lazy), then reports clean books at close.
        let fs = fake_fs(&[(
            "fleet.txt",
            "# demo fleet\na 127.0.0.1:7451 2\nb=127.0.0.1:7452@0.5\n",
        )]);
        let out = run(
            &args(&[
                "router",
                "--listen",
                "127.0.0.1:0",
                "--members",
                "fleet.txt",
                "--serve-for-ms",
                "50",
                "--connect-attempts",
                "1",
                "--connect-backoff-ms",
                "1",
            ]),
            &fs,
        )
        .unwrap();
        assert!(out.contains("routed on 127.0.0.1:"), "{out}");
        assert!(out.contains("for 2 member(s)"), "{out}");
        assert!(out.contains("0 tickets open at close"), "{out}");
    }

    #[test]
    fn router_bench_drives_a_fleet() {
        let out = run(
            &args(&["router", "--bench", "--fleet-size", "2", "--requests", "24"]),
            &fake_fs(&[]),
        )
        .unwrap();
        assert!(
            out.contains("fleet bench: 24 requests across 2 members"),
            "{out}"
        );
        assert!(out.contains("1 handoffs"), "{out}");
        assert!(out.contains("0 tickets open at close"), "{out}");
        assert!(out.contains("rollup: 2 members up"), "{out}");
    }

    #[test]
    fn degradation_flags() {
        let hard = fake_fs(&[
            ("q.pg", "edge 0 1 R\n"),
            // A 2-cycle instance: a #P-hard cell for any query.
            ("h.pg", "edge 0 1 R 1/2\nedge 1 0 R 1/2\n"),
        ]);
        // The default hard-cell error now advertises the escape hatch.
        let err = run(&args(&["solve", "q.pg", "h.pg"]), &hard).unwrap_err();
        assert!(err.contains("--on-hard estimate"), "{err}");
        // Opting in degrades to a certified interval; the sample budget
        // caps the Monte-Carlo run.
        let out = run(
            &args(&[
                "solve",
                "q.pg",
                "h.pg",
                "--on-hard",
                "estimate",
                "--budget-samples",
                "2000",
            ]),
            &hard,
        )
        .unwrap();
        assert!(out.contains("95% CI, 2000 samples"), "{out}");
        assert!(out.contains("estimate tier"), "{out}");
        // The true Pr(∃ R edge) = 3/4 lies inside the printed interval.
        let line = out.lines().next().unwrap();
        let (lo, rest) = line
            .split_once('[')
            .and_then(|(_, r)| r.split_once(','))
            .unwrap();
        let hi = rest.trim_start().split_once(']').unwrap().0;
        let (lo, hi): (f64, f64) = (lo.parse().unwrap(), hi.parse().unwrap());
        assert!(lo <= 0.75 && 0.75 <= hi, "{out}");

        // An already-expired deadline is a typed error, never a stale
        // (or slow) answer — even on a tractable input.
        let easy = fake_fs(&[("q.pg", "edge 0 1 R\n"), ("h.pg", "edge 0 1 R 1/2\n")]);
        let err = run(
            &args(&["solve", "q.pg", "h.pg", "--deadline-ms", "0"]),
            &easy,
        )
        .unwrap_err();
        assert!(err.contains("deadline exceeded"), "{err}");
        // Count mode honors the deadline too.
        let half = fake_fs(&[("q.pg", "edge 0 1 R\n"), ("h.pg", "edge 0 1 R 1/2\n")]);
        let err = run(
            &args(&["count", "q.pg", "h.pg", "--deadline-ms", "0"]),
            &half,
        )
        .unwrap_err();
        assert!(err.contains("deadline exceeded"), "{err}");
        // Batch mode reports per-query deadline errors inline.
        let batch = fake_fs(&[("qs.pg", "edge 0 1 R\n"), ("h.pg", "edge 0 1 R 1/2\n")]);
        let out = run(
            &args(&[
                "solve",
                "--queries-file",
                "qs.pg",
                "h.pg",
                "--deadline-ms",
                "0",
            ]),
            &batch,
        )
        .unwrap();
        assert!(out.contains("[0] error: deadline exceeded"), "{out}");

        // Malformed values are typed errors, not panics.
        for bad in [
            &["solve", "q.pg", "h.pg", "--on-hard", "sometimes"][..],
            &["solve", "q.pg", "h.pg", "--on-hard"],
            &["solve", "q.pg", "h.pg", "--deadline-ms", "x"],
            &["solve", "q.pg", "h.pg", "--deadline-ms"],
            &["solve", "q.pg", "h.pg", "--budget-samples", "-3"],
            &["solve", "q.pg", "h.pg", "--budget-gates"],
            &["solve", "q.pg", "h.pg", "--budget-time-ms", "never"],
        ] {
            assert!(
                run(&args(bad), &hard).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn monte_carlo_flag() {
        let fs = fake_fs(&[
            ("q.pg", "edge 0 1 R\n"),
            ("h.pg", "edge 0 1 R 1/2\nedge 1 0 R 1/2\n"),
        ]);
        let out = run(
            &args(&["solve", "q.pg", "h.pg", "--monte-carlo", "4000"]),
            &fs,
        )
        .unwrap();
        assert!(out.contains("MonteCarlo"), "{out}");
    }
}
